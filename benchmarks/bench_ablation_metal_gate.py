"""Ablation: electrical oxide thickness and the metal-gate what-if.

Table 2's discussion: accounting for the inversion layer and gate
depletion ("the oxide appears ~0.7 nm thicker") matters increasingly as
physical oxides thin; removing the depletion component (metal gate)
buys a Vth increase and a large Ioff cut -- 55 mV / 78 % at 35 nm in
the paper.
"""

import pytest

from repro.devices.mosfet import MosfetModel
from repro.devices.params import device_for_node
from repro.devices.solver import solve_vth_for_ion
from repro.itrs import ITRS_2000


def _metal_gate_gain(node_nm: int) -> tuple[float, float]:
    device = device_for_node(node_nm)
    target = ITRS_2000.node(node_nm).ion_target_ua_um
    vth_poly = solve_vth_for_ion(device, target)
    ioff_poly = MosfetModel(device.with_vth(vth_poly)).ioff_na_um()
    metal = device.with_gate_stack(device.gate_stack.with_metal_gate())
    vth_metal = solve_vth_for_ion(metal, target)
    ioff_metal = MosfetModel(metal.with_vth(vth_metal)).ioff_na_um()
    return (vth_metal - vth_poly) * 1e3, 1.0 - ioff_metal / ioff_poly


@pytest.mark.parametrize("node_nm", ITRS_2000.node_sizes)
def test_metal_gate_point(benchmark, node_nm):
    vth_gain_mv, ioff_cut = benchmark(_metal_gate_gain, node_nm)
    assert vth_gain_mv > 0
    assert 0.0 < ioff_cut < 1.0


def test_metal_gate_at_35nm():
    vth_gain_mv, ioff_cut = _metal_gate_gain(35)
    # Paper: a 55 mV Vth increase and a 78 % Ioff reduction at 35 nm.
    assert 40.0 < vth_gain_mv < 90.0
    assert 0.70 < ioff_cut < 0.90


def test_capacitance_benefit_grows_with_scaling():
    # Removing the fixed 2.5 A of gate depletion boosts Coxe more as
    # the physical oxide thins.
    from repro.devices.oxide import GateStack
    gains = []
    for node_nm in ITRS_2000.node_sizes:
        stack = device_for_node(node_nm).gate_stack
        gains.append(stack.with_metal_gate().coxe / stack.coxe)
    assert all(a <= b + 1e-12 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > gains[0]


def test_absolute_leakage_saving_grows_with_scaling():
    # The fractional Ioff cut is largest at the old nodes (weak Vth
    # sensitivity there demands a big Vth shift), but the *absolute*
    # current saved explodes toward the nanometer nodes, where it
    # matters.
    from repro.devices.mosfet import MosfetModel

    def saved_na(node_nm):
        device = device_for_node(node_nm)
        target = ITRS_2000.node(node_nm).ion_target_ua_um
        vth = solve_vth_for_ion(device, target)
        metal = device.with_gate_stack(
            device.gate_stack.with_metal_gate())
        vth_metal = solve_vth_for_ion(metal, target)
        return (MosfetModel(device.with_vth(vth)).ioff_na_um()
                - MosfetModel(metal.with_vth(vth_metal)).ioff_na_um())

    assert saved_na(35) > 50 * saved_na(180)
