"""Ablation: the CVS low-supply ratio (paper: 0.6-0.7 is optimal).

Sweeps Vdd,l / Vdd,h.  Too high a ratio saves little per gate; too low
a ratio slows the lowered gates so much that few qualify -- the paper's
"around 0.6 to 0.7" sweet spot emerges from the trade-off.
"""

import pytest

from repro.netlist import random_netlist
from repro.optim import assign_cvs

RATIOS = (0.50, 0.60, 0.65, 0.70, 0.80, 0.90)


def _cvs_saving(ratio: float) -> tuple[float, float]:
    netlist = random_netlist(100, n_gates=300, seed=4, depth_skew=2.2,
                             clock_margin=1.10)
    result = assign_cvs(netlist, vdd_ratio=ratio)
    return result.dynamic_saving, result.low_vdd_fraction


@pytest.mark.parametrize("ratio", RATIOS)
def test_vdd_ratio_point(benchmark, ratio):
    saving, fraction = benchmark.pedantic(_cvs_saving, args=(ratio,),
                                          rounds=1, iterations=1)
    assert 0.0 <= saving < 1.0
    assert 0.0 <= fraction <= 1.0


def test_sweet_spot():
    savings = {ratio: _cvs_saving(ratio)[0] for ratio in RATIOS}
    best = max(savings, key=savings.get)
    # The optimum lies in the paper's 0.6-0.7 window.
    assert 0.55 <= best <= 0.75, savings
    # And it beats the extremes decisively.
    assert savings[best] > savings[0.90]
    assert savings[best] > savings[0.50]
