"""Service benchmarks: admission queue, store scans, job round trips.

Measures the daemon-side hot paths in isolation:

* admission-queue submit/pop throughput under the multi-tenant bounds;
* shared-store scan and LRU prune over a populated object directory;
* a full job round trip (submit -> dispatch -> sweep -> done) through
  :class:`repro.service.ExperimentService` with the inline executor,
  cold vs warm (every entry served from the shared store).

Run with ``pytest benchmarks/bench_service.py --benchmark-only``.
"""

import itertools
import time

from repro.engine import ResultCache
from repro.service import (
    AdmissionQueue,
    ExperimentService,
    Job,
    JobSpec,
    QueueConfig,
    ServiceConfig,
    StoreManager,
    next_job_id,
)

_fresh_dir = itertools.count()

#: Experiments small enough that the sweep itself stays cheap: the
#: round-trip benchmarks time service overhead, not solver work.
_JOB_IDS = ("E-T1", "E-T2")


def _jobs(count):
    return [Job(id=next_job_id(),
                spec=JobSpec(tenant=f"t{index % 4}"))
            for index in range(count)]


def test_queue_submit_pop_throughput(benchmark):
    """Admit and drain 256 jobs across 4 tenants, bounds enforced."""
    config = QueueConfig(max_depth=256, max_per_tenant=64)

    def churn():
        queue = AdmissionQueue(config)
        for job in _jobs(256):
            queue.submit(job)
        while queue.pop() is not None:
            pass
        return queue

    queue = benchmark.pedantic(churn, rounds=5, iterations=1)
    assert queue.admitted == 256
    assert queue.depth() == 0


def test_store_scan(benchmark, tmp_path):
    """Stat-order 64 entries, least recently used first."""
    cache = ResultCache(tmp_path)
    for index in range(64):
        cache.put(f"E-S{index:02d}", "f" * 64, {"value": index})
    manager = StoreManager(tmp_path)

    entries = benchmark.pedantic(manager.scan, rounds=5, iterations=1)
    assert len(entries) == 64


def test_store_prune_by_entries(benchmark, tmp_path):
    """Evict half of a 64-entry store, LRU first."""
    def prune():
        root = tmp_path / f"prune-{next(_fresh_dir)}"
        cache = ResultCache(root)
        for index in range(64):
            cache.put(f"E-S{index:02d}", "f" * 64, {"value": index})
        return StoreManager(root).prune(max_entries=32)

    report = benchmark.pedantic(prune, rounds=3, iterations=1)
    assert report.evicted == 32
    assert report.kept == 32


def _service(cache_dir):
    service = ExperimentService(ServiceConfig(
        cache_dir=cache_dir, executor="inline", dispatchers=1))
    service.start()
    return service


def _round_trip(service):
    job = service.submit(JobSpec(experiment_ids=_JOB_IDS))
    deadline = time.monotonic() + 30.0
    while not job.terminal and time.monotonic() < deadline:
        time.sleep(0.002)
    assert job.state == "done"
    return job


def test_job_round_trip_cold(benchmark, tmp_path):
    """Submit -> dispatch -> sweep -> done against an empty store."""
    def cold():
        cache_dir = tmp_path / f"cold-{next(_fresh_dir)}"
        service = _service(cache_dir)
        try:
            return _round_trip(service)
        finally:
            service.stop()

    job = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert job.metrics["cache_hits"] == 0


def test_job_round_trip_warm(benchmark, tmp_path):
    """Same sweep resubmitted: every record from the shared store."""
    cache_dir = tmp_path / "warm"
    service = _service(cache_dir)
    try:
        _round_trip(service)  # populate the shared store

        job = benchmark.pedantic(lambda: _round_trip(service),
                                 rounds=5, iterations=1)
    finally:
        service.stop()
    assert job.metrics["cache_hits"] == len(_JOB_IDS)
