"""E-ET experiments: transient supply loop + electrothermal co-sim."""

import numpy as np


def test_wakeup_droop_cosim(benchmark, run):
    result = benchmark.pedantic(run, args=("E-ET1",), rounds=2,
                                iterations=1)
    # Acceptance criterion: closed-form L di/dt agreement within 5 %.
    assert result["max_abs_rel_error"] <= 0.05
    assert result["within_5pct"] == 1.0


def test_dtm_virus_cosim(benchmark, run):
    result = benchmark.pedantic(run, args=("E-ET2",), rounds=2,
                                iterations=1)
    # Unmanaged violates; every DTM policy holds the junction with a
    # bounded throughput loss and a clean supply.
    assert result["unmanaged_violation"] == 1.0
    assert result["any_managed_violation"] == 0.0
    assert 0.5 <= result["min_throughput_fraction"] < 1.0


def test_emergency_droop_scaling(benchmark, run):
    result = benchmark.pedantic(run, args=("E-ET4",), rounds=2,
                                iterations=1)
    assert result["within_5pct"] == 1.0
    # the quadratic decap lever: droop halves per 4x decap
    assert abs(result["decap_x0.25_droop_v"]
               / result["decap_x1_droop_v"] - 2.0) < 0.05


def test_transim_stepping_kernel(benchmark):
    """The raw stepping kernel, exact (vectorized) method.

    Compares against the committed ``benchmarks/cosim/`` snapshots:
    the trapezoid reference kernel steps sequentially, the exact
    method samples whole stimulus segments vectorized.
    """
    from repro.pdn.transim import (CurrentStimulus, simulate,
                                   supply_loop_for_node)

    loop = supply_loop_for_node(100, False, damping_ratio=0.3)
    stimulus = CurrentStimulus.periodic(
        10.0, 120.0, loop.period_s * 4.0, 8)
    duration = loop.period_s * 40.0
    dt = loop.period_s / 512.0

    def kernel():
        return simulate(loop, stimulus, duration, dt_s=dt,
                        method="exact")

    result = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert result.n_steps >= 10_000
    assert np.all(np.isfinite(result.v_die_v))
    reference = simulate(loop, stimulus, duration, dt_s=dt,
                         method="trapezoid")
    assert float(np.max(np.abs(
        reference.v_die_v - result.v_die_v))) < 1e-3 * loop.vdd_v
