"""E-X1..E-X3: regenerate the extension experiments."""


def test_leakage_toolbox(benchmark, run):
    result = benchmark(run, "E-X1")
    # MTCMOS: large standby reduction for a bounded delay penalty.
    assert result["mtcmos_standby_reduction"] > 50.0
    assert result["mtcmos_delay_penalty"] <= 0.05 + 1e-9
    # Body bias fades with scaling (the paper's caveat).
    assert result["body_bias_reduction_180nm"] \
        > 10 * result["body_bias_reduction_35nm"]
    # Mixed-Vth stacks: substantial saving, minimal delay cost.
    assert result["stack_leakage_saving"] > 0.3
    assert result["stack_delay_penalty"] < 0.25


def test_dvs_vs_throttling(benchmark, run):
    result = benchmark.pedantic(run, args=("E-X2",), rounds=2,
                                iterations=1)
    limit = result["tj_limit_c"]
    assert result["dvs_max_tj_c"] <= limit + 0.5
    assert result["throttling_max_tj_c"] <= limit + 0.5
    assert result["dvs_advantage"] > 0.02


def test_global_clock_domains(benchmark, run):
    result = benchmark(run, "E-X3")
    summary = result["summary"]
    assert summary["divider_at_180nm"] == 1
    assert summary["divider_at_35nm"] >= 2
    assert summary["all_nodes_meet_itrs"]


def test_electrothermal(benchmark, run):
    result = benchmark(run, "E-X4")
    # The 50 nm / Vth = 0.04 V point is electrothermally marginal on
    # the ITRS-target package; 70 nm is comfortable.
    assert result["leakage_fraction_50nm"] > 0.5
    assert result["leakage_fraction_70nm"] < 0.2
    assert result["runaway_theta_50nm"] < 2 * result["theta_ja"]
    assert result["runaway_theta_70nm"] > 2 * result["theta_ja"]
    # Self-heating amplifies every node's leakage vs the 300 K numbers.
    for node in (70, 50, 35):
        assert result[f"amplification_{node}nm"] > 2.0
