"""E-C5: regenerate the Section 3.3 re-sizing-vs-Vdd claims."""


def test_resizing_claims(benchmark, run):
    result = benchmark.pedantic(run, args=("E-C5",), rounds=1,
                                iterations=1)

    # Re-sizing is sublinear: power saving well below the width saving.
    assert result["sizing_sublinearity"] < 0.75
    assert result["sizing_width_saving"] > result["sizing_dynamic_saving"]
    # Multi-Vdd beats re-sizing on the same design (quadratic vs
    # sublinear).
    assert result["cvs_dynamic_saving"] > result["sizing_dynamic_saving"]
    # Re-sizing first destroys a large part of the multi-Vdd population.
    assert (result["cvs_first_low_vdd_fraction"]
            - result["cvs_after_sizing_low_vdd_fraction"]) > 0.10
    # The combined Conclusion-3 flow compounds the savings.
    assert result["combined_total_saving"] > result["cvs_dynamic_saving"]
    assert result["combined_static_saving"] > 0.5
