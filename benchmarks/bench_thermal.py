"""E-C1: regenerate the Section 2.1 thermal-management claims."""


def test_thermal_claims(benchmark, run):
    result = benchmark.pedantic(run, args=("E-C1",), rounds=2,
                                iterations=1)

    # DTM buys a 33 % higher theta_ja (1/0.75).
    assert abs(result["theta_relief"] - 1 / 3) < 0.01
    # The 65 -> 75 W cooling-cost cliff triples cost.
    assert abs(result["cooling_cost_ratio_75_over_65"] - 3.0) < 0.01

    limit = result["tj_limit_c"]
    # A DTM-protected chip on an effective-worst-case package holds Tj.
    assert result["virus_dtm_max_tj_c"] <= limit + 0.5
    # The same package without DTM violates under the virus.
    assert result["virus_unmanaged_max_tj_c"] > limit + 1.0
    # Realistic applications run (essentially) unthrottled.
    assert result["app_dtm_throughput"] > 0.97
    # The virus pays a bounded throughput tax instead of overheating.
    assert 0.5 <= result["virus_dtm_throughput"] < 1.0
