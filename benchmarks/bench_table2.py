"""E-T2: regenerate Table 2 (analytical Ioff scaling)."""


def test_table2(benchmark, run):
    result = benchmark(run, "E-T2")
    rows = {row["node_nm"]: row for row in result["rows"]}

    # Solved Vth reproduces the paper's threshold row within 15 mV.
    for node_nm, row in rows.items():
        assert abs(row["vth_v"] - row["vth_paper_v"]) < 0.015, node_nm

    # Ioff reproduces the paper's row within 25 % at every node.
    for node_nm, row in rows.items():
        ratio = row["ioff_na_um"] / row["ioff_paper_na_um"]
        assert 0.75 < ratio < 1.25, node_nm

    summary = result["summary"]
    # Paper: 152x model increase vs 23x ITRS; >= 2.9x over ITRS at 35 nm.
    assert 120 < summary["model_ioff_increase_180_to_35"] < 220
    assert 20 < summary["itrs_ioff_increase_180_to_35"] < 26
    assert 2.5 < summary["model_over_itrs_at_35nm"] < 3.6
    # Metal gate cuts Ioff by ~78 % at 35 nm.
    assert 0.70 < summary["metal_gate_ioff_reduction_at_35nm"] < 0.90

    # The 0.7 V fallback at 50 nm: several-x Ioff relief, +36 % dynamic.
    variant = result["variant_50nm_0v7"]
    assert variant["ioff_relief_vs_0v6"] > 5.0
    assert abs(variant["dynamic_power_penalty"] - 0.36) < 0.01
