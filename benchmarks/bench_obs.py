"""Observability overhead benchmarks: tracing off vs on.

The acceptance bar for ``repro.obs`` is that *disabled* tracing adds
well under 2% to an instrumented sweep — the no-op ``span()`` path is a
single ``is None`` check returning a shared singleton.  These
benchmarks put numbers on that claim:

* the raw per-``span()`` cost with no trace installed (nanoseconds);
* the raw per-``observe()`` cost with metrics disabled vs recording
  into a live histogram (the ``repro.obs.metrics`` no-op budget is
  sub-microsecond, same as ``span()``);
* an inline uncached sweep with tracing off vs on, so the relative
  overhead of full span collection is visible side by side.

Run with ``pytest benchmarks/bench_obs.py --benchmark-only``.
"""

from repro.engine import EngineConfig, run_experiments
from repro.obs import DURATION_BUCKETS, Trace, observe, span, tracing

_SUBSET = ["E-T1", "E-T2", "E-F3"]
_CONFIG = EngineConfig(executor="inline", cache_enabled=False)

_HOT_ITERATIONS = 10_000


def _hot_loop():
    for _ in range(_HOT_ITERATIONS):
        with span("bench.hot", index=0):
            pass


def test_noop_span_cost(benchmark):
    """Per-call cost of ``span()`` with no active trace (the 'off' path)."""
    benchmark.pedantic(_hot_loop, rounds=20, iterations=1)


def test_active_span_cost(benchmark):
    """Per-call cost of ``span()`` recording into a live trace."""
    def traced_loop():
        with tracing(Trace("bench")) as trace:
            _hot_loop()
        return trace

    trace = benchmark.pedantic(traced_loop, rounds=5, iterations=1)
    assert len(trace.spans) == _HOT_ITERATIONS


def _observe_loop():
    for i in range(_HOT_ITERATIONS):
        observe("bench.lat", float(i), DURATION_BUCKETS, kind="hot")


def test_noop_observe_cost(benchmark):
    """Per-call cost of ``observe()`` with metrics disabled.

    This is the budget every instrumented hot path (guarded solves,
    cache IO, STA) pays in a plain untraced run; it must stay in
    ``span()``-no-op territory (a single ``is None`` check).
    """
    benchmark.pedantic(_observe_loop, rounds=20, iterations=1)


def test_active_observe_cost(benchmark):
    """Per-call cost of ``observe()`` recording into a live histogram."""
    def recording_loop():
        with tracing(Trace("bench-metrics")) as trace:
            _observe_loop()
        return trace

    trace = benchmark.pedantic(recording_loop, rounds=5, iterations=1)
    histogram = trace.metrics.histogram("bench.lat", kind="hot")
    assert histogram.count == _HOT_ITERATIONS


def test_sweep_tracing_disabled(benchmark):
    """Instrumented sweep baseline: all span sites hit, tracing off."""
    def sweep():
        return run_experiments(_SUBSET, config=_CONFIG)

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert result.metrics.ok == len(_SUBSET)


def test_sweep_tracing_enabled(benchmark):
    """Same sweep with a live trace collecting every span."""
    def sweep():
        with tracing(Trace("bench-sweep")) as trace:
            result = run_experiments(_SUBSET, config=_CONFIG)
        return result, trace

    result, trace = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert result.metrics.ok == len(_SUBSET)
    assert len(trace.spans) > 0
