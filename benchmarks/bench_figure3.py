"""E-F3: regenerate Fig. 3 (delay vs Vdd, three Vth policies)."""


def test_figure3(benchmark, run):
    result = benchmark(run, "E-F3")
    summary = result["summary"]

    # Paper: 3.7x at 0.2 V constant Vth (we land 3.4-3.9).
    assert 3.0 < summary["delay_constant_vth_at_0v2"] < 4.2
    # Paper: < 30 % with constant-Pstatic Vth scaling.
    assert summary["delay_constant_pstatic_at_0v2"] < 1.32
    # Paper: dynamic power 89 % lower at 0.2 V.
    assert abs(summary["dynamic_saving_at_0v2"] - 0.89) < 0.01
    # Paper: conservative policy leaves Pstatic at exactly 1/3.
    assert abs(summary["conservative_pstatic_at_0v2"] - 1 / 3) < 0.01

    # Policy ordering at every supply: constant >= conservative >=
    # constant-Pstatic in delay; the reverse in static power.
    curves = result["curves"]
    for fast, slow in (("constant_pstatic", "conservative"),
                       ("conservative", "constant")):
        for p_fast, p_slow in zip(curves[fast], curves[slow]):
            assert p_fast["delay_norm"] <= p_slow["delay_norm"] + 1e-9
            assert (p_fast["static_power_norm"]
                    >= p_slow["static_power_norm"] - 1e-9)
