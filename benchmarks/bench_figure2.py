"""E-F2: regenerate Fig. 2 (dual-Vth scaling)."""


def test_figure2(benchmark, run):
    result = benchmark(run, "E-F2")
    rows = result["rows"]
    gains = [row["ion_gain_pct"] for row in rows]
    penalties = [row["ioff_penalty_for_20pct_ion"] for row in rows]

    # Ion gain from a 100 mV Vth cut grows monotonically with scaling.
    assert all(a < b for a, b in zip(gains, gains[1:]))
    # The Ioff penalty for +20 % Ion falls monotonically with scaling.
    assert all(a > b for a, b in zip(penalties, penalties[1:]))

    summary = result["summary"]
    # 35 nm endpoint lands near the paper's 7x (we measure ~8.4x).
    assert 5.0 < summary["penalty_at_35nm"] < 15.0
    # The old-node penalty is far larger (paper: 54x; the compact model
    # is more velocity-saturated at 1.8 V and lands higher -- see
    # EXPERIMENTS.md), so the scalability argument holds a fortiori.
    assert summary["penalty_at_180nm"] > 25.0
    # A fixed 100 mV reduction always costs ~15x in Ioff.
    assert abs(rows[0]["ioff_ratio_100mv"] - 15.0) < 0.5
