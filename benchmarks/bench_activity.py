"""Activity substrate: simulation vs estimation, glitch grounding.

Not a paper figure -- this validates the machinery that grounds the
activity factors (Figs. 1/4) and the CMOS glitch multiplier (Section
4's MCML comparison).
"""

import pytest

from repro.circuits.mcml import CMOS_GLITCH_FACTOR
from repro.netlist import (
    estimated_activity_map,
    measured_activity,
    random_netlist,
)


def _simulate():
    netlist = random_netlist(100, n_gates=250, seed=21, max_depth=24)
    return netlist, measured_activity(netlist, n_vectors=300, seed=1)


def test_activity_simulation(benchmark):
    netlist, result = benchmark.pedantic(_simulate, rounds=2,
                                         iterations=1)
    # Busy traffic produces the high-activity regime; the glitch factor
    # exceeds one and sits below the conservative datapath multiplier
    # used by the MCML comparison (random logic glitches less than
    # arithmetic).
    assert 0.1 < result.mean_activity() < 0.5
    assert 1.0 <= result.mean_glitch_factor() <= CMOS_GLITCH_FACTOR


def test_estimation_cross_check(benchmark):
    netlist = random_netlist(100, n_gates=250, seed=22)
    estimated = benchmark(estimated_activity_map, netlist)
    simulated = measured_activity(netlist, n_vectors=300, seed=2)
    ratio = (sum(estimated.values())
             / sum(simulated.activity_map().values()))
    assert 0.4 < ratio < 2.5


@pytest.mark.parametrize("flip,band", [(0.03, (0.005, 0.12)),
                                       (0.5, (0.1, 0.5))])
def test_activity_bands(benchmark, flip, band):
    netlist = random_netlist(100, n_gates=200, seed=23)
    result = benchmark.pedantic(
        measured_activity, args=(netlist,),
        kwargs=dict(n_vectors=300, seed=3, flip_probability=flip),
        rounds=1, iterations=1)
    low, high = band
    assert low < result.mean_activity() < high


def test_adder_glitch_grounding(benchmark):
    # A real carry chain reproduces the datapath glitch multiplier the
    # MCML comparison assumes (Section 4 / ref [42]).
    from repro.netlist.datapath import build_ripple_adder

    def run():
        netlist, _ = build_ripple_adder(100, width=8)
        return measured_activity(netlist, n_vectors=300, seed=1)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert abs(result.mean_glitch_factor() - CMOS_GLITCH_FACTOR) < 0.4
