"""E-F4: regenerate Fig. 4 (Pdynamic/Pstatic vs Vdd)."""


def test_figure4(benchmark, run):
    result = benchmark(run, "E-F4")
    summary = result["summary"]

    # Paper: the ITRS 10x constraint allows Vdd ~ 0.44 V, a ~46 %
    # dynamic-power saving (we land 0.45 V / 44 %).
    assert 0.40 < summary["vdd_at_ratio_10"] < 0.50
    assert 0.35 < summary["dynamic_saving_at_ratio_10"] < 0.55

    # Paper: the ratio is "pushed towards 1" at 0.2 V for low switching
    # activity gates under the constant-Pstatic policy.
    assert summary["ratio_constant_pstatic_at_0v2"] < 5.0

    # Under constant Pstatic the ratio falls monotonically with Vdd.
    curve = result["curves"]["constant_pstatic"]
    ratios = [point["dyn_over_static"] for point in curve]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
