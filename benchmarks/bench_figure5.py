"""E-F5: regenerate Fig. 5 (IR-drop rail sizing)."""


def test_figure5(benchmark, run):
    result = benchmark(run, "E-F5")
    summary = result["summary"]

    # Paper: ~16x minimum width at 35 nm under minimum bump pitch.
    assert 8.0 < summary["min_pitch_width_over_min_at_35nm"] < 25.0
    # Paper: 35 nm is *less* restricted than 50 nm (power density falls).
    assert (summary["min_pitch_width_over_min_at_50nm"]
            > summary["min_pitch_width_over_min_at_35nm"])
    # Paper: rails consume 17-20 % of top-level routing with pads.
    assert 0.16 < summary["min_pitch_routing_at_35nm"] < 0.25

    # Paper: ITRS pad counts blow the requirement up to >1000x minimum
    # width (the paper reads "over 2000x" off its log axis).
    assert summary["itrs_width_over_min_at_35nm"] > 500.0

    # Both curves grow (roughly quadratically) toward the nanometer
    # nodes, apart from the 50->35 nm density dip.
    for scenario in ("min_pitch", "itrs_pads"):
        widths = [point["width_over_min"]
                  for point in result["curves"][scenario]]
        assert all(a < b for a, b in zip(widths[:-1], widths[1:-1]))
