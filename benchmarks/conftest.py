"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (table, figure or claim)
via the experiment registry and asserts its headline *shape* against the
paper, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness.  Timings measure the full experiment pipeline.

Single-experiment runs go through ``repro.engine`` (inline executor,
cache disabled) so every benchmarked execution produces a checked
``RunRecord``; ``bench_engine.py`` exercises the process-pool and
cache paths explicitly.

Each benchmarked execution also runs under a fresh
:class:`repro.obs.Trace`, so the metrics registry captures the solver
iteration/residual histograms and a :class:`~repro.obs.ResourceSampler`
brackets it for RSS/CPU/GC telemetry.  Everything is max-/add-merged
into one session registry and summarised at the end of the run
(``benchmark telemetry:`` line), putting a resource figure next to the
timing figures.
"""

import pytest

from repro.obs import MetricsRegistry, ResourceSampler, Trace, tracing

#: Telemetry folded across every benchmarked execution of the session:
#: the ``resource.rss_peak_kb`` gauge max-merges to the session peak,
#: solver-iteration histograms accumulate exactly.
_SESSION_METRICS = MetricsRegistry()


@pytest.fixture
def run():
    """Run an experiment by id through the execution engine."""
    from repro.engine import EngineConfig, run_experiments

    config = EngineConfig(executor="inline", cache_enabled=False)

    def _run(experiment_id):
        trace = Trace(f"bench-{experiment_id}")
        sampler = ResourceSampler(trace.metrics)
        with tracing(trace), sampler.measure("benchmark"):
            sweep = run_experiments([experiment_id], config=config)
        record = sweep.records[0]
        assert record.ok, (
            f"{experiment_id} failed: {record.error}")
        _SESSION_METRICS.merge_payload(trace.metrics.to_payload())
        return sweep.results[experiment_id]

    return _run


def pytest_terminal_summary(terminalreporter):
    """Print the session's resource/solver telemetry after the timings."""
    rss_peak_kb = _SESSION_METRICS.gauge("resource.rss_peak_kb")
    if rss_peak_kb is None:
        return  # no benchmarked execution went through the fixture
    solver_iterations = sum(
        histogram.sum
        for name, _labels, histogram in _SESSION_METRICS.histograms()
        if name == "solver.iterations_per_solve")
    runs = sum(
        histogram.count
        for name, _labels, histogram in _SESSION_METRICS.histograms()
        if name == "resource.wall_s")
    terminalreporter.write_line(
        f"benchmark telemetry: {runs} engine run(s), peak RSS "
        f"{rss_peak_kb / 1024.0:.1f} MB, "
        f"{solver_iterations:g} solver iteration(s)")
