"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (table, figure or claim)
via the experiment registry and asserts its headline *shape* against the
paper, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness.  Timings measure the full experiment pipeline.

Single-experiment runs go through ``repro.engine`` (inline executor,
cache disabled) so every benchmarked execution produces a checked
``RunRecord``; ``bench_engine.py`` exercises the process-pool and
cache paths explicitly.
"""

import pytest


@pytest.fixture
def run():
    """Run an experiment by id through the execution engine."""
    from repro.engine import EngineConfig, run_experiments

    config = EngineConfig(executor="inline", cache_enabled=False)

    def _run(experiment_id):
        sweep = run_experiments([experiment_id], config=config)
        record = sweep.records[0]
        assert record.ok, (
            f"{experiment_id} failed: {record.error}")
        return sweep.results[experiment_id]

    return _run
