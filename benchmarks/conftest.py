"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (table, figure or claim)
via the experiment registry and asserts its headline *shape* against the
paper, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness.  Timings measure the full experiment pipeline.
"""

import pytest


@pytest.fixture
def run():
    """Run an experiment by id through the registry."""
    from repro.analysis import run_experiment
    return run_experiment
