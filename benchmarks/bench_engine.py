"""Engine benchmarks: cold vs warm sweeps, serial vs parallel.

Measures the execution engine itself over the full 19-experiment
registry:

* cold full sweep (empty cache: fingerprint + run + store every entry)
  vs warm sweep (every entry a cache hit, no runner re-execution);
* serial (``jobs=1``) vs parallel (``jobs=4``) process-pool sweeps
  with the cache disabled.

Run with ``pytest benchmarks/bench_engine.py --benchmark-only``.
"""

import itertools

import pytest

from repro.analysis import EXPERIMENTS
from repro.engine import EngineConfig, run_experiments

_fresh_dir = itertools.count()


def _sweep(config):
    sweep = run_experiments(config=config)
    assert sweep.metrics.ok == len(EXPERIMENTS)
    return sweep


def test_cold_sweep(benchmark, tmp_path):
    """Empty-cache sweep: fingerprint, execute, and store everything."""
    def cold():
        cache_dir = tmp_path / f"cold-{next(_fresh_dir)}"
        return _sweep(EngineConfig(jobs=4, cache_dir=cache_dir))

    sweep = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert sweep.metrics.cache_hits == 0


def test_warm_sweep(benchmark, tmp_path):
    """All-hit sweep: no runner executes, results come from disk."""
    cache_dir = tmp_path / "warm"
    _sweep(EngineConfig(jobs=4, cache_dir=cache_dir))  # populate

    def warm():
        return _sweep(EngineConfig(jobs=4, cache_dir=cache_dir))

    sweep = benchmark.pedantic(warm, rounds=5, iterations=1)
    assert sweep.metrics.cache_hits == len(EXPERIMENTS)


@pytest.mark.parametrize("jobs", [1, 4])
def test_uncached_sweep_scaling(benchmark, jobs):
    """Process-pool wall time, cache off: serial vs ``--jobs 4``."""
    def sweep():
        return _sweep(EngineConfig(jobs=jobs, cache_enabled=False))

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert result.metrics.cache_misses == len(EXPERIMENTS)
