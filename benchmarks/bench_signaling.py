"""E-C2: regenerate the Section 2.2 global-signaling claims."""


def test_signaling_claims(benchmark, run):
    result = benchmark(run, "E-C2")

    # Paper: ~1e4 repeaters in a large 180 nm MPU, nearly 1e6 at 50 nm.
    assert 5e3 < result["repeater_count_180nm"] < 3e4
    assert 5e5 < result["repeater_count_50nm"] < 3e6
    # Paper: >50 W of signaling power in the nanometer regime.
    assert result["signaling_power_50nm_w"] > 50.0
    # Low-swing differential: ~80 % bus-energy saving at 10 % swing,
    # several-x smaller supply transients, and nowhere near 2x area.
    assert 0.7 < result["low_swing_energy_saving"] < 0.95
    assert result["low_swing_transient_reduction"] > 3.0
    assert result["low_swing_area_ratio"] < 1.5
    # Footnote 2: cluster power density "can exceed 100 W/cm^2", at a
    # small quantisation delay cost.
    assert result["cluster_power_density_w_cm2"] > 100.0
    assert result["cluster_delay_penalty"] < 0.10
