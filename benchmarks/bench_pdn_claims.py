"""E-C6: regenerate the Section 4 bump/transient/MCML claims."""


def test_pdn_claims(benchmark, run):
    result = benchmark(run, "E-C6")

    # Paper: ~300 A worst-case supply current at 35 nm; 1500 Vdd bumps.
    assert abs(result["supply_current_35nm_a"] - 300.0) < 15.0
    assert abs(result["vdd_pads_35nm"] - 1500.0) < 30.0
    # Paper: ITRS bump current capability is incompatible with 300 A.
    assert result["itrs_budget_feasible"] == 0.0
    assert result["per_bump_current_a"] > result["bump_limit_a"]
    assert result["vdd_bump_shortfall"] > 0
    # Paper: a roughly constant ~350 um effective pitch (356 at 35 nm).
    assert abs(result["effective_pitch_um"] - 356.0) < 1.0
    # Minimum bump pitch gives a much lower-inductance wake-up path.
    assert result["wakeup_improvement"] > 5.0
    assert (result["wakeup_droop_min_pitch"]
            < result["wakeup_droop_itrs"])
    # MCML draws a several-x smaller peak supply current.
    assert result["mcml_transient_advantage"] > 2.0
