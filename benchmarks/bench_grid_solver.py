"""E-V1: validate the analytic IR model against the grid solvers.

Also the solver-scaling sweeps: the mesh densification series and the
large-mesh ``repro bench`` artifact (E-S1) that the perf-regression
snapshots gate on.
"""

import pytest

from repro import units
from repro.itrs import ITRS_2000
from repro.pdn.bacpac import (
    PitchScenario,
    hotspot_current_density_a_m2,
    required_rail_width_m,
)
from repro.pdn.grid import solve_power_grid_2d


def test_grid_validation(benchmark, run):
    result = benchmark(run, "E-V1")

    # The 1-D distributed-drop formula matches the strip solver exactly.
    assert result["strip_error"] < 0.02
    # The realistic 2-D mesh (only every 4th rail reaches a bump) lands
    # within the crowding allowance's neighbourhood of the analytic
    # bound -- the analytic model captures the scaling, the constant is
    # absorbed by the calibrated CROWDING_FACTOR (see EXPERIMENTS.md).
    assert 1.0 < result["grid_margin"] < 3.0


@pytest.mark.parametrize("rails_per_pitch", [2, 4, 8])
def test_mesh_scaling_sweep(benchmark, rails_per_pitch):
    """Assembly + solve cost as the 35 nm mesh densifies (4 cells)."""
    record = ITRS_2000.node(35)
    pitch = units.um(record.min_bump_pitch_um)
    width = required_rail_width_m(35, PitchScenario.MIN_PITCH)
    density = hotspot_current_density_a_m2(record)
    solution = benchmark(
        solve_power_grid_2d, density,
        record.top_metal_sheet_resistance, width / rails_per_pitch,
        pitch, rails_per_pitch=rails_per_pitch, cells=4)
    assert solution.worst_drop_v > solution.mean_drop_v > 0


def test_scaling_snapshot_mesh(benchmark, run):
    """E-S1: the large cells=8, rails=8 mesh behind ``repro bench``."""
    result = benchmark(run, "E-S1")
    assert result["n_nodes"] == 4144
    assert result["worst_drop_v"] > result["mean_drop_v"] > 0
