"""E-V1: validate the analytic IR model against the grid solvers."""


def test_grid_validation(benchmark, run):
    result = benchmark(run, "E-V1")

    # The 1-D distributed-drop formula matches the strip solver exactly.
    assert result["strip_error"] < 0.02
    # The realistic 2-D mesh (only every 4th rail reaches a bump) lands
    # within the crowding allowance's neighbourhood of the analytic
    # bound -- the analytic model captures the scaling, the constant is
    # absorbed by the calibrated CROWDING_FACTOR (see EXPERIMENTS.md).
    assert 1.0 < result["grid_margin"] < 3.0
