"""Ablation: the DIBL extension is load-bearing for Fig. 3.

The paper's statement that static power "decays roughly quadratically
with Vdd" (and hence that a large Vth reduction is affordable at low
local supplies) requires drain-induced barrier lowering on top of
Eq. (4).  This ablation sweeps the DIBL coefficient and shows the
constant-Pstatic delay at 0.2 V only meets the paper's <1.3x claim for
physically sensible DIBL values.
"""

from dataclasses import replace

import pytest

from repro.circuits.fo4 import fo4_reference
from repro.devices.params import device_for_node
from repro.power.vdd_scaling import VthPolicy, vth_for_policy


def _delay_norm_at_0v2(dibl: float) -> float:
    device = replace(device_for_node(35), dibl_v_per_v=dibl)
    stage = fo4_reference(35, device=device)
    vth = vth_for_policy(device, 0.2, VthPolicy.CONSTANT_PSTATIC)
    return stage.delay_s(vdd_v=0.2, vth_v=vth) / stage.delay_s()


@pytest.mark.parametrize("dibl", [0.0, 0.06, 0.12, 0.18])
def test_dibl_ablation(benchmark, dibl):
    delay = benchmark(_delay_norm_at_0v2, dibl)
    if dibl == 0.0:
        # Without DIBL the affordable Vth cut shrinks and the delay
        # penalty exceeds the paper's bound.
        assert delay > 1.4
    if dibl >= 0.12:
        # With the calibrated (or stronger) DIBL the claim holds.
        assert delay < 1.32


def test_dibl_monotonic():
    delays = [_delay_norm_at_0v2(dibl)
              for dibl in (0.0, 0.06, 0.12, 0.18)]
    assert all(a > b for a, b in zip(delays, delays[1:]))
