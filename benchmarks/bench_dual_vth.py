"""E-C4: regenerate the Section 3.2.2 dual-Vth assignment claims."""


def test_dual_vth_claims(benchmark, run):
    result = benchmark.pedantic(run, args=("E-C4",), rounds=2,
                                iterations=1)

    # Paper band: 40-80 % leakage reduction across benchmarks; our three
    # slack scenarios span 65-86 %, overlapping the band's upper half.
    assert result["leakage_saving_min"] > 0.40
    assert result["leakage_saving_max"] < 0.95
    assert (result["saving_tight"] < result["saving_area_recovered"]
            <= result["saving_slack_rich"] + 1e-9)
    # "Minimal penalty in critical path delay".
    assert result["worst_delay_penalty"] < 0.03
