"""E-C3: regenerate the Section 2.4 clustered-voltage-scaling claims."""


def test_cvs_claims(benchmark, run):
    result = benchmark.pedantic(run, args=("E-C3",), rounds=2,
                                iterations=1)

    # Paper: ~75 % of gates tolerate Vdd,l on slack-rich designs.
    assert result["low_vdd_fraction"] > 0.65
    # Paper: 45-50 % dynamic saving; our load-weighted netlists land at
    # ~35 % (the paper's arithmetic assumes uniform per-gate power --
    # see EXPERIMENTS.md).  Assert the saving is substantial and the
    # level-conversion overhead sits in the paper's 8-10 % band.
    assert result["dynamic_saving"] > 0.28
    assert 0.06 < result["lc_power_fraction"] < 0.12
    assert abs(result["vdd_ratio"] - 0.65) < 1e-9
    # Ref [18]'s placement/converter/grid area overhead: ~15 %.
    assert 0.10 < result["area_overhead"] < 0.25
