"""Performance benchmark: STA and the incremental timer at scale.

Not a paper artifact -- this tracks the engine costs that bound how
large a netlist the optimization flows can handle.
"""

import pytest

from repro.netlist import compute_sta, random_netlist
from repro.optim import IncrementalTimer


@pytest.mark.parametrize("n_gates", [200, 800, 2000, 4000])
def test_full_sta(benchmark, n_gates):
    netlist = random_netlist(100, n_gates=n_gates, seed=7)
    report = benchmark(compute_sta, netlist)
    assert report.meets_timing()


def test_scaling_snapshot_sta(benchmark, run):
    """E-S2: the 4000-gate STA artifact behind ``repro bench``."""
    result = benchmark(run, "E-S2")
    assert result["n_gates"] == 4000
    assert result["meets_timing"]


def test_incremental_vs_full(benchmark):
    netlist = random_netlist(100, n_gates=800, seed=7)
    timer = IncrementalTimer(netlist)
    names = list(netlist.topo_order())

    def toggle_one():
        name = names[400]
        instance = netlist.instances[name]
        instance.vth_v = instance.cell.device.vth_v + 0.05
        timer.try_change([name])
        instance.vth_v = None
        timer.try_change([name])

    benchmark(toggle_one)
    report = compute_sta(netlist)
    assert abs(report.critical_delay_s - timer.critical_delay_s) < 1e-15
