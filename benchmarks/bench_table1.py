"""E-T1: regenerate Table 1 (published devices vs ITRS)."""


def test_table1(benchmark, run):
    result = benchmark(run, "E-T1")
    rows = result["rows"]
    # Six published devices plus three ITRS rows, as printed.
    assert len(rows) == 9
    published = [row for row in rows if row["ref"] != "ITRS"]
    assert len(published) == 6
    # The paper's headline: no sub-1 V device meets the ITRS Ion target.
    assert result["summary"]["sub_1v_devices_meeting_itrs_ion"] == 0
    # And the 1.2 V fallback costs 78 % dynamic power.
    assert abs(result["summary"]["dynamic_power_penalty_at_1v2"]
               - 0.78) < 0.01
