"""E-F1: regenerate Fig. 1 (Pstatic/Pdynamic vs activity)."""


def test_figure1(benchmark, run):
    result = benchmark(run, "E-F1")
    series = result["series"]
    assert set(series) == {"70nm@0.9V", "50nm@0.7V", "50nm@0.6V"}

    # Each curve falls monotonically with activity (ratio ~ 1/alpha).
    for curve in series.values():
        ratios = [ratio for _, ratio in curve]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))

    # Paper: in the 0.01-0.1 activity range static power approaches and
    # can exceed 10 % of dynamic at the nanometer nodes.
    summary = result["summary"]
    assert summary["ratio_50nm_0v6_at_0p1"] > 0.10
    # The 0.6 V / 50 nm curve is the leakiest by far.
    assert (summary["ratio_50nm_0v6_at_0p1"]
            > 3 * summary["ratio_50nm_0v7_at_0p1"])
    assert (summary["ratio_50nm_0v6_at_0p1"]
            > 3 * summary["ratio_70nm_0v9_at_0p1"])
