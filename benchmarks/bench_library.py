"""E-C7: regenerate the Section 2.3 library / cell-generation claims."""


def test_library_claims(benchmark, run):
    result = benchmark.pedantic(run, args=("E-C7",), rounds=2,
                                iterations=1)

    # The default library carries the richness the paper cites: 16
    # inverter sizes and 11 2-input NANDs.
    assert result["inverter_drive_strengths"] == 16.0
    assert result["nand2_drive_strengths"] == 11.0
    # On-the-fly cell generation on top of that library saves power at
    # fixed timing (paper: 15-22 %; our already-ideal baseline mapping
    # leaves ~10-12 % -- see EXPERIMENTS.md).
    assert result["cellgen_power_saving"] > 0.08
