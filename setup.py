"""Setup shim for legacy editable installs (`pip install -e .`).

The metadata lives in pyproject.toml; this file exists because the build
environment has no `wheel` package, so PEP 660 editable wheels cannot be
built offline and pip falls back to `setup.py develop`.
"""

from setuptools import setup

setup()
