"""Closed-loop electrothermal co-simulation.

Couples the RLC supply loop (:mod:`repro.pdn.transim`), the lumped
thermal stack (:mod:`repro.thermal.rc_network`), the DTM throttle
(:mod:`repro.thermal.dtm`), and temperature-dependent leakage
(:mod:`repro.thermal.electrothermal`) into one concurrent feedback
loop, plus the canonical wake-up / emergency / runaway / policy
scenarios the E-ET experiment family runs.
"""

from repro.cosim.loop import (
    EMERGENCY_DROOP_FRACTION,
    FREQ_VOLTAGE_SENSITIVITY,
    GATING_EDGE_S,
    CosimResult,
    ElectrothermalSimulator,
)
from repro.cosim.scenarios import (
    STANDBY_FRACTION,
    VALIDATION_DAMPING,
    dtm_policy_comparison,
    thermal_runaway,
    voltage_emergency,
    wakeup_droop,
)

__all__ = [
    "EMERGENCY_DROOP_FRACTION",
    "FREQ_VOLTAGE_SENSITIVITY",
    "GATING_EDGE_S",
    "CosimResult",
    "ElectrothermalSimulator",
    "STANDBY_FRACTION",
    "VALIDATION_DAMPING",
    "dtm_policy_comparison",
    "thermal_runaway",
    "voltage_emergency",
    "wakeup_droop",
]
