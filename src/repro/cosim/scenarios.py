"""Canonical closed-loop scenarios for the electrothermal co-simulator.

Each scenario wires :class:`~repro.cosim.loop.ElectrothermalSimulator`
(or the raw :func:`~repro.pdn.transim.simulate` transient solver) into
one of the failure modes the paper worries about, and returns a flat
dict of floats so the analysis layer can register it directly as an
experiment:

* :func:`wakeup_droop` -- the standby wake-up ramp, validated against
  the closed-form ``L_eff * di/dt`` answer of
  :func:`~repro.pdn.transients.wakeup_transient`;
* :func:`voltage_emergency` -- a full-swing current step against the
  decap tank, validated against the ``dI * Z0`` scaling of
  :func:`~repro.pdn.transients.supply_impedance_ohm`;
* :func:`thermal_runaway` -- an under-sized package where leakage
  feedback diverges unmanaged but DTM holds the loop bounded;
* :func:`dtm_policy_comparison` -- throttle-factor sweep on the power
  virus: throughput cost versus peak temperature and supply health.
"""

from __future__ import annotations

from repro.errors import ModelParameterError
from repro.pdn.transim import CurrentStimulus, simulate, supply_loop_for_node
from repro.pdn.bumps import VDD_PAD_FRACTION as _VDD_PAD_FRACTION
from repro.pdn.transients import supply_impedance_ohm, wakeup_transient
from repro.cosim.loop import ElectrothermalSimulator
from repro.itrs import ITRS_2000
from repro.thermal.dtm import DtmController
from repro.thermal.package import theta_ja
from repro.thermal.rc_network import default_thermal_network
from repro.thermal.sensor import ThermalSensor
from repro.thermal.workloads import power_virus_trace

#: Damping ratio used by the validation scenarios.  At zeta = 0.8 the
#: ramp response overshoots the closed-form ``L di/dt`` plateau by only
#: ~1.5 % (the overshoot factor is ``exp(-zeta pi / sqrt(1 - zeta^2))``
#: above unity), so the simulated peak must agree with the analytic
#: answer well inside the 5 % acceptance band.
VALIDATION_DAMPING = 0.8

#: Standby fraction of the wake-up scenario (matches
#: ``pdn.transients.wakeup_transient``).
STANDBY_FRACTION = 0.05


def wakeup_droop(node_nm: int, use_min_pitch: bool, *,
                 points_per_period: int = 256) -> dict[str, float]:
    """Simulate the standby wake-up ramp and compare to the closed form.

    The chip ramps from standby (5 % of active current) to full active
    current over the paper's 10 ns wake time.  The simulated peak
    inductive kick ``L di_L/dt`` must match the analytic
    ``L_eff * dI / t_wake`` droop of
    :func:`~repro.pdn.transients.wakeup_transient`.
    """
    analytic = wakeup_transient(node_nm, use_min_pitch,
                                standby_fraction=STANDBY_FRACTION)
    loop = supply_loop_for_node(node_nm, use_min_pitch,
                                damping_ratio=VALIDATION_DAMPING)
    active_a = analytic.current_step_a / (1.0 - STANDBY_FRACTION)
    stimulus = CurrentStimulus.ramp(
        STANDBY_FRACTION * active_a, active_a,
        0.0, analytic.wake_time_s)
    result = simulate(loop, stimulus, 4.0 * analytic.wake_time_s,
                      dt_s=loop.period_s / points_per_period)
    simulated = result.peak_inductor_kick_v
    return {
        "node_nm": float(node_nm),
        "use_min_pitch": float(use_min_pitch),
        "wake_time_s": analytic.wake_time_s,
        "current_step_a": analytic.current_step_a,
        "analytic_droop_v": analytic.droop_v,
        "simulated_kick_v": simulated,
        "rel_error": simulated / analytic.droop_v - 1.0,
        "max_droop_fraction": result.max_droop_fraction,
        "n_steps": float(result.n_steps),
    }


def voltage_emergency(node_nm: int, *, decap_scales: tuple[float, ...]
                      = (0.25, 1.0, 4.0)) -> dict[str, float]:
    """Full-swing current step against the decap tank, vs ``dI * Z0``.

    A lightly damped loop (zeta = 0.01) is stepped from standby to full
    supply current; the peak droop must track the characteristic
    impedance ``Z0 = sqrt(L/C)``, i.e. halve for every 4x decap.  The
    returned dict carries the simulated droop and the ``dI * Z0``
    prediction for each decap scale.
    """
    if not decap_scales or min(decap_scales) <= 0:
        raise ModelParameterError("decap scales must be positive")
    record = ITRS_2000.node(node_nm)
    step_a = record.supply_current_a * (1.0 - STANDBY_FRACTION)
    out: dict[str, float] = {
        "node_nm": float(node_nm),
        "current_step_a": step_a,
    }
    base = supply_loop_for_node(node_nm, False, damping_ratio=0.01)
    # at scale 1 the loop's Z0 is exactly the roadmap closed form
    n_bumps = round(record.itrs_total_pads * _VDD_PAD_FRACTION)
    out["itrs_z0_ohm"] = supply_impedance_ohm(n_bumps,
                                              record.die_area_m2)
    for scale in decap_scales:
        loop = supply_loop_for_node(
            node_nm, False, damping_ratio=0.01,
            decap_f=scale * base.decap_f)
        stimulus = CurrentStimulus.step(
            STANDBY_FRACTION * record.supply_current_a,
            STANDBY_FRACTION * record.supply_current_a + step_a)
        result = simulate(loop, stimulus, 1.5 * loop.period_s,
                          dt_s=loop.period_s / 1024.0)
        key = f"decap_x{scale:g}"
        out[f"{key}_droop_v"] = result.max_droop_v
        out[f"{key}_predicted_v"] = step_a * loop.z0_ohm
        out[f"{key}_rel_error"] = \
            result.max_droop_v / (step_a * loop.z0_ohm) - 1.0
        out[f"{key}_droop_fraction"] = result.max_droop_fraction
    return out


def _virus_simulator(node_nm: int, *, tj_limit_c: float,
                     sizing_fraction: float, virus_w: float,
                     managed: bool, throttle_factor: float = 0.5,
                     theta_scale: float = 1.0,
                     t_ambient_c: float = 45.0
                     ) -> tuple[ElectrothermalSimulator, float]:
    """Build a co-simulator around a DTM-sized package."""
    theta = theta_scale * theta_ja(tj_limit_c, t_ambient_c,
                                   sizing_fraction * virus_w)
    network = default_thermal_network(theta, t_ambient_c=t_ambient_c)
    controller = None
    if managed:
        controller = DtmController(
            ThermalSensor(trip_c=tj_limit_c - 2.0),
            throttle_factor=throttle_factor)
    supply = supply_loop_for_node(node_nm, False)
    sim = ElectrothermalSimulator(
        node_nm=node_nm, supply=supply, network=network,
        controller=controller, tj_limit_c=tj_limit_c)
    return sim, theta


def thermal_runaway(node_nm: int = 100, *, tj_limit_c: float = 85.0,
                    virus_w: float | None = None,
                    theta_scale: float = 4.5,
                    duration_s: float = 900.0,
                    dt_s: float = 0.1) -> dict[str, float]:
    """Leakage feedback on an under-sized package: runaway vs DTM.

    ``theta_scale`` multiplies the properly sized junction-to-ambient
    resistance, modelling a package sized far below the workload (or a
    failed fan).  The default 4.5x lands between the two stability
    thresholds (:func:`~repro.thermal.electrothermal.runaway_theta` at
    full versus throttled dynamic power): unmanaged, the
    leakage/temperature loop diverges and the run stops at the leakage
    model's ceiling; with DTM the permanently-throttled loop settles at
    a hot-but-*bounded* fixed point instead of diverging, at a
    throughput cost.  Deterministic: the sensor is seeded.
    """
    record = ITRS_2000.node(node_nm)
    if virus_w is None:
        virus_w = record.chip_power_w
    trace = power_virus_trace(virus_w, duration_s, dt_s=dt_s)
    out: dict[str, float] = {
        "node_nm": float(node_nm),
        "virus_w": virus_w,
        "theta_scale": theta_scale,
    }
    for label, managed in (("unmanaged", False), ("dtm", True)):
        sim, theta = _virus_simulator(
            node_nm, tj_limit_c=tj_limit_c, sizing_fraction=0.75,
            virus_w=virus_w, managed=managed, theta_scale=theta_scale)
        result = sim.run(trace, preheat_power_w=0.25 * virus_w)
        half = max(1, len(result.leakage_w) // 2)
        early_leak = sum(result.leakage_w[:half]) / half
        out[f"{label}_max_junction_c"] = result.max_junction_c
        out[f"{label}_final_junction_c"] = result.junction_c[-1]
        out[f"{label}_mean_leakage_w"] = result.mean_leakage_w
        out[f"{label}_final_leakage_w"] = result.leakage_w[-1]
        out[f"{label}_leakage_growth"] = \
            result.leakage_w[-1] / max(early_leak, 1e-12)
        out[f"{label}_thermal_violation"] = float(
            result.thermal_violation)
        out[f"{label}_runaway"] = float(result.runaway)
        out[f"{label}_throughput_fraction"] = \
            result.throughput_fraction
    out["theta_c_per_w"] = theta
    return out


def dtm_policy_comparison(node_nm: int = 100, *,
                          tj_limit_c: float = 85.0,
                          throttle_factors: tuple[float, ...]
                          = (0.3, 0.5, 0.7),
                          duration_s: float = 30.0,
                          dt_s: float = 0.01) -> dict[str, float]:
    """Throttle-factor sweep on the power virus, DTM-sized package.

    The package is sized for the 75 % effective worst case; the virus
    then overdrives it and each policy trades throughput for junction
    margin.  Gentler throttles (larger factors) keep more throughput
    but spend more time throttled and run hotter.
    """
    if not throttle_factors:
        raise ModelParameterError("need at least one throttle factor")
    record = ITRS_2000.node(node_nm)
    virus_w = record.chip_power_w
    trace = power_virus_trace(virus_w, duration_s, dt_s=dt_s)
    out: dict[str, float] = {
        "node_nm": float(node_nm),
        "virus_w": virus_w,
        "tj_limit_c": tj_limit_c,
    }
    unmanaged, _ = _virus_simulator(
        node_nm, tj_limit_c=tj_limit_c, sizing_fraction=0.75,
        virus_w=virus_w, managed=False)
    base = unmanaged.run(trace)
    out["unmanaged_max_junction_c"] = base.max_junction_c
    out["unmanaged_violation"] = float(base.thermal_violation)
    for factor in throttle_factors:
        sim, _ = _virus_simulator(
            node_nm, tj_limit_c=tj_limit_c, sizing_fraction=0.75,
            virus_w=virus_w, managed=True, throttle_factor=factor)
        result = sim.run(trace)
        key = f"throttle_{factor:g}"
        out[f"{key}_max_junction_c"] = result.max_junction_c
        out[f"{key}_violation"] = float(result.thermal_violation)
        out[f"{key}_throughput_fraction"] = result.throughput_fraction
        out[f"{key}_throttled_fraction"] = result.throttled_fraction
        out[f"{key}_voltage_emergencies"] = \
            float(result.voltage_emergencies)
    return out
