"""Closed-loop electrothermal co-simulation (Sections 2.1, 3, 4).

The paper's three headline limits -- packaging-limited heat removal,
exponentially temperature-dependent leakage, and di/dt supply noise --
are coupled on a real die through one feedback loop:

    power -> supply current -> droop -> effective Vdd / frequency
          -> junction temperature -> leakage -> power

:class:`ElectrothermalSimulator` closes that loop around the existing
single-physics models: the :class:`~repro.pdn.transim.SupplyLoop` RLC
supply (package inductance + grid resistance + on-die decap), the
lumped :class:`~repro.thermal.rc_network.ThermalNetwork` stack, the
sensor-driven :class:`~repro.thermal.dtm.DtmController` throttle, and
:func:`~repro.thermal.electrothermal.chip_leakage_at_c` leakage.

Timescale coupling.  The electrical loop settles in nanoseconds while
the thermal control interval is milliseconds, so within one control
interval the supply always reaches steady state and the transient
matters only at the interval's load edge.  Because the RLC loop is
*linear*, the droop from an arbitrary load change is the unit-step
(well, unit-*ramp* over the gating edge time) response scaled by the
current change -- so the simulator runs the full
:func:`~repro.pdn.transim.simulate` transient once at construction to
calibrate the unit dynamic droop, then prices every control interval's
edge with one multiply.  Scenario code that needs whole waveforms
(wake-up, emergencies) calls :func:`~repro.pdn.transim.simulate`
directly.

Per control interval the order of coupling is: read the true junction
temperature -> DTM modulate the demanded dynamic power -> add leakage
at that temperature (scaled ~linearly by the sustained supply voltage)
-> convert total power to load current -> price the supply edge (worst
droop, voltage-emergency check) -> derate frequency by the worst droop
-> advance the thermal stack by the delivered heat -> record.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.obs import add_counter, observe, span, TEMPERATURE_BUCKETS
from repro.pdn.transim import CurrentStimulus, SupplyLoop, simulate
from repro.thermal.dtm import DtmController
from repro.thermal.electrothermal import T_SEARCH_MAX_C, chip_leakage_at_c
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.workloads import PowerTrace

#: Fractional frequency loss per fractional supply droop: delay of a
#: CMOS stage scales roughly as V / (V - Vt)^alpha, which linearizes to
#: ~1.5x sensitivity at Vdd ~ 3 Vt.
FREQ_VOLTAGE_SENSITIVITY = 1.5

#: Droop (as a fraction of Vdd) that counts as a voltage emergency --
#: the 10 % supply tolerance the PDN sizing chapters budget for.
EMERGENCY_DROOP_FRACTION = 0.10

#: Load-current edge time within a control interval: clock gating turns
#: units on in a few cycles, i.e. ~10 ns -- the paper's wake-up number.
GATING_EDGE_S = 1.0e-8


@dataclass(frozen=True)
class CosimResult:
    """Per-interval records of one closed-loop co-simulation."""

    dt_s: float
    #: Junction temperature at the *end* of each interval [C].
    junction_c: tuple[float, ...]
    #: Worst die supply voltage within each interval [V].
    v_min_v: tuple[float, ...]
    #: Delivered dynamic power per interval [W].
    delivered_w: tuple[float, ...]
    #: Leakage power per interval [W].
    leakage_w: tuple[float, ...]
    #: DTM throttle flag per interval.
    throttled: tuple[bool, ...]
    #: Frequency derating factor per interval (1.0 = full speed).
    freq_factor: tuple[float, ...]
    #: Demanded dynamic power per interval [W].
    demanded_w: tuple[float, ...]
    vdd_v: float
    tj_limit_c: float
    throttle_factor: float
    #: True when the run hit the leakage-model ceiling and was stopped.
    runaway: bool = False

    @property
    def max_junction_c(self) -> float:
        """Hottest junction temperature reached [C]."""
        return max(self.junction_c)

    @property
    def thermal_violation(self) -> bool:
        """Did the junction exceed its limit?"""
        return self.max_junction_c > self.tj_limit_c

    @property
    def max_droop_v(self) -> float:
        """Worst supply droop over the run [V]."""
        return self.vdd_v - min(self.v_min_v)

    @property
    def max_droop_fraction(self) -> float:
        """Worst droop as a fraction of Vdd."""
        return self.max_droop_v / self.vdd_v

    @property
    def voltage_emergencies(self) -> int:
        """Intervals whose droop exceeded the emergency budget."""
        limit = (1.0 - EMERGENCY_DROOP_FRACTION) * self.vdd_v
        return sum(1 for v in self.v_min_v if v < limit)

    @property
    def throttled_fraction(self) -> float:
        """Fraction of intervals spent throttled."""
        return sum(self.throttled) / len(self.throttled)

    @property
    def mean_leakage_w(self) -> float:
        """Average leakage power over the run [W]."""
        return sum(self.leakage_w) / len(self.leakage_w)

    @property
    def throughput_fraction(self) -> float:
        """Delivered compute over demanded compute.

        Per interval the chip runs at ``throttle x freq_factor`` of its
        demanded rate; intervals are weighted by demanded power (the
        compute proxy the DTM chapter uses).
        """
        total_demand = sum(self.demanded_w)
        if total_demand == 0:
            return 1.0
        done = sum(
            demand * (self.throttle_factor if flag else 1.0) * freq
            for demand, flag, freq
            in zip(self.demanded_w, self.throttled, self.freq_factor))
        return done / total_demand


@dataclass
class ElectrothermalSimulator:
    """Concurrent electrothermal co-simulator for one chip + package.

    The caller's ``network`` and ``controller`` are never mutated (the
    same discipline as :func:`~repro.thermal.dtm.simulate_dtm`): every
    :meth:`run` deep-copies them and resets the sensor, so back-to-back
    runs are reproducible.
    """

    node_nm: int
    supply: SupplyLoop
    network: ThermalNetwork
    controller: DtmController | None = None
    tj_limit_c: float = 85.0
    freq_sensitivity: float = FREQ_VOLTAGE_SENSITIVITY
    gating_edge_s: float = GATING_EDGE_S
    #: Unit dynamic droop [V per A of load increase], calibrated once
    #: from a full transient of the supply loop.
    _unit_droop_v_per_a: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.tj_limit_c <= self.network.t_ambient_c:
            raise ModelParameterError(
                "junction limit must exceed ambient")
        if self.freq_sensitivity < 0:
            raise ModelParameterError(
                "frequency sensitivity cannot be negative")
        if self.gating_edge_s <= 0:
            raise ModelParameterError("gating edge must be positive")
        self._unit_droop_v_per_a = self._calibrate_unit_droop()

    def _calibrate_unit_droop(self) -> float:
        """Peak dynamic droop below the new DC level per 1 A step [V/A].

        Runs one full :func:`~repro.pdn.transim.simulate` transient of
        a unit load ramp (over the gating edge time) from the settled
        state and measures how far the die voltage undershoots the new
        steady-state level.  Linearity of the RLC loop makes this exact
        for any step size, so the control loop prices every load edge
        with a single multiply instead of a transient per interval.
        """
        loop = self.supply
        window = self.gating_edge_s + loop.period_s * 2.0
        if loop.settle_s != float("inf"):
            window = self.gating_edge_s \
                + min(loop.settle_s, loop.period_s * 8.0)
        stim = CurrentStimulus.ramp(0.0, 1.0, 0.0, self.gating_edge_s)
        result = simulate(loop, stim, window,
                          dt_s=loop.period_s / 128.0)
        v_ss_new = loop.vdd_v - loop.resistance_ohm * 1.0
        return max(0.0, v_ss_new - result.min_v_die_v)

    def _interval_v_min(self, i_prev_a: float, i_new_a: float) -> float:
        """Worst die voltage within one control interval [V]."""
        loop = self.supply
        v_ss_new = loop.vdd_v - loop.resistance_ohm * i_new_a
        if i_new_a <= i_prev_a:
            # load release: voltage overshoots upward; the minimum is
            # the (lower) pre-release steady level
            return loop.vdd_v - loop.resistance_ohm * i_prev_a
        return v_ss_new \
            - (i_new_a - i_prev_a) * self._unit_droop_v_per_a

    def run(self, trace: PowerTrace,
            preheat_power_w: float | None = None) -> CosimResult:
        """Run a demanded-power trace through the closed loop.

        ``preheat_power_w`` settles the thermal stack (default: half
        the trace peak, matching ``simulate_dtm``).  The run stops
        early, flagged ``runaway=True``, if the junction passes the
        leakage model's :data:`~repro.thermal.electrothermal.T_SEARCH_MAX_C`
        ceiling -- past that point the exponential is unphysical and
        the conclusion (thermal runaway) is already established.
        """
        if preheat_power_w is None:
            preheat_power_w = 0.5 * trace.peak_w
        network = copy.deepcopy(self.network)
        controller = None
        if self.controller is not None:
            controller = copy.deepcopy(self.controller)
            controller.sensor.reset()
        network.settle(preheat_power_w)
        vdd = self.supply.vdd_v
        throttle = (1.0 if controller is None
                    else controller.throttle_factor)
        junction: list[float] = []
        v_min_hist: list[float] = []
        delivered: list[float] = []
        leakage_hist: list[float] = []
        throttled: list[bool] = []
        freq_hist: list[float] = []
        demanded: list[float] = []
        runaway = False
        i_prev = preheat_power_w / vdd
        with span("cosim.run", node_nm=self.node_nm,
                  intervals=len(trace.samples_w),
                  managed=controller is not None):
            for demand_w in trace.samples_w:
                t_j = network.junction_c
                if t_j > T_SEARCH_MAX_C:
                    runaway = True
                    break
                if controller is None:
                    dyn_w, flag = demand_w, False
                else:
                    dyn_w, flag = controller.modulate(demand_w, t_j)
                leak_w = chip_leakage_at_c(self.node_nm, t_j)
                i_new = (dyn_w + leak_w) / vdd
                v_min = self._interval_v_min(i_prev, i_new)
                droop_frac = max(0.0, (vdd - v_min) / vdd)
                freq = max(0.0,
                           1.0 - self.freq_sensitivity * droop_frac)
                # sustained heat: throttled dynamic power plus leakage
                # scaled ~linearly by the sustained supply voltage
                v_sustained = vdd - self.supply.resistance_ohm * i_new
                heat_w = dyn_w + leak_w * max(0.0, v_sustained / vdd)
                network.step(heat_w, trace.dt_s)
                junction.append(network.junction_c)
                v_min_hist.append(v_min)
                delivered.append(dyn_w)
                leakage_hist.append(leak_w)
                throttled.append(flag)
                freq_hist.append(freq)
                demanded.append(demand_w)
                i_prev = i_new
            add_counter("cosim.intervals", len(junction))
            if junction:
                observe("cosim.junction_c", max(junction),
                        TEMPERATURE_BUCKETS)
        if not junction:
            raise ModelParameterError(
                "co-simulation produced no intervals (stack preheated "
                "past the leakage ceiling?)")
        return CosimResult(
            dt_s=trace.dt_s,
            junction_c=tuple(junction),
            v_min_v=tuple(v_min_hist),
            delivered_w=tuple(delivered),
            leakage_w=tuple(leakage_hist),
            throttled=tuple(throttled),
            freq_factor=tuple(freq_hist),
            demanded_w=tuple(demanded),
            vdd_v=vdd,
            tj_limit_c=self.tj_limit_c,
            throttle_factor=throttle,
            runaway=runaway,
        )
