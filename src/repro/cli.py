"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every experiment id with its paper artifact and description.
``run <id>``
    Run one experiment and pretty-print its result.
``run-all [--jobs N] [--no-cache] [--cache-dir D] [--json] [ids...]``
    Run many (default: all) experiments through the execution engine:
    process pool, content-addressed result cache, per-experiment
    timeout/retries, JSONL run journal, metrics summary.
``chaos --plan P [--jobs N] [--json] [ids...]``
    Run a sweep under a named fault plan (crash/hang/transient/
    corrupt-cache/slow-start faults) and report which faults the
    engine absorbed vs surfaced; ``--list-plans`` shows the builtins.
    ``chaos --service`` instead SIGKILLs a live daemon mid-sweep,
    restarts it over the same state dir, and asserts the recovery
    contract: zero lost jobs, no recomputed keys, bounded requeues.
``trace [ids...] --out trace.json [--format chrome|json] [--top N]``
    Run a sweep with the tracing layer active and export the result:
    a Chrome/Perfetto trace (or a plain-JSON summary), plus a
    per-phase breakdown table and counter dump on stdout.  Every span
    of a direct run carries a freshly minted ``trace_id`` (pin it with
    ``--trace-id``).  ``--in artifact.json`` instead loads a previously
    written trace (either format) and renders it offline; ``--job`` /
    ``--trace-id`` filter the spans to one job's lanes -- an empty or
    missing artifact reports "no trace data" and exits 0.
``stats [ids...] [--format table|prom|json]``
    Run a sweep with metrics active and report the distributions: a
    per-family run-latency table plus histogram/gauge summaries
    (``table``), the Prometheus text exposition format (``prom``), or
    the full registry summary as JSON (``json``).  ``--in`` renders a
    saved registry summary (or a json trace artifact's ``metrics``
    section) offline; empty/missing payloads exit 0 with "no stats
    data".
``top [--url U] [--once] [--interval S] [--iterations N]``
    Render the daemon's metrics history (the ``/metrics/history``
    ring buffer): queue depth, running jobs, verdict counters, RSS
    and job-latency quantiles per sample, refreshed every sampling
    interval until interrupted (or ``--once``).
``profile [ids...] [--out profile.txt] [--interval S] [--top N]``
    Run an inline sweep under the wall-clock sampling profiler and
    print the hottest functions; ``--out`` writes the collapsed-stack
    file (one ``frame;frame;... count`` line per stack, ready for
    flamegraph tooling).  Profiling a job on a live daemon instead is
    ``jobs submit --profile``.
``bench [ids...] [--quick] [--repeats N] [--out-dir D]``
    Run the perf-regression benchmark harness: median-of-N cold runs
    per experiment, written as a schema-versioned ``BENCH_*.json``
    snapshot and compared against the newest earlier snapshot in the
    output directory with a noise-aware threshold.  ``run``,
    ``run-all`` and ``bench`` accept ``--preconditioner
    auto|jacobi|amg|none`` to pin the SPD-solver policy (exported as
    ``REPRO_PRECONDITIONER`` so pool workers inherit it).
``serve [--host H] [--port P] [--queue-depth N] ...``
    Run the experiment service daemon: an HTTP/JSON job API with a
    bounded multi-tenant admission queue, dispatcher threads over the
    execution engine, and the shared result store.  SIGINT/SIGTERM
    drains in-flight jobs and exits with the interrupted code.
``jobs <submit|list|status|events|results|cancel|stats|store|shutdown>``
    Client for a running service: submit a sweep and optionally wait,
    inspect or cancel jobs, stream JSONL events, read service metrics.
``cache <stats|prune> [--cache-dir D]``
    Inspect the shared result store (entry count, bytes, hit rate,
    quarantine and claim populations) or prune it by age / entry
    count / total size with LRU eviction.
``roadmap``
    Print the ITRS roadmap table the models are built on.

Exit codes
----------
``run-all``, ``trace`` and ``stats``: 0 all experiments ok; 1 partial
success (some ran, some failed); 2 usage/configuration error; 3 total
failure (nothing ok); 4 a drain signal (SIGINT/SIGTERM) interrupted
the sweep -- in-flight experiments finished and were journalled,
pending ones were cancelled.
``chaos``: 0 every recoverable fault absorbed; 1 an unrecoverable
fault surfaced (by design); 2 usage error; 3 a recoverable fault
surfaced or results were lost -- a reliability bug.  ``--service``
mode: 0 crash absorbed; 2 driver error; 3 recovery contract violated.
``bench``: 0 snapshot written and no regression (or nothing to compare
against); 1 a benchmark regressed past the threshold; 2 usage error;
3 a benchmarked experiment failed.
``serve``: 0 clean shutdown (``POST /v1/shutdown``); 4 stopped by a
drain signal.
``jobs``: 0 success; 1 the awaited job failed; 2 usage error; 5 the
service rejected the submission with backpressure (HTTP 429).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from repro.analysis import EXPERIMENTS, run_experiment
from repro.analysis.report import render_dict_rows, render_table
from repro.bench import (
    ABS_FLOOR_S,
    DEFAULT_BASELINE_DIR,
    DEFAULT_REPEATS,
    QUICK_IDS,
    REL_TOL,
    compare_snapshots,
    env_slowdown_s,
    latest_baseline,
    load_snapshot,
    run_benchmarks,
    write_snapshot,
)
from repro.engine import (
    DEFAULT_CACHE_DIR,
    EngineConfig,
    SweepResult,
    default_jobs,
    run_experiments,
)
from repro.errors import ReproError
from repro.itrs import ITRS_2000
from repro.obs import (
    EXPORT_FORMATS,
    FORMAT_CHROME,
    MetricsRegistry,
    SamplingProfiler,
    Trace,
    new_trace_id,
    phase_breakdown,
    registry_summary,
    to_prometheus,
    trace_context,
    tracing,
    write_trace,
)
from repro.reliability import (
    BUILTIN_PLANS,
    PRECONDITIONER_CHOICES,
    PRECONDITIONER_ENV,
    load_plan,
    run_chaos,
)
from repro.service.chaos import run_service_chaos
from repro.service import (
    BackpressureError,
    PRIORITIES,
    QueueConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    StoreManager,
    run_service,
)

#: run-all exit codes (2 is argparse/config usage errors).
EXIT_ALL_OK = 0
EXIT_PARTIAL_FAILURE = 1
EXIT_TOTAL_FAILURE = 3
#: A drain signal stopped the sweep (or the daemon) gracefully.
EXIT_INTERRUPTED = 4
#: The service refused a submission with backpressure (HTTP 429).
EXIT_BACKPRESSURE = 5

DEFAULT_SERVICE_URL = "http://127.0.0.1:8023"


def _print_result(result: Any) -> None:
    if isinstance(result, dict):
        rows = result.get("rows")
        if isinstance(rows, list) and rows \
                and isinstance(rows[0], dict):
            print(render_dict_rows(rows))
            print()
        curves = result.get("curves") or result.get("series")
        if isinstance(curves, dict):
            for name in curves:
                print(f"curve: {name} ({len(curves[name])} points)")
            print()
        summary = result.get("summary")
        scalars = summary if isinstance(summary, dict) else (
            result if not (rows or curves) else None)
        if isinstance(scalars, dict) and scalars:
            width = max(len(key) for key in scalars)
            for key, value in scalars.items():
                print(f"  {key.ljust(width)}  {value}")
    else:
        print(result)


def _cmd_list() -> int:
    rows = [[experiment.id, experiment.paper_artifact,
             experiment.description]
            for experiment in EXPERIMENTS.values()]
    print(render_table(["id", "artifact", "description"], rows))
    return 0


def _cmd_run(experiment_id: str) -> int:
    try:
        result = run_experiment(experiment_id)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        print(f"error: {exc!r}", file=sys.stderr)
        return 3
    experiment = EXPERIMENTS[experiment_id]
    print(f"{experiment.id} -- {experiment.description} "
          f"({experiment.paper_artifact})\n")
    _print_result(result)
    return 0


def _error_tail(error: str | None, width: int = 60) -> str:
    """The *tail* of a captured exception -- the raise site and message
    land at the end of a traceback repr, so that is the useful part."""
    if not error:
        return ""
    flat = " ".join(error.split())
    if len(flat) <= width:
        return flat
    return "..." + flat[-(width - 3):]


def _sweep_rows(sweep: SweepResult) -> list[list[Any]]:
    rows = []
    for record in sweep.records:
        rows.append([record.experiment_id, record.status,
                     "hit" if record.cache_hit else "miss",
                     f"{record.wall_time_s:.3f}", record.attempts,
                     _error_tail(record.error)])
    return rows


def _sweep_exit_code(sweep: SweepResult) -> int:
    """0 all ok; 1 partial success; 3 total failure; 4 interrupted."""
    if sweep.interrupted:
        return EXIT_INTERRUPTED
    if sweep.metrics.all_ok:
        return EXIT_ALL_OK
    if sweep.metrics.ok > 0:
        return EXIT_PARTIAL_FAILURE
    return EXIT_TOTAL_FAILURE


def _resolve_jobs(args: argparse.Namespace) -> int:
    """Worker count: ``--jobs``/``--workers`` wins, then the
    ``REPRO_WORKERS``-aware default.

    Resolved per command invocation (not at parser build time) so a bad
    ``REPRO_WORKERS`` value is a clean usage error on the sweep
    commands and cannot break unrelated ones like ``repro roadmap``.
    """
    if args.jobs is not None:
        return args.jobs
    return default_jobs()


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", "--workers", dest="jobs", type=int, default=None,
        help="worker processes (default: $REPRO_WORKERS if set, "
             "else min(4, CPUs))")


def _add_preconditioner_argument(
        parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preconditioner", choices=PRECONDITIONER_CHOICES,
        default=None,
        help="SPD solver preconditioner policy: auto picks jacobi "
             "below the AMG threshold and the multilevel hierarchy "
             "above it (default: $REPRO_PRECONDITIONER or auto)")


def _apply_preconditioner(args: argparse.Namespace) -> None:
    """Export ``--preconditioner`` so worker processes inherit it."""
    choice = getattr(args, "preconditioner", None)
    if choice:
        os.environ[PRECONDITIONER_ENV] = choice


def _cmd_run_all(args: argparse.Namespace) -> int:
    ids = args.experiment_ids or None
    try:
        config = EngineConfig(
            jobs=_resolve_jobs(args),
            timeout_s=args.timeout,
            retries=args.retries,
            cache_enabled=not args.no_cache,
            cache_dir=Path(args.cache_dir),
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        sweep = run_experiments(ids, config=config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "records": [r.to_json_dict() for r in sweep.records],
            "metrics": sweep.metrics.to_json_dict(),
        }, indent=2, sort_keys=True))
    else:
        print(render_table(
            ["id", "status", "cache", "time [s]", "attempts", "error"],
            _sweep_rows(sweep)))
        print()
        print(sweep.metrics.render())
    return _sweep_exit_code(sweep)


def _cmd_chaos_service(args: argparse.Namespace) -> int:
    """SIGKILL/restart recovery drill against a real daemon."""
    import tempfile

    def run(state_dir: str) -> int:
        report = run_service_chaos(
            state_dir,
            experiment_ids=args.experiment_ids or None,
            job_timeout_s=args.job_timeout,
            out=(lambda *_: None) if args.json else print)
        if args.json:
            print(json.dumps(report.to_json_dict(), indent=2,
                             sort_keys=True))
        else:
            print()
            print(report.render())
        return report.exit_code

    state_dir = args.state_dir or args.cache_dir
    if state_dir is not None:
        return run(state_dir)
    with tempfile.TemporaryDirectory(
            prefix="repro-service-chaos-") as tmp:
        return run(tmp)


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.service:
        return _cmd_chaos_service(args)
    if args.list_plans:
        rows = [[plan.name, len(plan.faults),
                 ", ".join(sorted({s.kind for s in plan.faults}))]
                for plan in BUILTIN_PLANS.values()]
        print(render_table(["plan", "faults", "kinds"], rows))
        return 0
    if args.plan is None:
        print("error: --plan is required (or use --list-plans)",
              file=sys.stderr)
        return 2
    try:
        plan = load_plan(args.plan)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_chaos(
            plan,
            args.experiment_ids or None,
            jobs=_resolve_jobs(args),
            timeout_s=args.timeout,
            retries=args.retries,
            cache_dir=args.cache_dir,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2,
                         sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _artifact_spans(payload: Any) -> list[dict]:
    """Span dicts from either trace artifact format.

    A ``json``-format artifact carries a ``spans`` list directly; a
    ``chrome`` artifact's complete (``ph=X``) events are mapped back
    to span dicts (``dur`` is microseconds there).
    """
    if not isinstance(payload, (dict, list)):
        return []
    if isinstance(payload, dict) \
            and isinstance(payload.get("spans"), list):
        return [span for span in payload["spans"]
                if isinstance(span, dict)]
    events = (payload.get("traceEvents")
              if isinstance(payload, dict) else payload)
    spans: list[dict] = []
    for event in events if isinstance(events, list) else ():
        if isinstance(event, dict) and event.get("ph") == "X":
            spans.append({
                "name": event.get("name", "?"),
                "duration_s": float(event.get("dur") or 0.0) / 1e6,
                "pid": event.get("pid", 0),
                "attributes": dict(event.get("args") or {}),
            })
    return spans


def _filter_spans(spans: list[dict], job_id: str | None,
                  trace_id: str | None) -> list[dict]:
    """Spans whose correlation attributes match every given filter."""
    if job_id is None and trace_id is None:
        return spans
    kept = []
    for span in spans:
        attributes = span.get("attributes") or {}
        if job_id is not None \
                and attributes.get("job_id") != job_id:
            continue
        if trace_id is not None \
                and attributes.get("trace_id") != trace_id:
            continue
        kept.append(span)
    return kept


def _span_dict_breakdown(spans: list[dict],
                         top: int | None = None) -> list[dict]:
    """``phase_breakdown`` over plain span dicts (loaded artifacts)."""
    grouped: dict[str, dict] = {}
    for span in spans:
        duration_s = float(span.get("duration_s") or 0.0)
        row = grouped.setdefault(str(span.get("name", "?")), {
            "name": str(span.get("name", "?")), "count": 0,
            "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += duration_s
        row["max_s"] = max(row["max_s"], duration_s)
    rows = sorted(grouped.values(),
                  key=lambda row: (-row["total_s"], row["name"]))
    if top is not None and top >= 0:
        rows = rows[:top]
    grand_total = sum(row["total_s"] for row in grouped.values())
    for row in rows:
        row["mean_s"] = row["total_s"] / row["count"]
        row["share"] = (row["total_s"] / grand_total
                        if grand_total > 0 else 0.0)
    return rows


def _phase_rows(breakdown: list[dict]) -> list[list[Any]]:
    return [[row["name"], row["count"], f"{row['total_s']:.4f}",
             f"{row['mean_s']:.4f}", f"{row['max_s']:.4f}",
             f"{100.0 * row['share']:.1f}%"]
            for row in breakdown]


_PHASE_HEADERS = ["phase", "count", "total [s]", "mean [s]",
                  "max [s]", "share"]


def _render_span_lanes(spans: list[dict]) -> str:
    """Per-process lane summary for a filtered span set."""
    lanes: dict[Any, dict] = {}
    for span in spans:
        lane = lanes.setdefault(span.get("pid", 0),
                                {"count": 0, "total_s": 0.0})
        lane["count"] += 1
        lane["total_s"] += float(span.get("duration_s") or 0.0)
    rows = [[pid, lane["count"], f"{lane['total_s']:.4f}"]
            for pid, lane in sorted(lanes.items())]
    return render_table(["pid", "spans", "total [s]"], rows)


def _cmd_trace_artifact(args: argparse.Namespace) -> int:
    """Offline mode: render (and filter) a saved trace artifact."""
    path = Path(args.in_path)
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"no trace data in {path}: {exc}")
        return EXIT_ALL_OK
    spans = _artifact_spans(payload)
    if not spans:
        print(f"no trace data in {path}")
        return EXIT_ALL_OK
    filtered = _filter_spans(spans, args.job, args.trace_id)
    if not filtered:
        wanted = " ".join(
            part for part in (
                f"job_id={args.job}" if args.job else "",
                f"trace_id={args.trace_id}" if args.trace_id else "")
            if part)
        print(f"no trace data matching {wanted or 'filters'} "
              f"in {path} ({len(spans)} spans total)")
        return EXIT_ALL_OK
    print(render_table(
        _PHASE_HEADERS,
        _phase_rows(_span_dict_breakdown(filtered, top=args.top))))
    print()
    print(_render_span_lanes(filtered))
    print(f"\n{len(filtered)} of {len(spans)} spans from {path}")
    return EXIT_ALL_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.in_path is not None:
        return _cmd_trace_artifact(args)
    ids = args.experiment_ids or None
    try:
        config = EngineConfig(
            jobs=_resolve_jobs(args),
            timeout_s=args.timeout,
            retries=args.retries,
            cache_enabled=not args.no_cache,
            cache_dir=Path(args.cache_dir),
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Direct runs mint their own correlation id (the daemon mints one
    # per job); every span -- including pool workers' -- carries it.
    trace_id = args.trace_id or new_trace_id()
    trace = Trace("repro-sweep")
    try:
        with tracing(trace), trace_context(trace_id=trace_id):
            sweep = run_experiments(ids, config=config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_path = write_trace(trace, args.out, format=args.format)

    span_dicts = [span.to_json_dict() for span in trace.spans]
    filtered = _filter_spans(span_dicts, args.job, None)
    if filtered is not span_dicts and len(filtered) != len(span_dicts):
        print(f"{len(filtered)} of {len(span_dicts)} spans match "
              f"job_id={args.job}")
        print()
        rows = _phase_rows(_span_dict_breakdown(filtered,
                                                top=args.top))
    else:
        rows = _phase_rows(phase_breakdown(trace, top=args.top))
    print(render_table(_PHASE_HEADERS, rows))
    counters = trace.counters.as_dict()
    if counters:
        print()
        print(render_table(
            ["counter", "value"],
            [[name, f"{value:g}"] for name, value in counters.items()]))
    print()
    print(sweep.metrics.render())
    print(f"\ntrace_id {trace_id}")
    print(f"trace ({args.format}, {len(trace)} spans) "
          f"written to {out_path}")
    return _sweep_exit_code(sweep)


STATS_FORMATS = ("table", "prom", "json")


def _format_seconds(value: Any) -> str:
    return "-" if value is None else f"{float(value):.4f}"


def _series_label(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}"
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _stats_tables(trace: Trace) -> str:
    """The human-readable ``repro stats`` report body."""
    metrics = trace.metrics
    sections: list[str] = []
    family_rows = []
    histogram_rows = []
    for name, labels, histogram in metrics.histograms():
        summary = histogram.summary()
        if name == "engine.run_s" and "family" in labels:
            family_rows.append([
                labels["family"], summary["count"],
                _format_seconds(summary["mean"]),
                _format_seconds(summary["p50"]),
                _format_seconds(summary["p90"]),
                _format_seconds(summary["p99"]),
                _format_seconds(summary["max"]),
            ])
        histogram_rows.append([
            _series_label(name, labels), summary["count"],
            "-" if summary["mean"] is None else f"{summary['mean']:.4g}",
            "-" if summary["p50"] is None else f"{summary['p50']:.4g}",
            "-" if summary["p99"] is None else f"{summary['p99']:.4g}",
            "-" if summary["max"] is None else f"{summary['max']:.4g}",
        ])
    if family_rows:
        sections.append("run latency by experiment family:")
        sections.append(render_table(
            ["family", "runs", "mean [s]", "p50 [s]", "p90 [s]",
             "p99 [s]", "max [s]"], sorted(family_rows)))
    if histogram_rows:
        sections.append("histograms:")
        sections.append(render_table(
            ["series", "count", "mean", "p50", "p99", "max"],
            histogram_rows))
    gauges = metrics.gauges()
    if gauges:
        sections.append("gauges:")
        sections.append(render_table(
            ["gauge", "value"],
            [[name, f"{value:g}"] for name, value in gauges.items()]))
    return "\n\n".join(sections)


def _summary_stats_tables(summary: dict) -> str:
    """The ``repro stats`` table body from a saved registry summary."""
    sections: list[str] = []
    histogram_rows = []
    for entry in summary.get("histograms") or []:
        if not isinstance(entry, dict):
            continue
        histogram_rows.append([
            _series_label(str(entry.get("name", "?")),
                          dict(entry.get("labels") or {})),
            entry.get("count", 0),
            *("-" if entry.get(key) is None
              else f"{float(entry[key]):.4g}"
              for key in ("mean", "p50", "p99", "max")),
        ])
    if histogram_rows:
        sections.append("histograms:")
        sections.append(render_table(
            ["series", "count", "mean", "p50", "p99", "max"],
            histogram_rows))
    gauges = summary.get("gauges") or {}
    if gauges:
        sections.append("gauges:")
        sections.append(render_table(
            ["gauge", "value"],
            [[name, f"{float(value):g}"]
             for name, value in sorted(gauges.items())]))
    counters = summary.get("counters") or {}
    if counters:
        sections.append("counters:")
        sections.append(render_table(
            ["counter", "value"],
            [[name, f"{float(value):g}"]
             for name, value in sorted(counters.items())]))
    return "\n\n".join(sections)


def _cmd_stats_artifact(args: argparse.Namespace) -> int:
    """Offline mode: render a saved metrics summary."""
    path = Path(args.in_path)
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"no stats data in {path}: {exc}")
        return EXIT_ALL_OK
    # Accept a bare registry summary or a json trace artifact (whose
    # metrics section is one).
    summary = (payload.get("metrics")
               if isinstance(payload, dict)
               and isinstance(payload.get("metrics"), dict)
               else payload)
    if not isinstance(summary, dict) or not any(
            summary.get(key) for key in ("counters", "gauges",
                                         "histograms")):
        print(f"no stats data in {path}")
        return EXIT_ALL_OK
    if args.format == "prom":
        registry = MetricsRegistry()
        registry.merge_payload(summary)
        print(to_prometheus(registry), end="")
    elif args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_summary_stats_tables(summary))
    return EXIT_ALL_OK


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.in_path is not None:
        return _cmd_stats_artifact(args)
    ids = args.experiment_ids or None
    try:
        config = EngineConfig(
            jobs=_resolve_jobs(args),
            timeout_s=args.timeout,
            retries=args.retries,
            cache_enabled=not args.no_cache,
            cache_dir=Path(args.cache_dir),
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = Trace("repro-stats")
    try:
        with tracing(trace):
            sweep = run_experiments(ids, config=config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        print(to_prometheus(trace.metrics), end="")
    elif args.format == "json":
        print(json.dumps(registry_summary(trace.metrics), indent=2,
                         sort_keys=True))
    else:
        print(_stats_tables(trace))
        print()
        print(sweep.metrics.render())
    return _sweep_exit_code(sweep)


def _cmd_bench(args: argparse.Namespace) -> int:
    ids = args.experiment_ids or (list(QUICK_IDS) if args.quick
                                  else None)
    try:
        slowdown = (args.slowdown if args.slowdown is not None
                    else env_slowdown_s())
        if slowdown < 0:
            raise ReproError(f"--slowdown must be >= 0, "
                             f"got {slowdown}")
        if args.repeats < 1:
            raise ReproError(f"--repeats must be >= 1, "
                             f"got {args.repeats}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        snapshot = run_benchmarks(ids, repeats=args.repeats,
                                  slowdown_s=slowdown)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    out_dir = Path(args.out_dir)
    baseline_path = (None if args.no_compare
                     else latest_baseline(out_dir))
    path = write_snapshot(snapshot, out_dir)
    comparison = None
    if baseline_path is not None:
        comparison = compare_snapshots(
            load_snapshot(baseline_path), snapshot,
            rel_tol=args.rel_tol, abs_floor_s=args.abs_floor)
    if args.json:
        payload = {"snapshot_path": str(path), "snapshot": snapshot}
        if comparison is not None:
            payload["baseline_path"] = str(baseline_path)
            payload["comparison"] = comparison.to_json_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [[entry["id"], entry["family"],
                 _format_seconds(entry["median_s"]),
                 _format_seconds(entry["best_s"]),
                 f"{entry['peak_rss_kb'] / 1024.0:.1f}",
                 f"{entry['solver_iterations']:g}"]
                for entry in snapshot["benchmarks"]]
        print(render_table(
            ["id", "family", "median [s]", "best [s]", "peak RSS [MB]",
             "solver iters"], rows))
        print(f"\nsnapshot ({len(snapshot['benchmarks'])} "
              f"benchmark(s), {args.repeats} repeat(s)) "
              f"written to {path}")
        if comparison is None:
            print("no earlier snapshot to compare against"
                  if not args.no_compare else "comparison skipped")
        else:
            print(f"\nbaseline {baseline_path}")
            print(comparison.render())
    return 0 if comparison is None else comparison.exit_code


#: ``repro top`` columns: (sample key, header, formatter).
_TOP_COLUMNS: tuple[tuple[str, str], ...] = (
    ("queued", "queued"),
    ("running", "running"),
    ("jobs", "jobs"),
    ("jobs_done", "done"),
    ("jobs_failed", "failed"),
    ("requests", "requests"),
    ("rss_peak_kb", "rss [MB]"),
    ("service.job_wall_s.p50", "job p50 [s]"),
    ("service.job_wall_s.p99", "job p99 [s]"),
)


def _history_table(samples: list[dict]) -> str:
    rows = []
    for sample in samples:
        row: list[Any] = [sample.get("seq", "-")]
        for key, _header in _TOP_COLUMNS:
            value = sample.get(key)
            if value is None:
                row.append("-")
            elif key == "rss_peak_kb":
                row.append(f"{float(value) / 1024.0:.1f}")
            elif isinstance(value, float) and not value.is_integer():
                row.append(f"{value:.4g}")
            else:
                row.append(f"{value:g}" if isinstance(value, float)
                           else value)
        rows.append(row)
    return render_table(
        ["seq"] + [header for _key, header in _TOP_COLUMNS], rows)


def _cmd_top(args: argparse.Namespace) -> int:
    """Render the daemon's metrics-history ring buffer."""
    client = ServiceClient(args.url, timeout_s=args.http_timeout,
                           retries=args.http_retries)
    iterations = 1 if args.once else args.iterations
    since = 0
    shown = 0
    printed_any = False
    try:
        while True:
            try:
                payload = client.history(since=since,
                                         limit=args.limit)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            samples = payload.get("samples") or []
            if samples:
                if printed_any:
                    print()
                print(_history_table(samples))
                printed_any = True
                next_seq = payload.get("next_seq")
                if isinstance(next_seq, int):
                    since = next_seq
            shown += 1
            if iterations and shown >= iterations:
                if not printed_any:
                    print("no metrics history yet (the daemon "
                          "samples once per interval)")
                return EXIT_ALL_OK
            interval = args.interval
            if interval is None:
                interval = float(payload.get("interval_s") or 1.0)
            time.sleep(max(0.05, interval))
    except KeyboardInterrupt:
        return EXIT_ALL_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    """Inline sweep under the sampling profiler; hottest functions."""
    ids = args.experiment_ids or None
    try:
        # Inline executor: the wall-clock sampler only sees threads of
        # this process, so the sweep must not fork pool workers.
        config = EngineConfig(
            jobs=1,
            executor="inline",
            timeout_s=args.timeout,
            retries=0,
            cache_enabled=not args.no_cache,
            cache_dir=Path(args.cache_dir),
        )
        profiler = SamplingProfiler(args.interval)
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiler.start()
    try:
        sweep = run_experiments(ids, config=config)
    except ReproError as exc:
        profiler.stop()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        profiler.stop()
    rows = [[row["function"], row["samples"],
             f"{100.0 * row['share']:.1f}%"]
            for row in profiler.top_functions(top=args.top)]
    if rows:
        print(render_table(["function", "samples", "share"], rows))
    else:
        print("no samples captured (sweep finished faster than one "
              f"sampling interval of {profiler.interval_s:g}s)")
    print(f"\n{profiler.samples} samples over "
          f"{profiler.duration_s:.3f}s "
          f"({len(profiler.collapsed())} distinct stacks)")
    if args.out:
        out_path = profiler.write_collapsed(args.out)
        print(f"collapsed stacks written to {out_path}")
    return _sweep_exit_code(sweep)


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            cache_dir=Path(args.cache_dir),
            queue=QueueConfig(max_depth=args.queue_depth,
                              max_per_tenant=args.tenant_depth),
            dispatchers=args.dispatchers,
            executor=args.executor,
            trace_out=(Path(args.trace_out)
                       if args.trace_out else None),
            store_max_bytes=args.store_max_bytes,
            store_max_entries=args.store_max_entries,
            store_max_age_s=args.store_max_age,
            stall_timeout_s=args.stall_timeout,
            watchdog_poll_s=args.watchdog_poll,
            max_recovery_attempts=args.max_recovery_attempts,
            log_path=Path(args.log_path) if args.log_path else None,
            log_level=args.log_level,
            history_interval_s=args.history_interval,
            history_capacity=args.history_capacity,
            profile_interval_s=args.profile_interval,
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    signalled = run_service(config)
    print("repro service stopped"
          + (" (drain signal)" if signalled else ""))
    return EXIT_INTERRUPTED if signalled else EXIT_ALL_OK


def _jobs_client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url, timeout_s=args.http_timeout,
                         retries=args.http_retries)


def _job_row(job: dict) -> list[Any]:
    return [job["id"], job["state"], job["tenant"], job["priority"],
            len(job.get("experiments", [])) or "all",
            _error_tail(job.get("error"), width=40)]


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    try:
        return _dispatch_jobs(args, client)
    except BackpressureError as exc:
        print(f"rejected: {exc} "
              f"(retry after {exc.retry_after_s:g}s)",
              file=sys.stderr)
        return EXIT_BACKPRESSURE
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch_jobs(args: argparse.Namespace,
                   client: ServiceClient) -> int:
    action = args.jobs_command
    if action == "submit":
        job = client.submit(
            args.experiment_ids or None, tenant=args.tenant,
            priority=args.priority, timeout_s=args.timeout,
            retries=args.retries, workers=args.workers,
            use_cache=not args.no_cache,
            deadline_s=args.deadline,
            idempotency_key=args.idempotency_key,
            profile=args.profile)
        if not args.wait:
            print(json.dumps(job, indent=2, sort_keys=True))
            return EXIT_ALL_OK
        final = client.wait(job["id"], timeout_s=args.wait_timeout)
        print(json.dumps(final, indent=2, sort_keys=True))
        return (EXIT_ALL_OK if final["state"] == "done"
                else EXIT_PARTIAL_FAILURE)
    if action == "list":
        jobs = client.jobs(args.tenant)
        print(render_table(
            ["id", "state", "tenant", "priority", "experiments",
             "error"], [_job_row(job) for job in jobs]))
        return EXIT_ALL_OK
    if action == "status":
        print(json.dumps(client.job(args.job_id), indent=2,
                         sort_keys=True))
        return EXIT_ALL_OK
    if action == "events":
        for event in client.events(args.job_id, follow=args.follow,
                                   since=args.since):
            print(json.dumps(event, sort_keys=True))
        return EXIT_ALL_OK
    if action == "results":
        payload = client.result(args.job_id)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return (EXIT_ALL_OK if payload["state"] == "done"
                else EXIT_PARTIAL_FAILURE)
    if action == "cancel":
        payload = client.cancel(args.job_id)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_ALL_OK if payload["cancelled"] else 2
    if action == "stats":
        if args.format == "prom":
            print(client.stats_prometheus(), end="")
        else:
            print(json.dumps(client.stats(), indent=2,
                             sort_keys=True))
        return EXIT_ALL_OK
    if action == "store":
        print(json.dumps(client.store(), indent=2, sort_keys=True))
        return EXIT_ALL_OK
    if action == "profile":
        text = client.profile(args.job_id)
        if args.out:
            out_path = Path(args.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(text, encoding="utf-8")
            print(f"collapsed stacks written to {out_path}")
        else:
            print(text, end="")
        return EXIT_ALL_OK
    # shutdown
    print(json.dumps(client.shutdown(), indent=2, sort_keys=True))
    return EXIT_ALL_OK


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{count} B")
        value /= 1024.0
    return f"{count} B"


def _cmd_cache(args: argparse.Namespace) -> int:
    manager = StoreManager(Path(args.cache_dir))
    if args.cache_command == "stats":
        stats = manager.stats()
        if args.json:
            print(json.dumps(stats.to_json_dict(), indent=2,
                             sort_keys=True))
            return EXIT_ALL_OK
        hit_rate = ("-" if stats.hit_rate is None
                    else f"{100.0 * stats.hit_rate:.1f}%")
        print(render_table(["store", "value"], [
            ["directory", str(manager.root)],
            ["entries", stats.entries],
            ["size", _format_bytes(stats.bytes)],
            ["quarantined", stats.quarantined],
            ["live claims", stats.claims],
            ["journalled runs", stats.journal_runs],
            ["journalled hits", stats.journal_hits],
            ["hit rate", hit_rate],
        ]))
        return EXIT_ALL_OK
    # prune
    if (args.max_age is None and args.max_entries is None
            and args.max_bytes is None):
        print("error: prune needs at least one bound "
              "(--max-age / --max-entries / --max-bytes)",
              file=sys.stderr)
        return 2
    report = manager.prune(max_age_s=args.max_age,
                           max_entries=args.max_entries,
                           max_bytes=args.max_bytes)
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2,
                         sort_keys=True))
    else:
        reasons = ", ".join(f"{reason}: {count}" for reason, count
                            in sorted(report.reasons.items()))
        print(f"evicted {report.evicted} entr"
              f"{'y' if report.evicted == 1 else 'ies'} "
              f"({_format_bytes(report.freed_bytes)} freed"
              + (f"; {reasons}" if reasons else "")
              + f"), kept {report.kept} "
              f"({_format_bytes(report.kept_bytes)})")
    return EXIT_ALL_OK


def _cmd_roadmap() -> int:
    headers = ["node [nm]", "year", "Vdd [V]", "Leff [nm]", "Tox [A]",
               "clock [GHz]", "power [W]", "area [mm2]", "Tj [C]"]
    rows = [[r.node_nm, r.year, r.vdd_v, r.leff_nm, r.tox_physical_a,
             r.clock_ghz, r.chip_power_w, r.die_area_mm2, r.tj_max_c]
            for r in ITRS_2000]
    print(render_table(headers, rows))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Sylvester & Kaul, DAC 2001",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_preconditioner_argument(run_parser)
    run_all = subparsers.add_parser(
        "run-all", help="run many experiments through the engine")
    run_all.add_argument("experiment_ids", nargs="*", metavar="id",
                         help="experiment ids (default: all)")
    _add_jobs_argument(run_all)
    _add_preconditioner_argument(run_all)
    run_all.add_argument("--no-cache", action="store_true",
                         help="bypass the result cache")
    run_all.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                         help=f"cache directory "
                              f"(default: {DEFAULT_CACHE_DIR})")
    run_all.add_argument("--timeout", type=float, default=120.0,
                         help="per-experiment timeout in seconds")
    run_all.add_argument("--retries", type=int, default=0,
                         help="retries per failing experiment")
    run_all.add_argument("--json", action="store_true",
                         help="emit records + metrics as JSON")
    chaos = subparsers.add_parser(
        "chaos",
        help="run a sweep under an injected fault plan")
    chaos.add_argument("experiment_ids", nargs="*", metavar="id",
                       help="experiment ids (default: all)")
    chaos.add_argument("--plan", default=None,
                       help="builtin plan name or a .json plan file")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list the builtin fault plans and exit")
    _add_jobs_argument(chaos)
    chaos.add_argument("--timeout", type=float, default=20.0,
                       help="per-experiment timeout in seconds "
                            "(also what kills hang faults)")
    chaos.add_argument("--retries", type=int, default=2,
                       help="retries per failing experiment")
    chaos.add_argument("--cache-dir", default=None,
                       help="cache directory (default: a fresh "
                            "temporary dir, removed afterwards)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the chaos report as JSON")
    chaos.add_argument("--service", action="store_true",
                       help="SIGKILL a live daemon mid-sweep, restart "
                            "it over the same state dir, and verify "
                            "crash recovery instead of a fault plan")
    chaos.add_argument("--state-dir", default=None,
                       help="service state dir for --service "
                            "(default: --cache-dir, else a temp dir)")
    chaos.add_argument("--job-timeout", type=float, default=120.0,
                       help="--service per-job recovery deadline in "
                            "seconds (default: %(default)s)")
    trace_parser = subparsers.add_parser(
        "trace",
        help="run a traced sweep and export the profile")
    trace_parser.add_argument("experiment_ids", nargs="*", metavar="id",
                              help="experiment ids (default: all)")
    trace_parser.add_argument("--out", default="trace.json",
                              help="trace output path "
                                   "(default: trace.json)")
    trace_parser.add_argument("--format", choices=EXPORT_FORMATS,
                              default=FORMAT_CHROME,
                              help="chrome (Perfetto-loadable trace "
                                   "events) or json (summary + spans)")
    trace_parser.add_argument("--top", type=int, default=None,
                              metavar="N",
                              help="show only the N slowest phases")
    trace_parser.add_argument("--in", dest="in_path", default=None,
                              metavar="ARTIFACT",
                              help="render a saved trace artifact "
                                   "(chrome or json format) instead "
                                   "of running a sweep; empty or "
                                   "missing data exits 0")
    trace_parser.add_argument("--job", default=None, metavar="JOB_ID",
                              help="only spans tagged with this "
                                   "job_id (service traces)")
    trace_parser.add_argument("--trace-id", default=None,
                              help="with --in: only spans tagged with "
                                   "this trace_id; live runs: pin the "
                                   "minted correlation id instead")
    _add_jobs_argument(trace_parser)
    trace_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the result cache")
    trace_parser.add_argument("--cache-dir",
                              default=str(DEFAULT_CACHE_DIR),
                              help=f"cache directory "
                                   f"(default: {DEFAULT_CACHE_DIR})")
    trace_parser.add_argument("--timeout", type=float, default=120.0,
                              help="per-experiment timeout in seconds")
    trace_parser.add_argument("--retries", type=int, default=0,
                              help="retries per failing experiment")
    stats = subparsers.add_parser(
        "stats",
        help="run a sweep and report metric distributions")
    stats.add_argument("experiment_ids", nargs="*", metavar="id",
                       help="experiment ids (default: all)")
    stats.add_argument("--format", choices=STATS_FORMATS,
                       default="table",
                       help="table (per-family latency + histogram "
                            "summaries), prom (Prometheus text "
                            "exposition), or json (registry summary)")
    stats.add_argument("--in", dest="in_path", default=None,
                       metavar="ARTIFACT",
                       help="render a saved registry summary (or a "
                            "json trace artifact's metrics section) "
                            "instead of running a sweep; empty or "
                            "missing data exits 0")
    _add_jobs_argument(stats)
    stats.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache")
    stats.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help=f"cache directory "
                            f"(default: {DEFAULT_CACHE_DIR})")
    stats.add_argument("--timeout", type=float, default=120.0,
                       help="per-experiment timeout in seconds")
    stats.add_argument("--retries", type=int, default=0,
                       help="retries per failing experiment")
    bench = subparsers.add_parser(
        "bench",
        help="run the perf-regression benchmark harness")
    bench.add_argument("experiment_ids", nargs="*", metavar="id",
                       help="experiment ids (default: all, or the "
                            "quick subset with --quick)")
    bench.add_argument("--quick", action="store_true",
                       help=f"benchmark the fast CI subset "
                            f"({', '.join(QUICK_IDS)})")
    bench.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                       help="cold runs per benchmark; the median is "
                            "recorded (default: %(default)s)")
    bench.add_argument("--out-dir", default=str(DEFAULT_BASELINE_DIR),
                       help=f"snapshot directory; the newest earlier "
                            f"BENCH_*.json there is the comparison "
                            f"baseline (default: "
                            f"{DEFAULT_BASELINE_DIR})")
    bench.add_argument("--rel-tol", type=float, default=REL_TOL,
                       help="relative regression gate "
                            "(default: %(default)s)")
    bench.add_argument("--abs-floor", type=float, default=ABS_FLOOR_S,
                       help="absolute regression floor in seconds "
                            "(default: %(default)s)")
    bench.add_argument("--slowdown", type=float, default=None,
                       metavar="S",
                       help="synthetic per-run slowdown pad in "
                            "seconds, for exercising the comparator "
                            "(default: $REPRO_BENCH_SLOWDOWN_S or 0)")
    bench.add_argument("--no-compare", action="store_true",
                       help="write the snapshot without comparing")
    bench.add_argument("--json", action="store_true",
                       help="emit the snapshot + comparison as JSON")
    _add_preconditioner_argument(bench)
    top = subparsers.add_parser(
        "top", help="render the daemon's metrics history")
    top.add_argument("--url", default=DEFAULT_SERVICE_URL,
                     help="service base URL (default: %(default)s)")
    top.add_argument("--http-timeout", type=float, default=10.0,
                     help="per-request timeout in seconds "
                          "(default: %(default)s)")
    top.add_argument("--http-retries", type=int, default=0,
                     help="retries for connection errors "
                          "(default: %(default)s)")
    top.add_argument("--once", action="store_true",
                     help="print the current history and exit")
    top.add_argument("--interval", type=float, default=None,
                     metavar="S",
                     help="refresh period (default: the daemon's "
                          "sampling interval)")
    top.add_argument("--iterations", type=int, default=0,
                     metavar="N",
                     help="stop after N refreshes (default: run "
                          "until interrupted)")
    top.add_argument("--limit", type=int, default=None, metavar="N",
                     help="at most N samples per refresh (newest)")
    profile_parser = subparsers.add_parser(
        "profile",
        help="run an inline sweep under the sampling profiler")
    profile_parser.add_argument("experiment_ids", nargs="*",
                                metavar="id",
                                help="experiment ids (default: all)")
    profile_parser.add_argument("--out", default=None,
                                metavar="PATH",
                                help="write the collapsed-stack file "
                                     "here (flamegraph.pl input)")
    profile_parser.add_argument("--interval", type=float,
                                default=0.005, metavar="S",
                                help="sampling period in seconds "
                                     "(default: %(default)s)")
    profile_parser.add_argument("--top", type=int, default=15,
                                metavar="N",
                                help="hottest functions to print "
                                     "(default: %(default)s)")
    profile_parser.add_argument("--no-cache", action="store_true",
                                help="bypass the result cache (cache "
                                     "hits skip the compute you are "
                                     "trying to profile)")
    profile_parser.add_argument("--cache-dir",
                                default=str(DEFAULT_CACHE_DIR),
                                help=f"cache directory "
                                     f"(default: {DEFAULT_CACHE_DIR})")
    profile_parser.add_argument("--timeout", type=float,
                                default=120.0,
                                help="per-experiment timeout in "
                                     "seconds")
    _add_preconditioner_argument(profile_parser)
    serve = subparsers.add_parser(
        "serve", help="run the experiment service daemon")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: %(default)s)")
    serve.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help=f"shared result store directory "
                            f"(default: {DEFAULT_CACHE_DIR})")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="global admission queue bound "
                            "(default: %(default)s)")
    serve.add_argument("--tenant-depth", type=int, default=8,
                       help="per-tenant queued-job bound "
                            "(default: %(default)s)")
    serve.add_argument("--dispatchers", type=int, default=1,
                       help="concurrent jobs (default: %(default)s)")
    serve.add_argument("--executor", choices=("process", "inline"),
                       default="process",
                       help="engine executor for job sweeps "
                            "(default: %(default)s)")
    serve.add_argument("--trace-out", default=None,
                       help="write the service trace summary here on "
                            "shutdown (json format)")
    serve.add_argument("--store-max-bytes", type=int, default=None,
                       help="prune the store past this size (LRU)")
    serve.add_argument("--store-max-entries", type=int, default=None,
                       help="prune the store past this entry count")
    serve.add_argument("--store-max-age", type=float, default=None,
                       metavar="S",
                       help="prune entries idle longer than S seconds")
    serve.add_argument("--stall-timeout", type=float, default=300.0,
                       metavar="S",
                       help="watchdog requeues a job whose heartbeat "
                            "is older than S seconds "
                            "(default: %(default)s)")
    serve.add_argument("--watchdog-poll", type=float, default=0.25,
                       metavar="S",
                       help="watchdog scan interval in seconds "
                            "(default: %(default)s)")
    serve.add_argument("--max-recovery-attempts", type=int, default=3,
                       help="crash/stall requeues per job before it "
                            "fails for good (default: %(default)s)")
    serve.add_argument("--log-path", default=None, metavar="PATH",
                       help="structured JSONL log file (default: "
                            "<cache-dir>/service/service.log.jsonl)")
    serve.add_argument("--log-level",
                       choices=("debug", "info", "warning", "error"),
                       default=None,
                       help="structured-log threshold (default: "
                            "$REPRO_LOG_LEVEL or info)")
    serve.add_argument("--history-interval", type=float, default=1.0,
                       metavar="S",
                       help="metrics-history sampling period "
                            "(default: %(default)s)")
    serve.add_argument("--history-capacity", type=int, default=600,
                       help="metrics-history ring-buffer size "
                            "(default: %(default)s)")
    serve.add_argument("--profile-interval", type=float,
                       default=0.005, metavar="S",
                       help="sampling period for jobs submitted with "
                            "--profile (default: %(default)s)")

    jobs = subparsers.add_parser(
        "jobs", help="client for a running experiment service")
    jobs.add_argument("--url", default=DEFAULT_SERVICE_URL,
                      help="service base URL (default: %(default)s)")
    jobs.add_argument("--http-timeout", type=float, default=30.0,
                      help="per-request timeout in seconds "
                           "(default: %(default)s)")
    jobs.add_argument("--http-retries", type=int, default=2,
                      help="retries for connection errors and "
                           "retryable 5xx answers "
                           "(default: %(default)s)")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_submit = jobs_sub.add_parser(
        "submit", help="submit a sweep job")
    jobs_submit.add_argument("experiment_ids", nargs="*", metavar="id",
                             help="experiment ids (default: all)")
    jobs_submit.add_argument("--tenant", default="default",
                             help="tenant name (default: %(default)s)")
    jobs_submit.add_argument("--priority", choices=PRIORITIES,
                             default="normal",
                             help="priority class "
                                  "(default: %(default)s)")
    jobs_submit.add_argument("--timeout", type=float, default=120.0,
                             help="per-experiment timeout in seconds")
    jobs_submit.add_argument("--retries", type=int, default=0,
                             help="retries per failing experiment")
    jobs_submit.add_argument("--workers", type=int, default=1,
                             help="engine workers for this job")
    jobs_submit.add_argument("--no-cache", action="store_true",
                             help="bypass the shared result store")
    jobs_submit.add_argument("--deadline", type=float, default=None,
                             metavar="S",
                             help="whole-job wall-clock budget; the "
                                  "watchdog fails the job past it")
    jobs_submit.add_argument("--idempotency-key", default=None,
                             help="resubmitting the same key returns "
                                  "the original job, even across a "
                                  "daemon crash")
    jobs_submit.add_argument("--profile", action="store_true",
                             help="attach the daemon's sampling "
                                  "profiler to this job; fetch the "
                                  "collapsed stacks with "
                                  "'jobs profile <job-id>'")
    jobs_submit.add_argument("--wait", action="store_true",
                             help="poll until the job finishes and "
                                  "print the final state")
    jobs_submit.add_argument("--wait-timeout", type=float,
                             default=300.0,
                             help="--wait deadline in seconds "
                                  "(default: %(default)s)")
    jobs_list = jobs_sub.add_parser("list", help="list jobs")
    jobs_list.add_argument("--tenant", default=None,
                           help="only this tenant's jobs")
    for name, help_text in (("status", "one job's full state"),
                            ("results", "a finished job's results"),
                            ("cancel", "cancel a queued job")):
        sub = jobs_sub.add_parser(name, help=help_text)
        sub.add_argument("job_id", help="job id")
    jobs_events = jobs_sub.add_parser(
        "events", help="print a job's JSONL event stream")
    jobs_events.add_argument("job_id", help="job id")
    jobs_events.add_argument("--follow", action="store_true",
                             help="stream until the job finishes; "
                                  "reconnects through daemon restarts")
    jobs_events.add_argument("--since", type=int, default=0,
                             help="start from this event seq "
                                  "(default: %(default)s)")
    jobs_stats = jobs_sub.add_parser(
        "stats", help="service metrics registry")
    jobs_stats.add_argument("--format", choices=("json", "prom"),
                            default="json",
                            help="json (registry + queue summary) or "
                                 "prom (Prometheus text exposition)")
    jobs_profile = jobs_sub.add_parser(
        "profile", help="a profiled job's collapsed stacks")
    jobs_profile.add_argument("job_id", help="job id (submitted "
                                             "with --profile)")
    jobs_profile.add_argument("--out", default=None, metavar="PATH",
                              help="write the collapsed-stack file "
                                   "here instead of stdout")
    jobs_sub.add_parser("store", help="shared store stats")
    jobs_sub.add_parser("shutdown", help="gracefully stop the service")

    cache = subparsers.add_parser(
        "cache", help="inspect or prune the shared result store")
    cache.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help=f"store directory "
                            f"(default: {DEFAULT_CACHE_DIR})")
    cache_sub = cache.add_subparsers(dest="cache_command",
                                     required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, size, hit rate, quarantine")
    cache_stats.add_argument("--json", action="store_true",
                             help="emit stats as JSON")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict LRU entries down to the given bounds")
    cache_prune.add_argument("--max-age", type=float, default=None,
                             metavar="S",
                             help="evict entries idle longer than S "
                                  "seconds")
    cache_prune.add_argument("--max-entries", type=int, default=None,
                             help="keep at most N entries")
    cache_prune.add_argument("--max-bytes", type=int, default=None,
                             help="keep at most N bytes")
    cache_prune.add_argument("--json", action="store_true",
                             help="emit the prune report as JSON")

    subparsers.add_parser("roadmap", help="print the ITRS roadmap")

    args = parser.parse_args(argv)
    _apply_preconditioner(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment_id)
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return _cmd_roadmap()
