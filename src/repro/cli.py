"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every experiment id with its paper artifact and description.
``run <id>``
    Run one experiment and pretty-print its result.
``roadmap``
    Print the ITRS roadmap table the models are built on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.analysis import EXPERIMENTS, run_experiment
from repro.analysis.report import render_dict_rows, render_table
from repro.errors import ReproError
from repro.itrs import ITRS_2000


def _print_result(result: Any) -> None:
    if isinstance(result, dict):
        rows = result.get("rows")
        if isinstance(rows, list) and rows \
                and isinstance(rows[0], dict):
            print(render_dict_rows(rows))
            print()
        curves = result.get("curves") or result.get("series")
        if isinstance(curves, dict):
            for name in curves:
                print(f"curve: {name} ({len(curves[name])} points)")
            print()
        summary = result.get("summary")
        scalars = summary if isinstance(summary, dict) else (
            result if not (rows or curves) else None)
        if isinstance(scalars, dict):
            width = max(len(key) for key in scalars)
            for key, value in scalars.items():
                print(f"  {key.ljust(width)}  {value}")
    else:
        print(result)


def _cmd_list() -> int:
    rows = [[experiment.id, experiment.paper_artifact,
             experiment.description]
            for experiment in EXPERIMENTS.values()]
    print(render_table(["id", "artifact", "description"], rows))
    return 0


def _cmd_run(experiment_id: str) -> int:
    try:
        result = run_experiment(experiment_id)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    experiment = EXPERIMENTS[experiment_id]
    print(f"{experiment.id} -- {experiment.description} "
          f"({experiment.paper_artifact})\n")
    _print_result(result)
    return 0


def _cmd_roadmap() -> int:
    headers = ["node [nm]", "year", "Vdd [V]", "Leff [nm]", "Tox [A]",
               "clock [GHz]", "power [W]", "area [mm2]", "Tj [C]"]
    rows = [[r.node_nm, r.year, r.vdd_v, r.leff_nm, r.tox_physical_a,
             r.clock_ghz, r.chip_power_w, r.die_area_mm2, r.tj_max_c]
            for r in ITRS_2000]
    print(render_table(headers, rows))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Sylvester & Kaul, DAC 2001",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    subparsers.add_parser("roadmap", help="print the ITRS roadmap")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment_id)
    return _cmd_roadmap()
