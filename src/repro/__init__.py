"""Reproduction of Sylvester & Kaul, "Future Performance Challenges in
Nanometer Design" (DAC 2001).

An analytical modeling library for power-limited nanometer-era VLSI
design: compact MOSFET I-V and leakage models (Eqs. 2-4), ITRS-2000
roadmap data, gate/FO4 circuit models, global interconnect and repeater
insertion, low-swing signaling, thermal packaging and dynamic thermal
management, gate-level netlists with STA and multi-Vdd/multi-Vth/sizing
optimization flows, and BACPAC-style power-grid IR analysis -- plus an
experiment harness regenerating every table and figure of the paper.

Quickstart::

    from repro.analysis import run_experiment
    table2 = run_experiment("E-T2")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
