"""Static-CMOS gate model built on the compact device equations.

The paper's circuit-level numbers (Figs. 1, 3, 4 and the library analysis
of Section 2.3) all derive from a simple gate abstraction:

* an inverter with Wn/L = 4 and Wp/L = 8 (paper footnote 6);
* propagation delay proportional to C_load * Vdd / Ion (the standard
  CV/I metric, with a 0.7 fitting factor chosen so the 180 nm FO4 delay
  lands near the classic ~65 ps);
* dynamic energy C * Vdd^2 per transition;
* subthreshold leakage proportional to the width of the off devices,
  averaged over input states, with a 10x stack-effect reduction per
  additional series off transistor (Section 3.3 / [38]).

NAND/NOR gates are modelled with the usual series/parallel width scaling
so the library and netlist layers can reuse one implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro import units
from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.errors import ModelParameterError

#: CV/I delay fitting factor (dimensionless).  0.7 reproduces the classic
#: ~65 ps FO4 delay at the 180 nm node.
DELAY_FIT_K = 0.7

#: Ratio of total gate capacitance to the ideal Coxe*W*L (overlap and
#: fringing overhead).
CAP_FACTOR = 1.2

#: PMOS-to-NMOS mobility ratio used to derate PMOS drive per unit width.
PMOS_DRIVE_DERATE = 0.5

#: Leakage reduction per additional OFF transistor in a series stack.
STACK_LEAKAGE_FACTOR = 0.1

#: Default NMOS width in units of Leff (paper footnote 6: Wn/L = 4).
DEFAULT_WN_OVER_L = 4.0

#: Default PMOS width in units of Leff (paper footnote 6: Wp/L = 8).
DEFAULT_WP_OVER_L = 8.0


class GateKind(enum.Enum):
    """Supported static-CMOS gate topologies."""

    INVERTER = "inv"
    NAND = "nand"
    NOR = "nor"


@dataclass(frozen=True)
class GateDesign:
    """Sizing and topology of one gate.

    ``size`` multiplies both device widths (drive strength X-factor);
    ``beta`` is the P/N width ratio (2.0 gives balanced rise/fall with the
    0.5 PMOS derate).
    """

    kind: GateKind = GateKind.INVERTER
    n_inputs: int = 1
    size: float = 1.0
    beta: float = 2.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ModelParameterError(f"gate size must be positive: {self.size}")
        if self.beta <= 0:
            raise ModelParameterError(f"beta must be positive: {self.beta}")
        if self.n_inputs < 1:
            raise ModelParameterError("a gate needs at least one input")
        if self.kind is GateKind.INVERTER and self.n_inputs != 1:
            raise ModelParameterError("an inverter has exactly one input")
        if self.kind is not GateKind.INVERTER and self.n_inputs < 2:
            raise ModelParameterError(
                f"a {self.kind.value} gate needs at least two inputs"
            )

    def scaled(self, factor: float) -> "GateDesign":
        """Return the same gate with its drive strength multiplied."""
        return replace(self, size=self.size * factor)


class GateModel:
    """Delay / power model of a :class:`GateDesign` in one technology."""

    def __init__(self, device: DeviceParams, design: GateDesign | None = None,
                 wn_over_l: float = DEFAULT_WN_OVER_L):
        self.device = device
        self.design = design if design is not None else GateDesign()
        if wn_over_l <= 0:
            raise ModelParameterError("Wn/L must be positive")
        self._wn_over_l = wn_over_l
        self._model = MosfetModel(device)

    # --- geometry ----------------------------------------------------------

    @property
    def leff_m(self) -> float:
        """Channel length [m]."""
        return units.nm(self.device.leff_nm)

    @property
    def wn_m(self) -> float:
        """Total NMOS width [m], including series-stack up-sizing.

        NAND pull-downs are stacked n-high, so each NMOS is made n times
        wider to preserve drive (standard practice); NOR stacks the PMOS
        instead.
        """
        base = self._wn_over_l * self.leff_m * self.design.size
        if self.design.kind is GateKind.NAND:
            return base * self.design.n_inputs
        return base

    @property
    def wp_m(self) -> float:
        """Total PMOS width [m], including series-stack up-sizing."""
        base = (self._wn_over_l * self.design.beta * self.leff_m
                * self.design.size)
        if self.design.kind is GateKind.NOR:
            return base * self.design.n_inputs
        return base

    # --- capacitance ---------------------------------------------------------

    @property
    def input_cap_f(self) -> float:
        """Capacitance presented at one input pin [F]."""
        gate_area = (self.wn_m + self.wp_m) * self.leff_m
        return CAP_FACTOR * self.device.gate_stack.coxe * gate_area

    @property
    def parasitic_cap_f(self) -> float:
        """Self-loading (drain junction) capacitance at the output [F].

        Approximated as equal to the input capacitance per unit width --
        the standard logical-effort assumption (p ~ 1 for an inverter).
        """
        return self.input_cap_f

    # --- drive -----------------------------------------------------------------

    def drive_current_a(self, vdd_v: float | None = None,
                        vth_v: float | None = None) -> float:
        """Worst-case output drive current [A].

        The weaker of pull-down and pull-up; series stacks divide the
        per-width current by the stack height (already compensated by the
        width up-sizing in :attr:`wn_m`/:attr:`wp_m`).
        """
        ion_per_um = self._model.ion_ua_um(vdd_v, vth_v) * 1e-6  # A/um
        wn_um = units.to_um(self.wn_m)
        wp_um = units.to_um(self.wp_m)
        n_stack = (self.design.n_inputs
                   if self.design.kind is GateKind.NAND else 1)
        p_stack = (self.design.n_inputs
                   if self.design.kind is GateKind.NOR else 1)
        pull_down = ion_per_um * wn_um / n_stack
        pull_up = ion_per_um * PMOS_DRIVE_DERATE * wp_um / p_stack
        return min(pull_down, pull_up)

    # --- delay -------------------------------------------------------------------

    def delay_s(self, load_f: float, vdd_v: float | None = None,
                vth_v: float | None = None) -> float:
        """Propagation delay into ``load_f`` [s]: k * C * Vdd / Ion."""
        if load_f < 0:
            raise ModelParameterError("load capacitance cannot be negative")
        vdd = self.device.vdd_v if vdd_v is None else vdd_v
        drive = self.drive_current_a(vdd, vth_v)
        if drive <= 0:
            raise ModelParameterError(
                f"gate has no drive at Vdd = {vdd} V "
                f"(Vth = {vth_v if vth_v is not None else self.device.vth_v} V)"
            )
        total_load = load_f + self.parasitic_cap_f
        return DELAY_FIT_K * total_load * vdd / drive

    # --- power ----------------------------------------------------------------------

    def dynamic_energy_j(self, load_f: float,
                         vdd_v: float | None = None) -> float:
        """Energy per output transition pair, C * Vdd^2 [J]."""
        vdd = self.device.vdd_v if vdd_v is None else vdd_v
        return (load_f + self.parasitic_cap_f) * vdd ** 2

    def dynamic_power_w(self, load_f: float, frequency_hz: float,
                        activity: float,
                        vdd_v: float | None = None) -> float:
        """Average switching power, alpha * f * C * Vdd^2 [W]."""
        if not 0.0 <= activity <= 1.0:
            raise ModelParameterError(
                f"switching activity must lie in [0, 1], got {activity}"
            )
        if frequency_hz <= 0:
            raise ModelParameterError("frequency must be positive")
        return activity * frequency_hz * self.dynamic_energy_j(load_f, vdd_v)

    def leakage_current_a(self, vdd_v: float | None = None,
                          vth_v: float | None = None,
                          temperature_k: float = 300.0) -> float:
        """Input-state-averaged leakage current [A].

        For an inverter, half the time the NMOS leaks (input low) and half
        the time the PMOS leaks.  For NAND/NOR, the stacked network leaks
        through a series stack in the worst input state; we average the
        single-device and stacked states with the 10x-per-level stack
        suppression.
        """
        ioff_per_um = (self._model.ioff_na_um(vdd_v, vth_v, temperature_k)
                       * 1e-9)  # A/um
        wn_um = units.to_um(self.wn_m)
        wp_um = units.to_um(self.wp_m)
        n = self.design.n_inputs
        if self.design.kind is GateKind.INVERTER:
            return 0.5 * ioff_per_um * (wn_um + wp_um)
        if self.design.kind is GateKind.NAND:
            # NMOS stack: average suppression over input states; PMOS
            # devices are parallel, one leaks per off state on average.
            stack = STACK_LEAKAGE_FACTOR ** (n - 1)
            nmos = ioff_per_um * (wn_um / n) * stack
            pmos = ioff_per_um * wp_um / n
            return 0.5 * (nmos + pmos)
        # NOR: mirror image.
        stack = STACK_LEAKAGE_FACTOR ** (n - 1)
        pmos = ioff_per_um * (wp_um / n) * stack
        nmos = ioff_per_um * wn_um / n
        return 0.5 * (nmos + pmos)

    def static_power_w(self, vdd_v: float | None = None,
                       vth_v: float | None = None,
                       temperature_k: float = 300.0) -> float:
        """Average leakage power Vdd * Ileak [W]."""
        vdd = self.device.vdd_v if vdd_v is None else vdd_v
        return vdd * self.leakage_current_a(vdd, vth_v, temperature_k)

    # --- reference metrics ------------------------------------------------------------

    def fo4_delay_s(self, vdd_v: float | None = None,
                    vth_v: float | None = None,
                    extra_load_f: float = 0.0) -> float:
        """Delay driving four copies of itself plus ``extra_load_f`` [s]."""
        return self.delay_s(4.0 * self.input_cap_f + extra_load_f,
                            vdd_v, vth_v)
