"""The fan-out-of-4 reference configuration of Figs. 1 and 4.

Both figures evaluate "an inverter driving a fan-out of 4 with an average
interconnect load".  This module packages that configuration: the
footnote-6 inverter (Wn/L = 4, Wp/L = 8) loaded by four copies of itself
plus the node's average local wire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.devices.mosfet import DeviceParams
from repro.devices.params import device_for_node
from repro.itrs import ITRS_2000


@dataclass(frozen=True)
class Fo4Reference:
    """An FO4 inverter stage with its average wiring load."""

    gate: GateModel
    #: Average interconnect load on the output net [F].
    wire_cap_f: float
    #: Clock frequency used for power numbers [Hz].
    frequency_hz: float

    @property
    def load_f(self) -> float:
        """Total switched load: four input caps plus the wire [F]."""
        return 4.0 * self.gate.input_cap_f + self.wire_cap_f

    def delay_s(self, vdd_v: float | None = None,
                vth_v: float | None = None) -> float:
        """Stage delay into the full load [s]."""
        return self.gate.delay_s(self.load_f, vdd_v, vth_v)

    def dynamic_power_w(self, activity: float,
                        vdd_v: float | None = None) -> float:
        """Switching power at the given activity factor [W]."""
        return self.gate.dynamic_power_w(self.load_f, self.frequency_hz,
                                         activity, vdd_v)

    def static_power_w(self, vdd_v: float | None = None,
                       vth_v: float | None = None,
                       temperature_k: float = 300.0) -> float:
        """Leakage power of the driving inverter [W]."""
        return self.gate.static_power_w(vdd_v, vth_v, temperature_k)

    def static_to_dynamic_ratio(self, activity: float,
                                vdd_v: float | None = None,
                                vth_v: float | None = None,
                                temperature_k: float = 300.0) -> float:
        """Pstatic / Pdynamic -- the y-axis of Fig. 1."""
        dynamic = self.dynamic_power_w(activity, vdd_v)
        if dynamic == 0:
            raise ZeroDivisionError("dynamic power is zero at zero activity")
        return self.static_power_w(vdd_v, vth_v, temperature_k) / dynamic


def fo4_reference(node_nm: int,
                  device: DeviceParams | None = None) -> Fo4Reference:
    """Build the FO4 reference stage for a roadmap node.

    ``device`` overrides the calibrated model card (used e.g. for the
    50 nm / 0.7 V variant of Fig. 1).
    """
    record = ITRS_2000.node(node_nm)
    if device is None:
        device = device_for_node(node_nm)
    gate = GateModel(device, GateDesign(kind=GateKind.INVERTER))
    wire_cap = units.fF(record.avg_wire_length_um * record.wire_cap_ff_per_um)
    return Fo4Reference(gate=gate, wire_cap_f=wire_cap,
                        frequency_hz=units.ghz(record.clock_ghz))
