"""MOS current-mode logic (Section 4, ref [42]).

MCML steers a constant tail current between differential branches: it
burns static power but produces far smaller supply-current transients
than full-swing CMOS and, in high-activity circuitry such as datapaths,
can deliver lower *total* power.  This module models an MCML gate (tail
current, reduced swing, differential load) and locates the activity
crossover against a CMOS gate of comparable speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.devices.mosfet import DeviceParams
from repro.errors import InfeasibleConstraintError, ModelParameterError

#: Default MCML voltage swing as a fraction of Vdd.
DEFAULT_SWING_FRACTION = 0.3

#: Delay fitting factor for the current-steering pair (0.69 ~ ln 2,
#: single-pole settling to the switching threshold).
_MCML_DELAY_K = 0.69

#: Effective transition multiplier of a CMOS datapath: arithmetic logic
#: glitches heavily (1.5-2x the functional activity is typical), while
#: differential current steering is glitch-immune -- the mechanism
#: behind ref [42]'s "lower total power in high activity circuitry".
CMOS_GLITCH_FACTOR = 1.8


@dataclass(frozen=True)
class McmlGate:
    """A differential current-steering gate."""

    device: DeviceParams
    #: Tail (bias) current [A].
    tail_current_a: float
    #: Output swing as a fraction of Vdd.
    swing_fraction: float = DEFAULT_SWING_FRACTION

    def __post_init__(self) -> None:
        if self.tail_current_a <= 0:
            raise ModelParameterError("tail current must be positive")
        if not 0.0 < self.swing_fraction <= 1.0:
            raise ModelParameterError(
                "swing fraction must lie in (0, 1]"
            )

    @property
    def swing_v(self) -> float:
        """Output voltage swing [V]."""
        return self.swing_fraction * self.device.vdd_v

    def delay_s(self, load_f: float) -> float:
        """Propagation delay into a single-ended load [s].

        The tail current charges the load through the swing:
        t = k * C * dV / I.
        """
        if load_f < 0:
            raise ModelParameterError("load cannot be negative")
        return _MCML_DELAY_K * load_f * self.swing_v / self.tail_current_a

    def static_power_w(self) -> float:
        """Bias power Vdd * Itail, burned regardless of activity [W]."""
        return self.device.vdd_v * self.tail_current_a

    def dynamic_power_w(self, load_f: float, frequency_hz: float,
                        activity: float) -> float:
        """Switching power of the reduced-swing differential pair [W].

        Both complementary outputs move by the swing each transition:
        2 * alpha * f * C * Vdd * dV (charge drawn from the supply at
        Vdd through the swing dV).
        """
        if not 0.0 <= activity <= 1.0:
            raise ModelParameterError("activity must lie in [0, 1]")
        return (2.0 * activity * frequency_hz * load_f
                * self.device.vdd_v * self.swing_v)

    def total_power_w(self, load_f: float, frequency_hz: float,
                      activity: float) -> float:
        """Static plus dynamic power [W]."""
        return (self.static_power_w()
                + self.dynamic_power_w(load_f, frequency_hz, activity))

    def peak_supply_current_a(self) -> float:
        """Worst-case instantaneous supply current [A].

        The tail current is steered, not switched: the supply sees an
        (ideally) constant Itail.
        """
        return self.tail_current_a


def mcml_matching_cmos(device: DeviceParams, load_f: float,
                       cmos_size: float = 1.0,
                       swing_fraction: float = DEFAULT_SWING_FRACTION
                       ) -> tuple[GateModel, McmlGate]:
    """Build an MCML gate speed-matched to a CMOS gate into ``load_f``."""
    cmos = GateModel(device, GateDesign(kind=GateKind.INVERTER,
                                        size=cmos_size))
    target_delay = cmos.delay_s(load_f)
    swing_v = swing_fraction * device.vdd_v
    tail = _MCML_DELAY_K * (load_f + cmos.parasitic_cap_f) * swing_v \
        / target_delay
    return cmos, McmlGate(device=device, tail_current_a=tail,
                          swing_fraction=swing_fraction)


def cmos_peak_current_a(cmos: GateModel) -> float:
    """Peak supply transient of the CMOS gate: its full drive current."""
    return cmos.drive_current_a()


def mcml_vs_cmos_crossover(device: DeviceParams, load_f: float,
                           frequency_hz: float,
                           cmos_size: float = 1.0,
                           swing_fraction: float = DEFAULT_SWING_FRACTION,
                           temperature_k: float = 300.0,
                           cmos_glitch_factor: float = CMOS_GLITCH_FACTOR
                           ) -> float:
    """Activity factor above which MCML total power beats CMOS.

    The CMOS side is charged ``cmos_glitch_factor`` transitions per
    functional one (datapath glitching); the differential MCML gate is
    glitch-immune -- the mechanism behind ref [42]'s result.  Raises
    :class:`InfeasibleConstraintError` when MCML never wins (its bias
    power exceeds CMOS power even at activity 1).
    """
    if cmos_glitch_factor < 1.0:
        raise ModelParameterError("glitch factor cannot be below 1")
    cmos, mcml = mcml_matching_cmos(device, load_f, cmos_size,
                                    swing_fraction)

    def power_gap(activity: float) -> float:
        # Glitch transitions can exceed one per cycle, so the CMOS
        # switching power is computed from the energy directly rather
        # than through the [0, 1]-validated activity helper.
        cmos_total = (cmos_glitch_factor * activity * frequency_hz
                      * cmos.dynamic_energy_j(load_f)
                      + cmos.static_power_w(temperature_k=temperature_k))
        return mcml.total_power_w(load_f, frequency_hz, activity) \
            - cmos_total

    if power_gap(1.0) > 0:
        raise InfeasibleConstraintError(
            "MCML bias power exceeds CMOS total power even at activity 1 "
            f"(gap {power_gap(1.0):.3e} W)"
        )
    if power_gap(0.0) <= 0:
        return 0.0
    return float(brentq(power_gap, 0.0, 1.0, xtol=1e-6))
