"""Parametric standard-cell library (Section 2.3).

The paper argues that the perceived 6-8x custom-vs-ASIC gap is partly a
library-richness problem, and observes that leading-edge libraries
already offer "a rich set of drive strengths (e.g. 11 2-input NANDs, 16
inverter sizes)".  This module builds such a library on top of the gate
model: geometric drive-strength ladders per topology, with optional
high/low threshold variants (for the dual-Vth flows of Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.devices.mosfet import DeviceParams
from repro.devices.params import device_for_node
from repro.errors import InfeasibleConstraintError, ModelParameterError

#: Default inverter drive ladder: 16 sizes, ~sqrt(2) steps (paper: "16
#: inverter sizes").
INVERTER_SIZES = tuple(round(0.5 * 2 ** (i / 2), 3) for i in range(16))

#: Default NAND2 ladder: 11 sizes (paper: "11 2-input NANDs").
NAND2_SIZES = tuple(round(0.5 * 2 ** (i / 2), 3) for i in range(11))

#: Default NOR2 ladder.
NOR2_SIZES = tuple(round(0.5 * 2 ** (i / 2), 3) for i in range(8))


@dataclass(frozen=True)
class Cell:
    """One library cell: a named, characterised gate."""

    name: str
    design: GateDesign
    #: Device card the cell is characterised against (fixes Vth class).
    device: DeviceParams
    #: Library threshold class label ("hvt"/"lvt"/"svt").
    vth_class: str = "svt"

    @property
    def model(self) -> GateModel:
        """Gate model bound to this cell's device card."""
        return GateModel(self.device, self.design)

    @property
    def input_cap_f(self) -> float:
        """Pin capacitance [F]."""
        return self.model.input_cap_f

    def delay_s(self, load_f: float) -> float:
        """Delay into ``load_f`` at the nominal corner [s]."""
        return self.model.delay_s(load_f)

    def dynamic_energy_j(self, load_f: float) -> float:
        """Switching energy into ``load_f`` [J]."""
        return self.model.dynamic_energy_j(load_f)

    def static_power_w(self, temperature_k: float = 300.0) -> float:
        """Leakage power [W]."""
        return self.model.static_power_w(temperature_k=temperature_k)


@dataclass
class CellLibrary:
    """A set of cells with selection queries."""

    node_nm: int
    cells: list[Cell] = field(default_factory=list)

    def add(self, cell: Cell) -> None:
        """Add a cell; names must be unique."""
        if any(existing.name == cell.name for existing in self.cells):
            raise ModelParameterError(f"duplicate cell name {cell.name!r}")
        self.cells.append(cell)

    def cells_of_kind(self, kind: GateKind,
                      vth_class: str | None = None) -> list[Cell]:
        """All cells of a topology, optionally filtered by Vth class."""
        return [cell for cell in self.cells
                if cell.design.kind is kind
                and (vth_class is None or cell.vth_class == vth_class)]

    def drive_strengths(self, kind: GateKind) -> list[float]:
        """Sorted unique drive sizes available for a topology."""
        return sorted({cell.design.size for cell in self.cells_of_kind(kind)})

    def smallest(self, kind: GateKind) -> Cell:
        """The lowest-drive cell of a topology."""
        candidates = self.cells_of_kind(kind)
        if not candidates:
            raise InfeasibleConstraintError(
                f"library has no {kind.value} cells"
            )
        return min(candidates, key=lambda cell: cell.design.size)

    def fastest_cell(self, kind: GateKind, load_f: float,
                     vth_class: str | None = None) -> Cell:
        """Cell minimising delay into ``load_f``."""
        candidates = self.cells_of_kind(kind, vth_class)
        if not candidates:
            raise InfeasibleConstraintError(
                f"library has no {kind.value} cells"
            )
        return min(candidates, key=lambda cell: cell.delay_s(load_f))

    def cheapest_cell_meeting(self, kind: GateKind, load_f: float,
                              max_delay_s: float,
                              vth_class: str | None = None) -> Cell:
        """Lowest-energy cell meeting a delay bound into ``load_f``.

        Raises :class:`InfeasibleConstraintError` when even the fastest
        cell misses the bound.
        """
        candidates = [cell for cell in self.cells_of_kind(kind, vth_class)
                      if cell.delay_s(load_f) <= max_delay_s]
        if not candidates:
            best = self.fastest_cell(kind, load_f, vth_class)
            raise InfeasibleConstraintError(
                f"no {kind.value} cell meets {max_delay_s:.3e} s into "
                f"{load_f:.3e} F; fastest achieves "
                f"{best.delay_s(load_f):.3e} s"
            )
        return min(candidates,
                   key=lambda cell: cell.dynamic_energy_j(load_f))


def build_library(node_nm: int,
                  inverter_sizes: tuple[float, ...] = INVERTER_SIZES,
                  nand2_sizes: tuple[float, ...] = NAND2_SIZES,
                  nor2_sizes: tuple[float, ...] = NOR2_SIZES,
                  dual_vth: bool = False,
                  lvt_offset_v: float = 0.100) -> CellLibrary:
    """Build the default library for a node.

    With ``dual_vth`` each cell is issued in a standard-Vth ("svt") and a
    low-Vth ("lvt") flavour whose threshold is ``lvt_offset_v`` lower --
    the 100 mV offset of Fig. 2.
    """
    device = device_for_node(node_nm)
    library = CellLibrary(node_nm=node_nm)
    flavours: list[tuple[str, DeviceParams]] = [("svt", device)]
    if dual_vth:
        flavours.append(("lvt", device.with_vth(device.vth_v - lvt_offset_v)))
    ladders = (
        (GateKind.INVERTER, 1, "inv", inverter_sizes),
        (GateKind.NAND, 2, "nand2", nand2_sizes),
        (GateKind.NOR, 2, "nor2", nor2_sizes),
    )
    for kind, n_inputs, prefix, sizes in ladders:
        for size in sizes:
            for vth_class, card in flavours:
                suffix = "" if vth_class == "svt" else f"_{vth_class}"
                library.add(Cell(
                    name=f"{prefix}_x{size:g}{suffix}",
                    design=GateDesign(kind=kind, n_inputs=n_inputs,
                                      size=size),
                    device=card,
                    vth_class=vth_class,
                ))
    return library
