"""On-the-fly cell generation (Section 2.3, ref [17]).

A discrete drive ladder forces every instance onto the next-larger cell,
overdriving small loads and wasting power.  The paper reports that
generating cells to "exactly match load conditions" on top of a rich
library yields 15-22 % power reduction at fixed timing.

``generate_cell_for_load`` synthesises a continuous-size cell meeting an
instance's delay requirement exactly; ``optimize_block`` applies it to a
whole block of instances and reports the saving over library mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.circuits.library import Cell, CellLibrary
from repro.devices.mosfet import DeviceParams
from repro.errors import InfeasibleConstraintError, ModelParameterError

#: Search range for generated drive strengths (in X of the unit gate).
_SIZE_MIN = 0.05
_SIZE_MAX = 256.0


@dataclass(frozen=True)
class CellGenerationResult:
    """Outcome of sizing one instance with a generated cell.

    Energies include the cell's *input* capacitance as well as its
    output parasitic: a right-sized cell saves power both at its own
    output and in the gate that drives it, which is where most of the
    15-22 % reported by ref [17] comes from.
    """

    #: The generated design.
    design: GateDesign
    #: Delay achieved into the instance load [s].
    delay_s: float
    #: Switching energy attributable to the instance [J].
    energy_j: float
    #: Energy of the best library cell meeting the same constraint [J].
    library_energy_j: float

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved vs the library mapping (0..1)."""
        if self.library_energy_j == 0:
            return 0.0
        return 1.0 - self.energy_j / self.library_energy_j


def generate_cell_for_load(device: DeviceParams, kind: GateKind,
                           n_inputs: int, load_f: float,
                           max_delay_s: float,
                           beta: float = 2.0) -> GateDesign:
    """Smallest continuous-size gate meeting ``max_delay_s`` into ``load_f``.

    Delay decreases monotonically with size (self-loading grows linearly
    but drive grows linearly too, so delay approaches an asymptote); when
    even the largest size misses the bound the constraint is infeasible.
    """
    if max_delay_s <= 0:
        raise ModelParameterError("delay bound must be positive")

    def delay_at(size: float) -> float:
        design = GateDesign(kind=kind, n_inputs=n_inputs, size=size,
                            beta=beta)
        return GateModel(device, design).delay_s(load_f)

    if delay_at(_SIZE_MAX) > max_delay_s:
        raise InfeasibleConstraintError(
            f"no {kind.value} size up to {_SIZE_MAX}X meets "
            f"{max_delay_s:.3e} s into {load_f:.3e} F "
            f"(asymptotic delay {delay_at(_SIZE_MAX):.3e} s)"
        )
    if delay_at(_SIZE_MIN) <= max_delay_s:
        size = _SIZE_MIN
    else:
        size = float(brentq(lambda s: delay_at(s) - max_delay_s,
                            _SIZE_MIN, _SIZE_MAX, xtol=1e-6))
    return GateDesign(kind=kind, n_inputs=n_inputs, size=size, beta=beta)


def _library_mapping_energy(library: CellLibrary, kind: GateKind,
                            load_f: float, max_delay_s: float) -> Cell:
    return library.cheapest_cell_meeting(kind, load_f, max_delay_s)


def _instance_energy_j(model: GateModel, load_f: float,
                       n_inputs: int) -> float:
    """Switching energy attributable to one instance [J].

    Output energy (load + own parasitic) plus the energy its drivers
    spend charging this cell's input pins.
    """
    vdd = model.device.vdd_v
    input_energy = n_inputs * model.input_cap_f * vdd ** 2
    return model.dynamic_energy_j(load_f) + input_energy


#: Timing margin a conventional library mapping flow applies (it picks a
#: cell meeting guardband * budget, to be robust across corners and
#: placement churn); on-the-fly generation sizes to the exact budget,
#: which is precisely the "exactly match load conditions" advantage the
#: paper attributes to ref [17].
LIBRARY_GUARDBAND = 0.8


def size_instance(device: DeviceParams, library: CellLibrary,
                  kind: GateKind, n_inputs: int, load_f: float,
                  max_delay_s: float,
                  library_guardband: float = LIBRARY_GUARDBAND
                  ) -> CellGenerationResult:
    """Compare a generated cell against the best library cell."""
    if not 0.0 < library_guardband <= 1.0:
        raise ModelParameterError("guardband must lie in (0, 1]")
    try:
        library_cell = _library_mapping_energy(
            library, kind, load_f, library_guardband * max_delay_s)
    except InfeasibleConstraintError:
        # The flow would fix such instances by other means; compare
        # against the full budget instead of failing the whole block.
        library_cell = _library_mapping_energy(library, kind, load_f,
                                               max_delay_s)
    design = generate_cell_for_load(device, kind, n_inputs, load_f,
                                    max_delay_s)
    model = GateModel(device, design)
    return CellGenerationResult(
        design=design,
        delay_s=model.delay_s(load_f),
        energy_j=_instance_energy_j(model, load_f, n_inputs),
        library_energy_j=_instance_energy_j(library_cell.model, load_f,
                                            n_inputs),
    )


@dataclass(frozen=True)
class BlockOptimizationResult:
    """Aggregate outcome over a block of instances."""

    per_instance: tuple[CellGenerationResult, ...]

    @property
    def total_energy_j(self) -> float:
        """Generated-cell switching energy over the block [J]."""
        return sum(result.energy_j for result in self.per_instance)

    @property
    def total_library_energy_j(self) -> float:
        """Library-mapped switching energy over the block [J]."""
        return sum(result.library_energy_j for result in self.per_instance)

    @property
    def power_saving(self) -> float:
        """Block-level fractional power saving at fixed timing (0..1)."""
        if self.total_library_energy_j == 0:
            return 0.0
        return 1.0 - self.total_energy_j / self.total_library_energy_j


def optimize_block(device: DeviceParams, library: CellLibrary,
                   instances: list[tuple[GateKind, int, float, float]],
                   library_guardband: float = LIBRARY_GUARDBAND
                   ) -> BlockOptimizationResult:
    """Apply cell generation to a block.

    ``instances`` is a list of (kind, n_inputs, load_f, max_delay_s)
    tuples, typically produced by sampling a netlist's load/slack profile.
    """
    if not instances:
        raise ModelParameterError("block has no instances")
    results = [size_instance(device, library, kind, n_inputs, load_f,
                             max_delay_s, library_guardband)
               for kind, n_inputs, load_f, max_delay_s in instances]
    return BlockOptimizationResult(per_instance=tuple(results))
