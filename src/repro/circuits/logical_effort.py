"""Logical-effort path sizing substrate.

Used by the repeater-insertion and netlist layers to reason about path
delay in technology-neutral units.  Standard Sutherland/Sproull model:
logical effort g per topology, parasitic delay p, optimal stage effort
achieved by equalising f = g*h across stages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.devices.mosfet import DeviceParams
from repro.errors import ModelParameterError

#: Logical effort per topology (2-input variants; n-input handled below).
LOGICAL_EFFORT = {
    GateKind.INVERTER: 1.0,
    GateKind.NAND: 4.0 / 3.0,
    GateKind.NOR: 5.0 / 3.0,
}

#: Parasitic delay per topology, in units of the inverter parasitic.
PARASITIC_DELAY = {
    GateKind.INVERTER: 1.0,
    GateKind.NAND: 2.0,
    GateKind.NOR: 2.0,
}


def logical_effort(kind: GateKind, n_inputs: int = 2) -> float:
    """Logical effort of an n-input gate."""
    if kind is GateKind.INVERTER:
        return 1.0
    if n_inputs < 2:
        raise ModelParameterError("multi-input gates need >= 2 inputs")
    if kind is GateKind.NAND:
        return (n_inputs + 2.0) / 3.0
    return (2.0 * n_inputs + 1.0) / 3.0


def parasitic_delay(kind: GateKind, n_inputs: int = 2) -> float:
    """Parasitic delay of an n-input gate, in inverter-parasitic units."""
    if kind is GateKind.INVERTER:
        return 1.0
    return float(n_inputs)


def tau_s(device: DeviceParams) -> float:
    """The technology time constant: unit inverter driving one copy [s]."""
    model = GateModel(device, GateDesign(kind=GateKind.INVERTER))
    # Delay into one copy of itself minus the parasitic contribution
    # would be the pure tau; we use the conventional definition of the
    # FO1 effort delay.
    return model.delay_s(model.input_cap_f) - model.delay_s(0.0)


@dataclass(frozen=True)
class PathSizing:
    """Result of sizing a logic path by logical effort."""

    #: Gate kinds along the path, driver first.
    kinds: tuple[GateKind, ...]
    #: Input capacitance of each stage [F].
    input_caps_f: tuple[float, ...]
    #: Optimal stage effort f.
    stage_effort: float
    #: Total path delay in tau units (effort + parasitics).
    delay_tau: float
    #: Total path delay [s].
    delay_s: float


def size_path(device: DeviceParams, kinds: list[GateKind],
              cin_f: float, cload_f: float,
              n_inputs: int = 2, branching: float = 1.0) -> PathSizing:
    """Size a path of gates for minimum delay.

    ``branching`` is the per-stage branching effort b (off-path fanout).
    """
    if not kinds:
        raise ModelParameterError("path must contain at least one gate")
    if cin_f <= 0 or cload_f <= 0:
        raise ModelParameterError("path capacitances must be positive")
    if branching < 1.0:
        raise ModelParameterError("branching effort cannot be below 1")
    n_stages = len(kinds)
    path_logical = math.prod(
        logical_effort(kind, n_inputs) for kind in kinds)
    path_effort = path_logical * (branching ** (n_stages - 1)) \
        * (cload_f / cin_f)
    stage_effort = path_effort ** (1.0 / n_stages)

    # Work backwards assigning input capacitances: Cin_i = g_i * Cout_i / f.
    caps = [0.0] * n_stages
    cout = cload_f
    for index in range(n_stages - 1, -1, -1):
        caps[index] = (logical_effort(kinds[index], n_inputs) * cout
                       / stage_effort)
        cout = caps[index] * branching

    parasitics = sum(parasitic_delay(kind, n_inputs) for kind in kinds)
    delay_tau = n_stages * stage_effort + parasitics
    return PathSizing(
        kinds=tuple(kinds),
        input_caps_f=tuple(caps),
        stage_effort=stage_effort,
        delay_tau=delay_tau,
        delay_s=delay_tau * tau_s(device),
    )
