"""Gate- and cell-level circuit models.

Builds static-CMOS gate models on top of the calibrated device cards
(:mod:`repro.devices`): propagation delay, dynamic energy and leakage for
inverters/NANDs/NORs, the fan-out-of-4 reference configuration used by
Figs. 1 and 4, a parametric standard-cell library with the drive-strength
richness discussed in Section 2.3, the on-the-fly cell generation
optimizer of [17], a logical-effort sizing substrate, and the MOS
current-mode logic (MCML) model of Section 4.
"""

from repro.circuits.gate import (
    CAP_FACTOR,
    DELAY_FIT_K,
    GateKind,
    GateDesign,
    GateModel,
)
from repro.circuits.fo4 import Fo4Reference, fo4_reference
from repro.circuits.library import (
    Cell,
    CellLibrary,
    build_library,
)
from repro.circuits.cellgen import (
    CellGenerationResult,
    generate_cell_for_load,
    optimize_block,
)
from repro.circuits.logical_effort import (
    LOGICAL_EFFORT,
    PARASITIC_DELAY,
    PathSizing,
    size_path,
)
from repro.circuits.mcml import McmlGate, mcml_vs_cmos_crossover

__all__ = [
    "CAP_FACTOR",
    "DELAY_FIT_K",
    "GateKind",
    "GateDesign",
    "GateModel",
    "Fo4Reference",
    "fo4_reference",
    "Cell",
    "CellLibrary",
    "build_library",
    "CellGenerationResult",
    "generate_cell_for_load",
    "optimize_block",
    "LOGICAL_EFFORT",
    "PARASITIC_DELAY",
    "PathSizing",
    "size_path",
    "McmlGate",
    "mcml_vs_cmos_crossover",
]
