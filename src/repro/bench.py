"""Perf-regression benchmark harness behind ``repro bench``.

A benchmark run executes a subset of the experiment registry through
the engine's inline executor (cache disabled, fresh
:class:`~repro.obs.Trace` per repeat, so every repeat is a full cold
execution with metrics attached), takes the **median of N repeats** per
experiment, and serialises the result as a schema-versioned snapshot::

    BENCH_<UTC timestamp>.json

Each snapshot records, per benchmark, the repeat wall times and their
median, the process peak RSS, the solver-iteration total pulled from
the ``solver.iterations_per_solve`` histogram, and the span count --
plus a host fingerprint so a comparison across machines is visibly a
comparison across machines.

Comparison (:func:`compare_snapshots`) is **noise-aware**: a benchmark
only counts as a regression when the new median exceeds the baseline by
*both* a relative factor (:data:`REL_TOL`) *and* an absolute floor
(:data:`ABS_FLOOR_S`).  Median-of-3 plus the double threshold keeps
scheduler jitter on sub-100 ms benchmarks from paging anyone, while a
genuine 2x slowdown on anything measurable still trips the gate.

``slowdown_s`` adds a synthetic per-repeat pad to the *measured* wall
time (no actual sleeping).  It exists purely so the comparator can be
exercised end-to-end: inject a pad bigger than both thresholds and the
comparison must fail.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.engine import EngineConfig, run_experiments
from repro.engine.records import experiment_family
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    Trace,
    get_logger,
    logging_configured,
    round_metric,
    sample_resources,
    span,
    tracing,
    wall_now,
)

#: Schema tag written into (and required from) every snapshot.
BENCH_SCHEMA = "repro-bench/1"

#: Fast-but-representative subset for CI: one experiment per artifact
#: family, all sub-second, still crossing the device/power/delay/
#: sizing/solver model stack.
QUICK_IDS = ("E-T2", "E-F1", "E-F3", "E-C5", "E-V1")

#: Regression gate: the new median must exceed the baseline by BOTH the
#: relative factor and the absolute floor.  50% relative absorbs
#: scheduler jitter on fast benchmarks; the 50 ms floor keeps a 2 ms ->
#: 4 ms blip from counting as a "100% regression".
REL_TOL = 0.5
ABS_FLOOR_S = 0.05

DEFAULT_REPEATS = 3

#: Where ``repro bench`` reads/writes snapshots unless told otherwise.
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

#: Environment override for the synthetic slowdown pad (seconds) --
#: lets CI prove the comparator trips without patching any code.
SLOWDOWN_ENV = "REPRO_BENCH_SLOWDOWN_S"


def host_fingerprint() -> dict:
    """Enough machine identity to flag cross-host comparisons."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def env_slowdown_s() -> float:
    """The synthetic pad requested via :data:`SLOWDOWN_ENV` (0 unset)."""
    raw = os.environ.get(SLOWDOWN_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        value = float(raw)
    except ValueError as exc:
        raise ReproError(
            f"{SLOWDOWN_ENV}={raw!r} is not a number") from exc
    if value < 0:
        raise ReproError(f"{SLOWDOWN_ENV} must be >= 0, got {value}")
    return value


def measure_telemetry_overhead(iterations: int = 1000) -> dict:
    """Measured per-span and per-log-record cost on this host.

    Recorded into every snapshot so the comparator can tell a code
    regression from a telemetry-configuration difference: a baseline
    captured with structured logging off is not an apples-to-apples
    baseline for a run with it on.  ``span_overhead_s`` times a
    no-child span under an active trace (the bench harness always
    traces its repeats); ``log_overhead_s`` times an info-level emit
    through the current logging configuration (the cheap no-op path
    when no sink is configured).
    """
    if iterations < 1:
        raise ReproError(
            f"iterations must be >= 1, got {iterations}")
    probe = Trace("bench-telemetry-probe")
    start = time.perf_counter()
    with tracing(probe):
        for _ in range(iterations):
            with span("bench.telemetry_probe"):
                pass
    span_overhead_s = (time.perf_counter() - start) / iterations
    logger = get_logger("bench.telemetry_probe")
    start = time.perf_counter()
    for _ in range(iterations):
        logger.info("bench.telemetry_probe")
    log_overhead_s = (time.perf_counter() - start) / iterations
    return {
        "tracing": True,
        "logging": logging_configured(),
        "span_overhead_s": round_metric(span_overhead_s),
        "log_overhead_s": round_metric(log_overhead_s),
    }


def _histogram_sum(metrics: MetricsRegistry, name: str) -> float:
    """Summed ``sum`` over every labelled series of one histogram."""
    total = 0.0
    for series_name, _labels, histogram in metrics.histograms():
        if series_name == name:
            total += histogram.sum
    return total


def run_benchmarks(experiment_ids: Sequence[str] | None = None, *,
                   repeats: int = DEFAULT_REPEATS,
                   slowdown_s: float = 0.0) -> dict:
    """Run the benchmarks and return a schema-versioned snapshot dict.

    Every repeat is a cold inline-engine execution under a fresh trace;
    a failing repeat raises :class:`~repro.errors.ReproError`
    immediately (a benchmark of a broken experiment measures nothing).
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    if slowdown_s < 0:
        raise ReproError(f"slowdown_s must be >= 0, got {slowdown_s}")
    ids = list(experiment_ids) if experiment_ids else None
    if ids is None:
        from repro.analysis.experiments import EXPERIMENTS
        ids = list(EXPERIMENTS)

    config = EngineConfig(executor="inline", cache_enabled=False)
    benchmarks = []
    for experiment_id in ids:
        wall_times: list[float] = []
        solver_iterations = 0.0
        span_count = 0
        peak_rss_kb = 0.0
        for _ in range(repeats):
            trace = Trace(f"bench-{experiment_id}")
            with tracing(trace):
                sweep = run_experiments([experiment_id], config=config)
            record = sweep.records[0]
            if not record.ok:
                raise ReproError(
                    f"benchmark {experiment_id} failed "
                    f"({record.status}): {record.error}")
            wall_times.append(record.wall_time_s + slowdown_s)
            solver_iterations += _histogram_sum(
                trace.metrics, "solver.iterations_per_solve")
            span_count += len(trace)
            peak_rss_kb = max(peak_rss_kb,
                              sample_resources().rss_peak_kb)
        benchmarks.append({
            "id": experiment_id,
            "family": experiment_family(experiment_id),
            "wall_times_s": [round_metric(t) for t in wall_times],
            "median_s": round_metric(statistics.median(wall_times)),
            "best_s": round_metric(min(wall_times)),
            "peak_rss_kb": round_metric(peak_rss_kb),
            "solver_iterations": round_metric(solver_iterations),
            "spans": span_count,
        })

    return {
        "schema": BENCH_SCHEMA,
        "created_at": round_metric(wall_now()),
        "host": host_fingerprint(),
        "config": {"repeats": repeats,
                   "slowdown_s": round_metric(slowdown_s)},
        "telemetry": measure_telemetry_overhead(),
        "benchmarks": benchmarks,
    }


def validate_snapshot(payload: Any) -> list[str]:
    """Problems with a benchmark snapshot (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"snapshot is {type(payload).__name__}, expected object"]
    if payload.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema is {payload.get('schema')!r}, "
                      f"expected {BENCH_SCHEMA!r}")
    if not isinstance(payload.get("created_at"), (int, float)):
        errors.append("created_at is not a number")
    host = payload.get("host")
    if not isinstance(host, dict) or not host.get("platform"):
        errors.append("host fingerprint missing or lacks a platform")
    config = payload.get("config")
    if not isinstance(config, dict) \
            or not isinstance(config.get("repeats"), int) \
            or config["repeats"] < 1:
        errors.append("config.repeats missing or < 1")
    telemetry = payload.get("telemetry")
    if telemetry is not None:  # optional: pre-telemetry snapshots
        if not isinstance(telemetry, dict):
            errors.append("telemetry is not an object")
        else:
            for key in ("tracing", "logging"):
                if not isinstance(telemetry.get(key), bool):
                    errors.append(f"telemetry.{key} is not a boolean")
            for key in ("span_overhead_s", "log_overhead_s"):
                value = telemetry.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"telemetry.{key} missing or "
                                  f"negative")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append("benchmarks missing or empty")
        return errors
    seen: set[str] = set()
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            errors.append(f"benchmark {index} is not an object")
            continue
        bench_id = entry.get("id")
        label = bench_id if isinstance(bench_id, str) else f"#{index}"
        if not isinstance(bench_id, str) or not bench_id:
            errors.append(f"benchmark {label}: missing id")
        elif bench_id in seen:
            errors.append(f"benchmark {label}: duplicate id")
        else:
            seen.add(bench_id)
        times = entry.get("wall_times_s")
        if not isinstance(times, list) or not times or any(
                not isinstance(t, (int, float)) or t < 0 for t in times):
            errors.append(f"benchmark {label}: wall_times_s must be "
                          f"a non-empty list of non-negative numbers")
        median = entry.get("median_s")
        if not isinstance(median, (int, float)) or median < 0:
            errors.append(f"benchmark {label}: bad median_s "
                          f"{median!r}")
        for key in ("peak_rss_kb", "solver_iterations"):
            if not isinstance(entry.get(key), (int, float)):
                errors.append(f"benchmark {label}: missing {key}")
    return errors


def snapshot_filename(snapshot: Mapping[str, Any]) -> str:
    """``BENCH_<UTC timestamp>.json`` for one snapshot."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ",
                          time.gmtime(float(snapshot["created_at"])))
    return f"BENCH_{stamp}.json"


def write_snapshot(snapshot: Mapping[str, Any],
                   out_dir: Path | str) -> Path:
    """Validate and write a snapshot; returns the file path.

    Same-second snapshots get a ``-1``, ``-2`` ... suffix rather than
    silently overwriting the earlier file.
    """
    errors = validate_snapshot(snapshot)
    if errors:
        raise ReproError("refusing to write invalid snapshot: "
                         + "; ".join(errors))
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    base = snapshot_filename(snapshot)
    path = out_dir / base
    suffix = 0
    while path.exists():
        suffix += 1
        path = out_dir / base.replace(".json", f"-{suffix}.json")
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True),
                    "utf-8")
    return path


def list_snapshots(directory: Path | str) -> list[Path]:
    """``BENCH_*.json`` files in a directory, oldest first.

    The timestamped filenames sort chronologically, so lexicographic
    order is creation order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("BENCH_*.json"))


def latest_baseline(directory: Path | str) -> Path | None:
    """The newest committed snapshot in a baseline directory, if any."""
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None


def load_snapshot(path: Path | str) -> dict:
    """Load and validate a snapshot file; raises on problems."""
    payload = json.loads(Path(path).read_text("utf-8"))
    errors = validate_snapshot(payload)
    if errors:
        raise ReproError(f"{path}: invalid benchmark snapshot: "
                         + "; ".join(errors))
    return payload


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a snapshot against a baseline."""

    rel_tol: float
    abs_floor_s: float
    rows: list[dict] = field(default_factory=list)
    cross_host: bool = False
    #: The two snapshots ran with different telemetry switches
    #: (tracing/logging on vs off) -- deltas may measure the
    #: instrumentation, not the code.  Only set when both sides
    #: recorded a telemetry block.
    telemetry_mismatch: bool = False

    @property
    def regressions(self) -> list[dict]:
        return [row for row in self.rows
                if row["status"] == "regression"]

    @property
    def exit_code(self) -> int:
        """0 when no benchmark regressed, 1 otherwise."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        """Per-benchmark delta table plus the verdict line."""
        from repro.analysis.report import render_table

        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:.4f}"

        table_rows = []
        for row in self.rows:
            ratio = row["ratio"]
            table_rows.append([
                row["id"], fmt(row["old_s"]), fmt(row["new_s"]),
                fmt(row["delta_s"]),
                "-" if ratio is None else f"{ratio:+.1%}",
                row["status"],
            ])
        lines = [render_table(
            ["id", "old [s]", "new [s]", "delta [s]", "ratio", "status"],
            table_rows)]
        if self.cross_host:
            lines.append("warning: baseline was recorded on a "
                         "different host; deltas may reflect the "
                         "machine, not the code")
        if self.telemetry_mismatch:
            lines.append("warning: baseline was recorded with "
                         "different telemetry switches (tracing/"
                         "logging); deltas may reflect the "
                         "instrumentation, not the code")
        regressed = self.regressions
        if regressed:
            lines.append(
                f"REGRESSION: {len(regressed)} benchmark(s) slower "
                f"than baseline by >{self.rel_tol:.0%} and "
                f">{self.abs_floor_s:g}s: "
                + ", ".join(row["id"] for row in regressed))
        else:
            lines.append(f"no regressions ({len(self.rows)} "
                         f"benchmark(s) within rel {self.rel_tol:.0%} "
                         f"/ abs {self.abs_floor_s:g}s)")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "rel_tol": self.rel_tol,
            "abs_floor_s": self.abs_floor_s,
            "cross_host": self.cross_host,
            "telemetry_mismatch": self.telemetry_mismatch,
            "rows": self.rows,
            "regressions": [row["id"] for row in self.regressions],
        }


def compare_snapshots(baseline: Mapping[str, Any],
                      current: Mapping[str, Any], *,
                      rel_tol: float = REL_TOL,
                      abs_floor_s: float = ABS_FLOOR_S
                      ) -> BenchComparison:
    """Noise-aware comparison of ``current`` against ``baseline``.

    A benchmark regresses only when its new median exceeds the old by
    *both* gates: ``new > old * (1 + rel_tol)`` **and**
    ``new > old + abs_floor_s``.  Benchmarks present on only one side
    are reported (``new`` / ``removed``) but never gate.
    """
    old_medians = {entry["id"]: float(entry["median_s"])
                   for entry in baseline["benchmarks"]}
    rows: list[dict] = []
    for entry in current["benchmarks"]:
        bench_id = entry["id"]
        new_s = float(entry["median_s"])
        old_s = old_medians.pop(bench_id, None)
        if old_s is None:
            rows.append({"id": bench_id, "old_s": None, "new_s": new_s,
                         "delta_s": None, "ratio": None,
                         "status": "new"})
            continue
        delta = new_s - old_s
        ratio = (delta / old_s) if old_s > 0 else None
        if new_s > old_s * (1.0 + rel_tol) \
                and new_s > old_s + abs_floor_s:
            status = "regression"
        elif old_s > new_s * (1.0 + rel_tol) \
                and old_s > new_s + abs_floor_s:
            status = "improved"
        else:
            status = "ok"
        rows.append({"id": bench_id,
                     "old_s": round_metric(old_s),
                     "new_s": round_metric(new_s),
                     "delta_s": round_metric(delta),
                     "ratio": None if ratio is None
                     else round_metric(ratio),
                     "status": status})
    for bench_id, old_s in sorted(old_medians.items()):
        rows.append({"id": bench_id, "old_s": round_metric(old_s),
                     "new_s": None, "delta_s": None, "ratio": None,
                     "status": "removed"})
    cross_host = (baseline.get("host", {}).get("platform")
                  != current.get("host", {}).get("platform"))
    old_telemetry = baseline.get("telemetry")
    new_telemetry = current.get("telemetry")
    telemetry_mismatch = (
        isinstance(old_telemetry, dict)
        and isinstance(new_telemetry, dict)
        and any(old_telemetry.get(key) != new_telemetry.get(key)
                for key in ("tracing", "logging")))
    return BenchComparison(rel_tol=rel_tol, abs_floor_s=abs_floor_s,
                           rows=rows, cross_host=cross_host,
                           telemetry_mismatch=telemetry_mismatch)


__all__ = [
    "ABS_FLOOR_S",
    "BENCH_SCHEMA",
    "BenchComparison",
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_REPEATS",
    "QUICK_IDS",
    "REL_TOL",
    "SLOWDOWN_ENV",
    "compare_snapshots",
    "env_slowdown_s",
    "host_fingerprint",
    "latest_baseline",
    "list_snapshots",
    "load_snapshot",
    "measure_telemetry_overhead",
    "run_benchmarks",
    "snapshot_filename",
    "validate_snapshot",
    "write_snapshot",
]
