"""E-T2: reproduce Table 2 (analytical Ioff scaling, 180 -> 35 nm).

Per node: the normalised electrical gate capacitance, the Vth solved to
meet 750 uA/um, the resulting Eq.-(4) Ioff, the metal-gate variant, and
the ITRS Ioff projection -- plus the paper's two headline derived
numbers (the 152x model Ioff increase across the roadmap vs the ITRS'
23x, and the ~7x Ioff relief from running the 50 nm node at 0.7 V).
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.mosfet import MosfetModel
from repro.devices.params import device_for_node, PAPER_VTH_BY_NODE_V
from repro.devices.solver import solve_vth_for_ion
from repro.itrs import ITRS_2000

#: The paper's printed Table 2 Ioff row [nA/um], for comparison columns.
PAPER_IOFF_BY_NODE_NA = {180: 3.0, 130: 4.0, 100: 26.0, 70: 210.0,
                         50: 3205.0, 35: 456.0}

#: The paper's printed metal-gate Ioff row [nA/um].
PAPER_IOFF_METAL_BY_NODE_NA = {180: 1.0, 130: 1.4, 100: 8.7, 70: 55.0,
                               50: 666.0, 35: 103.0}


def table2_row(node_nm: int) -> dict[str, float]:
    """Compute one Table 2 column."""
    record = ITRS_2000.node(node_nm)
    device = device_for_node(node_nm)
    target = record.ion_target_ua_um

    vth = solve_vth_for_ion(device, target)
    model = MosfetModel(device.with_vth(vth))
    ioff = model.ioff_na_um()

    metal = device.with_gate_stack(device.gate_stack.with_metal_gate())
    vth_metal = solve_vth_for_ion(metal, target)
    ioff_metal = MosfetModel(metal.with_vth(vth_metal)).ioff_na_um()

    coxe_180 = device_for_node(180).gate_stack.coxe
    return {
        "node_nm": node_nm,
        "coxe_norm": device.gate_stack.coxe / coxe_180,
        "vth_v": vth,
        "vth_paper_v": PAPER_VTH_BY_NODE_V[node_nm],
        "ioff_na_um": ioff,
        "ioff_paper_na_um": PAPER_IOFF_BY_NODE_NA[node_nm],
        "ioff_metal_na_um": ioff_metal,
        "ioff_metal_paper_na_um": PAPER_IOFF_METAL_BY_NODE_NA[node_nm],
        "ioff_itrs_na_um": record.ioff_itrs_na_um,
        "metal_gate_vth_gain_mv": (vth_metal - vth) * 1e3,
    }


def fifty_nm_at_0v7() -> dict[str, float]:
    """The parenthetical 50 nm / Vdd = 0.7 V column of Table 2."""
    record = ITRS_2000.node(50)
    device = replace(device_for_node(50), vdd_v=0.7)
    vth = solve_vth_for_ion(device, record.ion_target_ua_um)
    ioff = MosfetModel(device.with_vth(vth)).ioff_na_um()
    base = table2_row(50)
    return {
        "vth_v": vth,
        "ioff_na_um": ioff,
        "ioff_relief_vs_0v6": base["ioff_na_um"] / ioff,
        "dynamic_power_penalty": (0.7 / 0.6) ** 2 - 1.0,
    }


def reproduce_table2() -> dict[str, object]:
    """Full Table 2 plus the derived scaling statistics."""
    rows = [table2_row(node_nm) for node_nm in ITRS_2000.node_sizes]
    first, last = rows[0], rows[-1]
    model_increase = last["ioff_na_um"] / first["ioff_na_um"]
    itrs_increase = (last["ioff_itrs_na_um"] / first["ioff_itrs_na_um"])
    return {
        "rows": rows,
        "variant_50nm_0v7": fifty_nm_at_0v7(),
        "summary": {
            "model_ioff_increase_180_to_35": model_increase,
            "itrs_ioff_increase_180_to_35": itrs_increase,
            "model_over_itrs_at_35nm": (last["ioff_na_um"]
                                        / last["ioff_itrs_na_um"]),
            "metal_gate_ioff_reduction_at_35nm": (
                1.0 - last["ioff_metal_na_um"] / last["ioff_na_um"]),
        },
    }
