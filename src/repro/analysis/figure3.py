"""E-F3: reproduce Fig. 3 (normalised delay vs Vdd, three Vth policies)."""

from __future__ import annotations

from repro.power.vdd_scaling import (
    VthPolicy,
    scaling_point,
    vdd_scaling_sweep,
)


def reproduce_figure3() -> dict[str, object]:
    """Fig. 3's three curves at 35 nm plus the paper's quoted points.

    Paper: at Vdd = 0.2 V the constant-Vth delay is 3.7x nominal; with
    Vth scaled to keep Pstatic constant the increase is < 30 % while
    dynamic power falls 89 %; with conservative Vth scaling Pstatic
    falls to 1/3 at one-third the nominal supply.
    """
    curves = {
        policy.value: [{
            "vdd_v": point.vdd_v,
            "vth_v": point.vth_v,
            "delay_norm": point.delay_norm,
            "static_power_norm": point.static_power_norm,
            "dynamic_power_norm": point.dynamic_power_norm,
        } for point in vdd_scaling_sweep(policy)]
        for policy in VthPolicy
    }
    at_0v2 = {policy.value: scaling_point(0.2, policy)
              for policy in VthPolicy}
    return {
        "curves": curves,
        "summary": {
            "delay_constant_vth_at_0v2": at_0v2["constant"].delay_norm,
            "paper_delay_constant_vth_at_0v2": 3.7,
            "delay_constant_pstatic_at_0v2":
                at_0v2["constant_pstatic"].delay_norm,
            "paper_delay_constant_pstatic_bound": 1.30,
            "dynamic_saving_at_0v2":
                1.0 - at_0v2["constant_pstatic"].dynamic_power_norm,
            "paper_dynamic_saving_at_0v2": 0.89,
            "conservative_pstatic_at_0v2":
                at_0v2["conservative"].static_power_norm,
            "paper_conservative_pstatic_at_0v2": 1.0 / 3.0,
        },
    }
