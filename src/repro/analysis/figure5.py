"""E-F5: reproduce Fig. 5 (IR-drop rail sizing vs bump pitch scenario)."""

from __future__ import annotations

from repro.pdn.bacpac import PitchScenario, fig5_sweep


def reproduce_figure5() -> dict[str, object]:
    """Both Fig. 5 curves plus the paper's quoted endpoints.

    Paper: at the minimum bump pitch the required rail width grows
    roughly quadratically but stays manageable (~16x minimum width at
    35 nm, under 4 % of top-level routing for the rails, 17-20 % with
    landing pads; 50 nm is *more* restricted than 35 nm because power
    density falls at 35 nm).  Under ITRS pad counts (a ~constant
    ~350 um effective pitch) the requirement explodes to >1000x minimum
    width, consuming an untenable share of routing.
    """
    curves = {
        scenario.value: [{
            "node_nm": point.node_nm,
            "bump_pitch_um": point.bump_pitch_um,
            "width_over_min": point.width_over_min,
            "routing_fraction": point.routing_fraction,
        } for point in fig5_sweep(scenario)]
        for scenario in PitchScenario
    }
    min_pitch = {row["node_nm"]: row for row in curves["min_pitch"]}
    itrs = {row["node_nm"]: row for row in curves["itrs_pads"]}
    return {
        "curves": curves,
        "summary": {
            "min_pitch_width_over_min_at_35nm":
                min_pitch[35]["width_over_min"],
            "paper_min_pitch_width_over_min_at_35nm": 16.0,
            "min_pitch_width_over_min_at_50nm":
                min_pitch[50]["width_over_min"],
            "itrs_width_over_min_at_35nm": itrs[35]["width_over_min"],
            "paper_itrs_width_over_min_at_35nm": 2000.0,
            "min_pitch_routing_at_35nm": min_pitch[35]["routing_fraction"],
            "paper_min_pitch_routing_band": (0.17, 0.20),
        },
    }
