"""E-C1..E-C7: the paper's quantitative in-text claims.

Each function exercises the relevant subsystem end-to-end and returns a
flat dictionary of measured values next to the paper's quoted numbers.
"""

from __future__ import annotations

from repro.circuits.gate import GateKind
from repro.circuits.cellgen import optimize_block
from repro.circuits.library import build_library
from repro.devices.params import device_for_node
from repro.interconnect.repeaters import repeater_scaling
from repro.interconnect.signaling import compare_schemes
from repro.netlist.generate import random_netlist
from repro.optim.combined import combined_flow, ordering_study
from repro.optim.cvs import assign_cvs
from repro.optim.dual_vth import assign_dual_vth
from repro.optim.sizing import resizing_vs_vdd_comparison
from repro.pdn.bumps import bump_budget
from repro.pdn.transients import mcml_transient_advantage, wakeup_transient
from repro.thermal.dtm import DtmController, simulate_dtm
from repro.thermal.package import (
    cooling_cost_usd,
    dtm_packaging_benefit,
    theta_ja,
)
from repro.thermal.rc_network import default_thermal_network
from repro.thermal.sensor import ThermalSensor
from repro.thermal.workloads import power_virus_trace, realistic_app_trace

#: Netlist configuration used by the optimization claims: slack-rich,
#: matching the media-processor / MPU profiles the paper cites.
_NETLIST_NODE_NM = 100
_NETLIST_KWARGS = dict(n_gates=400, depth_skew=2.2, clock_margin=1.10)


def _claims_netlist(seed: int = 1):
    return random_netlist(_NETLIST_NODE_NM, seed=seed, **_NETLIST_KWARGS)


def claim_c1_thermal() -> dict[str, float]:
    """E-C1: DTM / packaging-cost claims of Section 2.1."""
    benefit = dtm_packaging_benefit(100.0, tj_max_c=85.0)
    tj_limit = 85.0
    cost_65 = cooling_cost_usd(65.0, tj_limit)
    cost_75 = cooling_cost_usd(75.0, tj_limit)

    virus_w = 100.0
    theta = theta_ja(tj_limit, 45.0, 0.75 * virus_w)  # DTM-sized package
    runs: dict[str, float] = {}
    for label, trace, managed in (
        ("virus_dtm", power_virus_trace(virus_w, 60.0), True),
        ("virus_unmanaged", power_virus_trace(virus_w, 60.0), False),
        ("app_dtm", realistic_app_trace(virus_w, 60.0, seed=3), True),
    ):
        network = default_thermal_network(theta)
        controller = (DtmController(ThermalSensor(trip_c=tj_limit - 2.0))
                      if managed else None)
        result = simulate_dtm(trace, network, controller)
        runs[f"{label}_max_tj_c"] = result.max_junction_c
        runs[f"{label}_throughput"] = result.throughput_fraction
    return {
        "theta_relief": benefit.theta_relief,
        "paper_theta_relief": 1.0 / 0.75 - 1.0,
        "cooling_cost_ratio_75_over_65": cost_75 / cost_65,
        "paper_cooling_cost_ratio": 3.0,
        "tj_limit_c": tj_limit,
        **runs,
    }


def claim_c2_signaling() -> dict[str, float]:
    """E-C2: repeater-count/power, low-swing, and repeater-cluster
    claims of Section 2.2."""
    from repro.interconnect.clusters import cluster_station
    at_180 = repeater_scaling(180)
    at_50 = repeater_scaling(50)
    comparison = compare_schemes(50)
    station = cluster_station(50)
    return {
        "cluster_power_density_w_cm2": station.power_density_w_cm2,
        "paper_cluster_density_bound_w_cm2": 100.0,
        "cluster_delay_penalty": station.delay_penalty,
        "repeater_count_180nm": at_180.repeater_count,
        "paper_repeater_count_180nm": 1e4,
        "repeater_count_50nm": at_50.repeater_count,
        "paper_repeater_count_50nm": 1e6,
        "signaling_power_50nm_w": at_50.signaling_power_w,
        "paper_signaling_power_bound_w": 50.0,
        "low_swing_energy_saving": comparison.energy_saving,
        "low_swing_transient_reduction": comparison.transient_reduction,
        "low_swing_area_ratio": comparison.area_ratio,
        "paper_area_ratio_bound": 2.0,
    }


def claim_c3_cvs() -> dict[str, float]:
    """E-C3: clustered voltage scaling claims of Section 2.4."""
    from repro.optim.placement import placement_overhead
    netlist = _claims_netlist()
    result = assign_cvs(netlist)
    overhead = placement_overhead(netlist)
    return {
        "area_overhead": overhead.area_overhead,
        "paper_area_overhead": 0.15,
        "low_vdd_fraction": result.low_vdd_fraction,
        "paper_low_vdd_fraction": 0.75,
        "dynamic_saving": result.dynamic_saving,
        "paper_dynamic_saving_band_low": 0.45,
        "paper_dynamic_saving_band_high": 0.50,
        "lc_power_fraction": result.power_after.lc_fraction,
        "paper_lc_power_band_low": 0.08,
        "paper_lc_power_band_high": 0.10,
        "vdd_ratio": result.vdd_low_v / result.vdd_high_v,
    }


def claim_c4_dual_vth() -> dict[str, float]:
    """E-C4: dual-Vth assignment claims of Section 3.2.2.

    Three design scenarios spanning realistic slack profiles: a
    slack-rich netlist straight out of mapping, and two that have been
    through area-recovery down-sizing (which consumes slack, as
    production flows do) to different degrees.  The paper's 40-80 % band
    reflects exactly this benchmark-to-benchmark spread.
    """
    from repro.optim.sizing import downsize_netlist

    scenarios = (
        ("slack_rich", None),
        ("area_recovered", 0.7),
        ("tight", 0.5),
    )
    savings = []
    penalties = []
    per_scenario: dict[str, float] = {}
    for label, min_factor in scenarios:
        netlist = random_netlist(35, n_gates=400, seed=2, depth_skew=1.6,
                                 clock_margin=1.05)
        if min_factor is not None:
            downsize_netlist(netlist, min_factor=min_factor)
        result = assign_dual_vth(netlist, clock_margin=1.0)
        savings.append(result.leakage_saving)
        penalties.append(result.delay_penalty)
        per_scenario[f"saving_{label}"] = result.leakage_saving
    return {
        **per_scenario,
        "leakage_saving_min": min(savings),
        "leakage_saving_max": max(savings),
        "paper_band_low": 0.40,
        "paper_band_high": 0.80,
        "worst_delay_penalty": max(penalties),
    }


def claim_c5_resizing() -> dict[str, float]:
    """E-C5: re-sizing is sublinear; Vdd reduction is quadratic."""
    comparison = resizing_vs_vdd_comparison(_claims_netlist)
    study = ordering_study(_claims_netlist)
    flow = combined_flow(_claims_netlist())
    return {
        "sizing_dynamic_saving": comparison.sizing.dynamic_saving,
        "sizing_width_saving": comparison.sizing.width_saving,
        "sizing_sublinearity": comparison.sizing.sublinearity,
        "cvs_dynamic_saving": comparison.cvs.dynamic_saving,
        "cvs_first_low_vdd_fraction": study.cvs_first.low_vdd_fraction,
        "cvs_after_sizing_low_vdd_fraction":
            study.cvs_after_sizing.low_vdd_fraction,
        "combined_total_saving": flow.total_saving,
        "combined_static_saving": flow.total_static_saving,
    }


def claim_c6_pdn() -> dict[str, float]:
    """E-C6: bump budget / wake-up transient / MCML claims of Section 4."""
    budget = bump_budget(35)
    wake_min = wakeup_transient(35, use_min_pitch=True)
    wake_itrs = wakeup_transient(35, use_min_pitch=False)
    return {
        "supply_current_35nm_a": budget.supply_current_a,
        "paper_supply_current_a": 300.0,
        "vdd_pads_35nm": float(budget.vdd_pads),
        "paper_vdd_pads": 1500.0,
        "per_bump_current_a": budget.current_per_vdd_bump_a,
        "bump_limit_a": budget.bump_current_limit_a,
        "itrs_budget_feasible": float(budget.feasible),
        "vdd_bump_shortfall": float(budget.vdd_bump_shortfall),
        "effective_pitch_um": budget.effective_pitch_um,
        "paper_effective_pitch_um": 356.0,
        "wakeup_droop_itrs": wake_itrs.droop_fraction,
        "wakeup_droop_min_pitch": wake_min.droop_fraction,
        "wakeup_improvement": (wake_itrs.droop_v / wake_min.droop_v),
        "mcml_transient_advantage": mcml_transient_advantage(50),
    }


def claim_c7_library() -> dict[str, float]:
    """E-C7: library richness / on-the-fly cell generation (Section 2.3)."""
    node_nm = 100
    device = device_for_node(node_nm)
    library = build_library(node_nm)
    inverter_strengths = library.drive_strengths(GateKind.INVERTER)
    nand_strengths = library.drive_strengths(GateKind.NAND)

    # A block of instances sampled from a netlist's load/slack profile.
    netlist = _claims_netlist(seed=5)
    from repro.netlist.sta import compute_sta  # local import, no cycle
    report = compute_sta(netlist)
    instances = []
    for name in list(netlist.topo_order())[:120]:
        instance = netlist.instances[name]
        load = netlist.load_f(name)
        budget = (netlist.gate_delay_s(name)
                  + max(report.slack_s[name], 0.0) * 0.5)
        instances.append((instance.cell.design.kind,
                          instance.cell.design.n_inputs, load, budget))
    block = optimize_block(device, library, instances)
    return {
        "inverter_drive_strengths": float(len(inverter_strengths)),
        "paper_inverter_drive_strengths": 16.0,
        "nand2_drive_strengths": float(len(nand_strengths)),
        "paper_nand2_drive_strengths": 11.0,
        "cellgen_power_saving": block.power_saving,
        "paper_cellgen_band_low": 0.15,
        "paper_cellgen_band_high": 0.22,
    }
