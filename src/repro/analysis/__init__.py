"""Experiment harness: one callable per paper table, figure and claim.

``repro.analysis.experiments.EXPERIMENTS`` maps experiment ids (E-T1,
E-T2, E-F1..E-F5, E-C1..E-C7, E-V1) to functions returning plain data
structures; :mod:`repro.analysis.report` renders them as text tables.
The benchmark suite and EXPERIMENTS.md are generated from this registry.
"""

from repro.analysis.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.analysis.report import render_table

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment", "render_table"]
