"""The experiment registry: every table, figure and claim, by id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.claims import (
    claim_c1_thermal,
    claim_c2_signaling,
    claim_c3_cvs,
    claim_c4_dual_vth,
    claim_c5_resizing,
    claim_c6_pdn,
    claim_c7_library,
)
from repro.analysis.electrothermal import (
    electrothermal_et1_wakeup,
    electrothermal_et2_dtm_virus,
    electrothermal_et3_runaway,
    electrothermal_et4_emergency,
)
from repro.analysis.extensions import (
    extension_x1_leakage_toolbox,
    extension_x2_dvs_vs_throttling,
    extension_x3_global_clock_domains,
    extension_x4_electrothermal,
)
from repro.analysis.figure1 import reproduce_figure1
from repro.analysis.scaling import (
    scaling_s1_grid,
    scaling_s2_sta,
    scaling_s3_grid_million,
    scaling_s4_reuse_sweep,
)
from repro.analysis.figure2 import reproduce_figure2
from repro.analysis.figure3 import reproduce_figure3
from repro.analysis.figure4 import reproduce_figure4
from repro.analysis.figure5 import reproduce_figure5
from repro.analysis.table1 import reproduce_table1
from repro.analysis.table2 import reproduce_table2
from repro.errors import ReproError


def _validate_grid() -> dict[str, float]:
    from repro.pdn.grid import validate_analytic_model
    result = validate_analytic_model(35)
    return {
        "analytic_drop_v": result.analytic_drop_v,
        "strip_drop_v": result.strip_drop_v,
        "grid_drop_v": result.grid_drop_v,
        "strip_error": result.strip_error,
        "grid_margin": result.grid_margin,
    }


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    id: str
    description: str
    paper_artifact: str
    runner: Callable[[], Any]


EXPERIMENTS: dict[str, Experiment] = {
    experiment.id: experiment for experiment in (
        Experiment("E-T1", "Published NMOS devices vs ITRS projections",
                   "Table 1", reproduce_table1),
        Experiment("E-T2", "Analytical Ioff scaling, 180-35 nm",
                   "Table 2", reproduce_table2),
        Experiment("E-F1", "Pstatic/Pdynamic vs switching activity",
                   "Figure 1", reproduce_figure1),
        Experiment("E-F2", "Dual-Vth Ion gain and Ioff penalty scaling",
                   "Figure 2", reproduce_figure2),
        Experiment("E-F3", "Delay vs Vdd under three Vth policies",
                   "Figure 3", reproduce_figure3),
        Experiment("E-F4", "Pdynamic/Pstatic vs Vdd at 35 nm",
                   "Figure 4", reproduce_figure4),
        Experiment("E-F5", "IR-drop rail sizing vs bump pitch scenario",
                   "Figure 5", reproduce_figure5),
        Experiment("E-C1", "DTM thermal management and packaging cost",
                   "Section 2.1", claim_c1_thermal),
        Experiment("E-C2", "Repeater count/power and low-swing signaling",
                   "Section 2.2", claim_c2_signaling),
        Experiment("E-C3", "Clustered voltage scaling savings",
                   "Section 2.4", claim_c3_cvs),
        Experiment("E-C4", "Dual-Vth assignment leakage savings",
                   "Section 3.2.2", claim_c4_dual_vth),
        Experiment("E-C5", "Re-sizing sublinearity vs Vdd reduction",
                   "Section 3.3", claim_c5_resizing),
        Experiment("E-C6", "Bump budgets, wake-up transients, MCML",
                   "Section 4", claim_c6_pdn),
        Experiment("E-C7", "Library richness and on-the-fly cells",
                   "Section 2.3", claim_c7_library),
        Experiment("E-V1", "Analytic IR model vs sparse grid solver",
                   "(validation)", _validate_grid),
        Experiment("E-S1", "Solver scaling: 8x8-cell power-mesh solve",
                   "(perf)", scaling_s1_grid),
        Experiment("E-S2", "Solver scaling: 4000-gate full STA",
                   "(perf)", scaling_s2_sta),
        Experiment("E-S3", "Solver scaling: million-unknown AMG-CG mesh",
                   "(perf)", scaling_s3_grid_million),
        Experiment("E-S4", "Solver scaling: 10-point setup-reuse sweep",
                   "(perf)", scaling_s4_reuse_sweep),
        Experiment("E-X1", "Standby-leakage technique toolbox",
                   "Sections 3.2.1/3.3 (extension)",
                   extension_x1_leakage_toolbox),
        Experiment("E-X2", "DVS vs clock-throttling thermal management",
                   "Section 2.1 (extension)",
                   extension_x2_dvs_vs_throttling),
        Experiment("E-X3", "Global clock domains / cross-chip latency",
                   "Section 2.2 (extension)",
                   extension_x3_global_clock_domains),
        Experiment("E-X4", "Electrothermal leakage feedback and runaway",
                   "Sections 2.1 + 3 (extension)",
                   extension_x4_electrothermal),
        Experiment("E-ET1", "Wake-up droop co-sim vs L di/dt closed form",
                   "Section 4 (co-simulation)",
                   electrothermal_et1_wakeup),
        Experiment("E-ET2", "DTM virus co-sim: throughput vs Tj margin",
                   "Sections 2.1 + 4 (co-simulation)",
                   electrothermal_et2_dtm_virus),
        Experiment("E-ET3", "Thermal runaway co-sim: unmanaged vs DTM",
                   "Sections 2.1 + 3 (co-simulation)",
                   electrothermal_et3_runaway),
        Experiment("E-ET4", "Step-droop vs decap sizing against Z0",
                   "Section 4 (co-simulation)",
                   electrothermal_et4_emergency),
    )
}


def run_experiment(experiment_id: str) -> Any:
    """Run one experiment by id and return its result structure."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return experiment.runner()
