"""Export experiment results to CSV / JSON for external plotting.

Experiment results are plain dicts of rows/curves/summaries; these
helpers flatten them into files a spreadsheet or plotting tool ingests
directly::

    from repro.analysis.export import export_experiment
    export_experiment("E-F5", "out/")   # writes out/E-F5.json (+ .csv)
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any

from repro.analysis.experiments import run_experiment
from repro.errors import ReproError


def _flatten_rows(result: Any) -> list[dict[str, Any]] | None:
    """Extract a homogeneous row list from an experiment result."""
    if not isinstance(result, dict):
        return None
    rows = result.get("rows")
    if isinstance(rows, list) and rows and isinstance(rows[0], dict):
        return rows
    curves = result.get("curves") or result.get("series")
    if isinstance(curves, dict):
        flattened: list[dict[str, Any]] = []
        for name, points in curves.items():
            for point in points:
                if isinstance(point, dict):
                    flattened.append({"curve": name, **point})
                else:  # (x, y) pairs from Fig. 1 series
                    x, y = point
                    flattened.append({"curve": name, "x": x, "y": y})
        return flattened
    return None


def result_to_csv_rows(result: Any) -> list[dict[str, Any]]:
    """Rows suitable for ``csv.DictWriter``; scalars become one row."""
    rows = _flatten_rows(result)
    if rows is not None:
        return rows
    if isinstance(result, dict):
        scalars = {key: value for key, value in result.items()
                   if isinstance(value, (int, float, bool, str))}
        if scalars:
            return [scalars]
        summary = result.get("summary")
        if isinstance(summary, dict):
            return [{key: value for key, value in summary.items()
                     if isinstance(value, (int, float, bool, str))}]
    raise ReproError("result has no tabular content to export")


def write_csv(result: Any, path: str) -> None:
    """Write an experiment result as CSV."""
    rows = result_to_csv_rows(result)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="", encoding="utf-8") as stream:
        writer = csv.DictWriter(stream, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, bool, str)) or value is None:
        return value
    return str(value)


def write_json(result: Any, path: str) -> None:
    """Write an experiment result as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(_jsonable(result), stream, indent=2, sort_keys=True)
        stream.write("\n")


def export_experiment(experiment_id: str, directory: str = ".") -> list[str]:
    """Run an experiment and write ``<id>.json`` (and ``.csv`` when the
    result is tabular).  Returns the written paths."""
    result = run_experiment(experiment_id)
    os.makedirs(directory, exist_ok=True)
    written = []
    json_path = os.path.join(directory, f"{experiment_id}.json")
    write_json(result, json_path)
    written.append(json_path)
    try:
        csv_path = os.path.join(directory, f"{experiment_id}.csv")
        write_csv(result, csv_path)
        written.append(csv_path)
    except ReproError:
        pass
    return written
