"""E-T1: reproduce Table 1 (published NMOS devices vs ITRS)."""

from __future__ import annotations

from repro.devices.published import sub_1v_gap_summary, table1_rows


def reproduce_table1() -> dict[str, object]:
    """Return Table 1's rows plus the paper's headline observation.

    The observation: no published sub-1 V technology meets the ITRS
    Ion target, and using the published 1.2 V supplies where 0.9 V was
    projected costs 78 % extra dynamic power.
    """
    return {
        "rows": table1_rows(),
        "summary": sub_1v_gap_summary(),
    }
