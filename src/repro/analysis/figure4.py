"""E-F4: reproduce Fig. 4 (Pdynamic/Pstatic vs Vdd at 35 nm)."""

from __future__ import annotations

from repro.power.vdd_scaling import (
    VthPolicy,
    vdd_for_power_ratio,
    vdd_scaling_sweep,
)


def reproduce_figure4() -> dict[str, object]:
    """Fig. 4's curves plus the ITRS-constraint operating point.

    Paper: at activity 0.1 the constant-Pstatic policy pushes
    Pdyn/Pstat toward 1 at Vdd = 0.2 V, and a 10x dynamic-over-static
    constraint allows Vdd ~ 0.44 V -- a ~46 % dynamic-power saving.
    """
    curves = {
        policy.value: [{
            "vdd_v": point.vdd_v,
            "dyn_over_static": point.dyn_over_static,
        } for point in vdd_scaling_sweep(policy)]
        for policy in VthPolicy
    }
    vdd_at_10x = vdd_for_power_ratio(10.0,
                                     policy=VthPolicy.CONSTANT_PSTATIC)
    nominal = 0.6
    return {
        "curves": curves,
        "summary": {
            "vdd_at_ratio_10": vdd_at_10x,
            "paper_vdd_at_ratio_10": 0.44,
            "dynamic_saving_at_ratio_10": 1.0 - (vdd_at_10x / nominal) ** 2,
            "paper_dynamic_saving_at_ratio_10": 0.46,
            "ratio_constant_pstatic_at_0v2":
                curves["constant_pstatic"][0]["dyn_over_static"],
        },
    }
