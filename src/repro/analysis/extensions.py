"""E-X1..E-X3: extension experiments beyond the paper's own artifacts.

These quantify mechanisms the paper discusses qualitatively (Sections
2.1, 2.2, 3.2.1, 3.3) but does not plot: the standby-leakage technique
toolbox, DVS versus clock throttling, and the global clock-domain
latency picture.
"""

from __future__ import annotations

from repro.devices.params import device_for_node
from repro.interconnect.latency import latency_roadmap
from repro.itrs import ITRS_2000
from repro.power.body_bias import effectiveness_trend
from repro.power.mtcmos import size_sleep_transistor
from repro.power.stacks import mixed_vth_stack_study
from repro.thermal.dtm import DtmController, simulate_dtm
from repro.thermal.dvs import (
    DvsController,
    dvs_vs_throttling_throughput,
    simulate_dvs,
)
from repro.thermal.package import theta_ja
from repro.thermal.rc_network import default_thermal_network
from repro.thermal.sensor import ThermalSensor
from repro.thermal.workloads import power_virus_trace


def extension_x1_leakage_toolbox() -> dict[str, float]:
    """E-X1: the Section 3.2.1 / 3.3 standby-leakage technique toolbox.

    MTCMOS sleep transistors, reverse body bias, and mixed-Vth stacks,
    each with its cost axis (area / effectiveness decay / delay).
    """
    standard = device_for_node(70)
    low = standard.with_vth(standard.vth_v - 0.1)
    high = standard.with_vth(standard.vth_v + 0.1)
    mtcmos = size_sleep_transistor(low, high, logic_width_um=1000.0,
                                   max_delay_penalty=0.05)
    bias = effectiveness_trend()
    stack = mixed_vth_stack_study(device_for_node(35))
    return {
        "mtcmos_standby_reduction": mtcmos.standby_reduction(),
        "mtcmos_area_overhead": mtcmos.area_overhead,
        "mtcmos_delay_penalty": mtcmos.delay_penalty,
        "body_bias_reduction_180nm": bias[0].leakage_reduction_factor,
        "body_bias_reduction_35nm": bias[-1].leakage_reduction_factor,
        "stack_leakage_saving": stack.leakage_saving,
        "stack_delay_penalty": stack.delay_penalty,
    }


def extension_x2_dvs_vs_throttling() -> dict[str, float]:
    """E-X2: Transmeta-style DVS vs Pentium-4-style duty cycling.

    Same package (sized for the 75 % effective worst case), same virus,
    same sensor: DVS delivers more throughput at the same junction
    limit.
    """
    tj_limit = 85.0
    virus_w = 100.0
    theta = theta_ja(tj_limit, 45.0, 0.75 * virus_w)
    trace = power_virus_trace(virus_w, 60.0)

    dvs = simulate_dvs(trace, default_thermal_network(theta),
                       DvsController(ThermalSensor(trip_c=tj_limit - 2)))
    throttled = simulate_dtm(
        trace, default_thermal_network(theta),
        DtmController(ThermalSensor(trip_c=tj_limit - 2)))
    return {
        "tj_limit_c": tj_limit,
        "dvs_max_tj_c": dvs.max_junction_c,
        "throttling_max_tj_c": throttled.max_junction_c,
        "dvs_throughput": dvs.throughput_fraction,
        "throttling_throughput": throttled.throughput_fraction,
        "dvs_advantage": dvs_vs_throttling_throughput(dvs, throttled),
    }


def extension_x4_electrothermal() -> dict[str, float]:
    """E-X4: leakage-temperature feedback and runaway margin.

    Couples the Section 3 leakage models to the Section 2.1 thermal
    model: at the ITRS-target 0.25 C/W package, the 50 nm node's
    0.04 V threshold makes leakage the *majority* of settled power and
    leaves almost no electrothermal margin -- an independent argument
    for the paper's preference of the 0.7 V / higher-Vth variant.
    """
    from repro.thermal.electrothermal import (
        leakage_amplification,
        runaway_theta,
        solve_operating_point,
    )
    theta = 0.25
    dynamic_w = 160.0
    results: dict[str, float] = {"theta_ja": theta,
                                 "dynamic_power_w": dynamic_w}
    for node_nm in (70, 50, 35):
        point = solve_operating_point(node_nm, theta, dynamic_w)
        results[f"tj_{node_nm}nm_c"] = point.junction_c
        results[f"leakage_fraction_{node_nm}nm"] = \
            point.leakage_fraction
        results[f"amplification_{node_nm}nm"] = leakage_amplification(
            node_nm, theta, dynamic_w)
        results[f"runaway_theta_{node_nm}nm"] = runaway_theta(
            node_nm, dynamic_w)
    return results


def extension_x3_global_clock_domains() -> dict[str, object]:
    """E-X3: cross-chip latency and the global clock divider per node."""
    rows = [{
        "node_nm": point.node_nm,
        "edge_crossing_cycles": point.edge_crossing_cycles,
        "global_clock_divider": point.global_clock_divider,
        "reach_fraction_of_edge": point.reach_fraction_of_edge,
        "meets_itrs_global_clock": point.meets_itrs_global_clock,
    } for point in latency_roadmap()]
    last = rows[-1]
    return {
        "rows": rows,
        "summary": {
            "divider_at_180nm": rows[0]["global_clock_divider"],
            "divider_at_35nm": last["global_clock_divider"],
            "all_nodes_meet_itrs": all(row["meets_itrs_global_clock"]
                                       for row in rows),
            "nodes": len(ITRS_2000),
        },
    }
