"""E-F2: reproduce Fig. 2 (dual-Vth scaling across the roadmap)."""

from __future__ import annotations

from repro.devices.dual_vth import dual_vth_scaling


def reproduce_figure2() -> dict[str, object]:
    """Fig. 2's two curves plus the paper's quoted endpoints.

    Paper: Ion rises more sharply with a 100 mV Vth reduction as Vdd
    scales; the Ioff penalty for a +20 % Ion gain falls from ~54x
    "today" to ~7x at 35 nm; a fixed 100 mV reduction always costs ~15x
    in Ioff.
    """
    points = dual_vth_scaling()
    return {
        "rows": [{
            "node_nm": point.node_nm,
            "ion_gain_pct": point.ion_gain_pct,
            "ioff_penalty_for_20pct_ion": point.ioff_penalty_for_20pct,
            "ioff_ratio_100mv": point.ioff_ratio_100mv,
        } for point in points],
        "summary": {
            "penalty_at_180nm": points[0].ioff_penalty_for_20pct,
            "penalty_at_35nm": points[-1].ioff_penalty_for_20pct,
            "paper_penalty_today": 54.0,
            "paper_penalty_35nm": 7.0,
            "ion_gain_at_180nm_pct": points[0].ion_gain_pct,
            "ion_gain_at_35nm_pct": points[-1].ion_gain_pct,
        },
    }
