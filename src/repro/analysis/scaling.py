"""Solver-scaling experiments (perf artifacts, not paper figures).

The validation models only earn their keep when they are fast enough to
run at scale (cf. Rossello et al., PAPERS.md): the Fig. 5 power-grid
cross-check and the optimization flows both sit on the sparse-solver
and STA hot paths.  These two experiments pin the *large* end of those
paths so ``repro bench`` snapshots capture their end-to-end cost and
the CI delta table surfaces assembly-path regressions.

* ``E-S1`` -- one large 2-D power-mesh solve: the full ``cells = 8``,
  ``rails_per_pitch = 8`` bump patch at the 35 nm node (4144 unknowns),
  the mesh the solver-scaling acceptance criterion is measured on.
* ``E-S2`` -- STA over a 4000-gate synthetic netlist, the inner loop
  the optimization flows (CVS, dual-Vth, sizing) iterate.
* ``E-S3`` -- the million-unknown tier: a ``cells = 32``,
  ``rails_per_pitch = 32`` patch (1,049,536 unknowns) that must solve
  within tolerance via multilevel-preconditioned CG -- no direct or
  dense fallback is affordable at this size.
* ``E-S4`` -- setup-reuse sweep: ten same-sparsity solves of a
  ~100k-unknown mesh under a sheet-resistance sweep; the first point
  pays the multilevel setup, the rest reuse it from the fingerprint
  cache, and the reported ``reuse_speedup`` is the wall-clock ratio.
"""

from __future__ import annotations

import time

from repro import units
from repro.itrs import ITRS_2000

#: The scaling mesh: 8 bump periods per side, 8 rails per pitch.
SCALE_CELLS = 8
SCALE_RAILS_PER_PITCH = 8

#: The scaling netlist: 4000 gates, fixed seed for reproducibility.
SCALE_N_GATES = 4000
SCALE_SEED = 7

#: The million-unknown tier: 32 bump periods x 32 rails per pitch
#: gives a 1025x1025 mesh patch with 1,049,536 unknowns.
HUGE_CELLS = 32
HUGE_RAILS_PER_PITCH = 32

#: The reuse-sweep tier: 10 periods x 32 rails = 102,920 unknowns,
#: big enough that the multilevel setup dominates a single solve.
SWEEP_CELLS = 10
SWEEP_RAILS_PER_PITCH = 32

#: Points in the same-sparsity sheet-resistance sweep.
SWEEP_POINTS = 10


def scaling_s1_grid() -> dict[str, float]:
    """One large-mesh power-grid solve at the 35 nm node."""
    from repro.pdn.grid import solve_power_grid_2d

    density, sheet, width, pitch = _grid_inputs()
    solution = solve_power_grid_2d(
        density, sheet, width / SCALE_RAILS_PER_PITCH, pitch,
        rails_per_pitch=SCALE_RAILS_PER_PITCH, cells=SCALE_CELLS)
    return {
        "n_nodes": float(solution.n_nodes),
        "worst_drop_v": solution.worst_drop_v,
        "mean_drop_v": solution.mean_drop_v,
        "drop_ratio": solution.worst_drop_v / solution.mean_drop_v,
    }


def _grid_inputs() -> tuple[float, float, float, float]:
    """(density, sheet resistance, rail width, pitch) at the 35 nm node."""
    from repro.pdn.bacpac import (
        PitchScenario,
        hotspot_current_density_a_m2,
        required_rail_width_m,
    )

    record = ITRS_2000.node(35)
    pitch = units.um(record.min_bump_pitch_um)
    width = required_rail_width_m(35, PitchScenario.MIN_PITCH)
    density = hotspot_current_density_a_m2(record)
    return density, record.top_metal_sheet_resistance, width, pitch


def scaling_s3_grid_million() -> dict[str, float]:
    """The million-unknown mesh: multilevel-preconditioned CG or bust.

    At 1,049,536 unknowns the direct factorization and the dense
    fallback are both off the table (time and memory), so this tier
    exercises exactly the path the solver-scaling acceptance criterion
    names: smoothed-aggregation AMG V-cycle preconditioning with a
    bounded CG iteration count.
    """
    from repro.pdn.grid import solve_power_grid_2d

    density, sheet, width, pitch = _grid_inputs()
    start = time.monotonic()
    solution = solve_power_grid_2d(
        density, sheet, width / HUGE_RAILS_PER_PITCH, pitch,
        rails_per_pitch=HUGE_RAILS_PER_PITCH, cells=HUGE_CELLS)
    elapsed = time.monotonic() - start
    return {
        "n_nodes": float(solution.n_nodes),
        "worst_drop_v": solution.worst_drop_v,
        "mean_drop_v": solution.mean_drop_v,
        "solver_method": solution.solver_method,
        "preconditioner": solution.preconditioner or "",
        "solver_iterations": float(solution.solver_iterations),
        "solve_wall_s": elapsed,
    }


def scaling_s4_reuse_sweep() -> dict[str, float]:
    """Ten same-sparsity solves; nine must reuse the multilevel setup.

    A sheet-resistance sweep rescales every matrix entry uniformly
    while the sparsity fingerprint stays fixed, so after the first
    (cold) point the preconditioner cache serves the hierarchy back
    and each warm point pays iteration cost only.  ``reuse_speedup``
    is cold wall-clock over mean warm wall-clock -- the quantity the
    acceptance criterion bounds at >= 2x.
    """
    from repro.pdn.grid import solve_power_grid_2d
    from repro.reliability.precond import PRECONDITIONER_CACHE

    density, sheet, width, pitch = _grid_inputs()
    PRECONDITIONER_CACHE.clear()  # deterministic cold start
    times = []
    reused = 0
    worst = 0.0
    for point in range(SWEEP_POINTS):
        start = time.monotonic()
        solution = solve_power_grid_2d(
            density, sheet * (1.0 + 0.1 * point),
            width / SWEEP_RAILS_PER_PITCH, pitch,
            rails_per_pitch=SWEEP_RAILS_PER_PITCH, cells=SWEEP_CELLS)
        times.append(time.monotonic() - start)
        reused += int(solution.setup_reused)
        worst = max(worst, solution.worst_drop_v)
    cold = times[0]
    warm_mean = sum(times[1:]) / max(1, len(times) - 1)
    return {
        "n_nodes": float(solution.n_nodes),
        "points": float(SWEEP_POINTS),
        "reused_points": float(reused),
        "cold_solve_s": cold,
        "warm_solve_s_mean": warm_mean,
        "reuse_speedup": cold / max(warm_mean, 1e-12),
        "worst_drop_v": worst,
    }


def scaling_s2_sta() -> dict[str, float]:
    """Full STA over a 4000-gate synthetic netlist."""
    from repro.netlist import compute_sta, random_netlist

    netlist = random_netlist(100, n_gates=SCALE_N_GATES,
                             seed=SCALE_SEED)
    report = compute_sta(netlist)
    return {
        "n_gates": float(len(netlist)),
        "critical_delay_s": report.critical_delay_s,
        "worst_slack_s": report.worst_slack_s,
        "meets_timing": report.meets_timing(),
    }
