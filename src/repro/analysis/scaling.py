"""Solver-scaling experiments (perf artifacts, not paper figures).

The validation models only earn their keep when they are fast enough to
run at scale (cf. Rossello et al., PAPERS.md): the Fig. 5 power-grid
cross-check and the optimization flows both sit on the sparse-solver
and STA hot paths.  These two experiments pin the *large* end of those
paths so ``repro bench`` snapshots capture their end-to-end cost and
the CI delta table surfaces assembly-path regressions.

* ``E-S1`` -- one large 2-D power-mesh solve: the full ``cells = 8``,
  ``rails_per_pitch = 8`` bump patch at the 35 nm node (4144 unknowns),
  the mesh the solver-scaling acceptance criterion is measured on.
* ``E-S2`` -- STA over a 4000-gate synthetic netlist, the inner loop
  the optimization flows (CVS, dual-Vth, sizing) iterate.
"""

from __future__ import annotations

from repro import units
from repro.itrs import ITRS_2000

#: The scaling mesh: 8 bump periods per side, 8 rails per pitch.
SCALE_CELLS = 8
SCALE_RAILS_PER_PITCH = 8

#: The scaling netlist: 4000 gates, fixed seed for reproducibility.
SCALE_N_GATES = 4000
SCALE_SEED = 7


def scaling_s1_grid() -> dict[str, float]:
    """One large-mesh power-grid solve at the 35 nm node."""
    from repro.pdn.bacpac import (
        PitchScenario,
        hotspot_current_density_a_m2,
        required_rail_width_m,
    )
    from repro.pdn.grid import solve_power_grid_2d

    record = ITRS_2000.node(35)
    pitch = units.um(record.min_bump_pitch_um)
    width = required_rail_width_m(35, PitchScenario.MIN_PITCH)
    density = hotspot_current_density_a_m2(record)
    solution = solve_power_grid_2d(
        density, record.top_metal_sheet_resistance,
        width / SCALE_RAILS_PER_PITCH, pitch,
        rails_per_pitch=SCALE_RAILS_PER_PITCH, cells=SCALE_CELLS)
    return {
        "n_nodes": float(solution.n_nodes),
        "worst_drop_v": solution.worst_drop_v,
        "mean_drop_v": solution.mean_drop_v,
        "drop_ratio": solution.worst_drop_v / solution.mean_drop_v,
    }


def scaling_s2_sta() -> dict[str, float]:
    """Full STA over a 4000-gate synthetic netlist."""
    from repro.netlist import compute_sta, random_netlist

    netlist = random_netlist(100, n_gates=SCALE_N_GATES,
                             seed=SCALE_SEED)
    report = compute_sta(netlist)
    return {
        "n_gates": float(len(netlist)),
        "critical_delay_s": report.critical_delay_s,
        "worst_slack_s": report.worst_slack_s,
        "meets_timing": report.meets_timing(),
    }
