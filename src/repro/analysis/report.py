"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i])
                  for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_dict_rows(rows: Sequence[dict[str, Any]]) -> str:
    """Render a list of homogeneous dictionaries as a table."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0])
    return render_table(headers,
                        [[row.get(key) for key in headers]
                         for row in rows])
