"""E-ET1..E-ET4: closed-loop electrothermal co-simulation experiments.

The E-ET family exercises :mod:`repro.cosim` -- the concurrent
power / supply / temperature / leakage feedback loop -- and anchors the
transient solver against the paper's closed-form di/dt answers:

* **E-ET1** -- the standby wake-up ramp, simulated with the RLC supply
  loop and compared to ``L_eff * di/dt`` (Section 4); the acceptance
  band is 5 % agreement at fine steps.
* **E-ET2** -- the DTM-managed power virus on a package sized for the
  75 % effective worst case, co-simulated with droop-derated frequency
  and temperature-dependent leakage: bounded throughput loss, no
  thermal violation, no voltage emergencies.
* **E-ET3** -- thermal runaway on an under-sized package: unmanaged the
  leakage loop diverges, with DTM it settles at a bounded fixed point.
* **E-ET4** -- voltage-emergency sensitivity: peak step droop tracks
  ``dI * Z0`` and halves for every 4x of on-die decap.
"""

from __future__ import annotations


def electrothermal_et1_wakeup() -> dict[str, float]:
    """E-ET1: simulated wake-up droop vs the analytic L di/dt answer."""
    from repro.cosim.scenarios import wakeup_droop

    out: dict[str, float] = {}
    for node_nm in (100, 50):
        for use_min_pitch in (False, True):
            label = f"{node_nm}nm_{'min' if use_min_pitch else 'itrs'}"
            result = wakeup_droop(node_nm, use_min_pitch)
            out[f"{label}_analytic_droop_v"] = \
                result["analytic_droop_v"]
            out[f"{label}_simulated_kick_v"] = \
                result["simulated_kick_v"]
            out[f"{label}_rel_error"] = result["rel_error"]
    out["max_abs_rel_error"] = max(
        abs(value) for key, value in out.items()
        if key.endswith("rel_error"))
    out["within_5pct"] = float(out["max_abs_rel_error"] <= 0.05)
    return out


def electrothermal_et2_dtm_virus() -> dict[str, float]:
    """E-ET2: DTM-managed virus co-simulation on a DTM-sized package."""
    from repro.cosim.scenarios import dtm_policy_comparison

    result = dtm_policy_comparison(100)
    managed_keys = [key for key in result
                    if key.startswith("throttle_")
                    and key.endswith("_violation")]
    result["any_managed_violation"] = float(
        any(result[key] for key in managed_keys))
    result["min_throughput_fraction"] = min(
        value for key, value in result.items()
        if key.endswith("_throughput_fraction"))
    return result


def electrothermal_et3_runaway() -> dict[str, float]:
    """E-ET3: leakage-feedback runaway, unmanaged vs DTM."""
    from repro.cosim.scenarios import thermal_runaway

    result = thermal_runaway()
    result["dtm_bounded"] = float(not result["dtm_runaway"])
    return result


def electrothermal_et4_emergency() -> dict[str, float]:
    """E-ET4: step-droop vs decap sizing, against the Z0 closed form."""
    from repro.cosim.scenarios import voltage_emergency

    result = voltage_emergency(100)
    result["max_abs_rel_error"] = max(
        abs(value) for key, value in result.items()
        if key.endswith("_rel_error"))
    result["within_5pct"] = float(result["max_abs_rel_error"] <= 0.05)
    return result
