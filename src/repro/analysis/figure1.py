"""E-F1: reproduce Fig. 1 (Pstatic/Pdynamic vs switching activity)."""

from __future__ import annotations

from repro.power.ratio import (
    FIG1_VARIANTS,
    static_dynamic_ratio_sweep,
)


def reproduce_figure1() -> dict[str, object]:
    """Return the three Fig. 1 curves as (activity, ratio) series.

    The paper's reading: for activities of 0.01-0.1, static power can
    approach and exceed 10 % of dynamic power at the nanometer nodes.
    """
    points = static_dynamic_ratio_sweep()
    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        key = f"{point.node_nm}nm@{point.vdd_v:g}V"
        series.setdefault(key, []).append((point.activity, point.ratio))

    def ratio_at(key: str, activity: float) -> float:
        curve = series[key]
        return min(curve, key=lambda pair: abs(pair[0] - activity))[1]

    return {
        "series": series,
        "summary": {
            "variants": [f"{n}nm@{v:g}V" for n, v in FIG1_VARIANTS],
            "ratio_50nm_0v6_at_0p1": ratio_at("50nm@0.6V", 0.1),
            "ratio_50nm_0v7_at_0p1": ratio_at("50nm@0.7V", 0.1),
            "ratio_70nm_0v9_at_0p1": ratio_at("70nm@0.9V", 0.1),
        },
    }
