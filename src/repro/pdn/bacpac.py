"""BACPAC-style IR-drop scaling model (Fig. 5 of the paper, ref [41]).

Model, following the paper's setup:

* A **hot-spot** dissipates at four times the uniform power density
  (footnote 7: half the die is memory at ~1/10th logic density, and some
  logic runs at twice the average).
* Top-level Vdd/GND rails run at the bump pitch; each rail collects the
  current of a pitch-wide swath of the hot-spot.  Between two bump
  connections the worst (mid-span) distributed IR drop of a rail with
  sheet resistance Rsq and width W is ``j * Rsq * p^2 / (8 W)`` for a
  linear current density j [A/m].
* Both rails of the Vdd/GND loop see the drop, so each gets half of the
  10 % budget, and a current-crowding/via allowance multiplies the
  required width (calibration constant below).

Two scenarios per node: the **minimum achievable** bump pitch, and the
**effective pitch implied by ITRS pad counts** (~350 um throughout the
roadmap), which is what makes the required width explode at the end of
the roadmap -- the paper's headline Fig. 5 observation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import units
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000, TechnologyNode

#: Hot-spot power density over the uniform density (footnote 7).
HOTSPOT_FACTOR = 4.0

#: Allowed supply droop as a fraction of Vdd.
IR_DROP_BUDGET = 0.10

#: Fraction of the IR budget allocated to each rail of the Vdd/GND loop.
_PER_RAIL_BUDGET = 0.5

#: Current crowding / via-stack allowance on the required width.
CROWDING_FACTOR = 1.7

#: Top-level routing fraction consumed by bump landing pads (the paper's
#: constant 16 %).
LANDING_PAD_FRACTION = 0.16


class PitchScenario(enum.Enum):
    """Which bump pitch assumption Fig. 5 uses."""

    MIN_PITCH = "min_pitch"
    ITRS_PADS = "itrs_pads"


def _pitch_m(record: TechnologyNode, scenario: PitchScenario) -> float:
    if scenario is PitchScenario.MIN_PITCH:
        return units.um(record.min_bump_pitch_um)
    return units.um(record.itrs_bump_pitch_um)


def hotspot_current_density_a_m2(record: TechnologyNode) -> float:
    """Hot-spot supply-current density [A/m^2]."""
    uniform = record.chip_power_w / (record.die_area_m2 * record.vdd_v)
    return HOTSPOT_FACTOR * uniform


def required_rail_width_m(node_nm: int, scenario: PitchScenario,
                          ir_budget: float = IR_DROP_BUDGET) -> float:
    """Rail width keeping hot-spot droop within the budget [m]."""
    if not 0.0 < ir_budget < 1.0:
        raise ModelParameterError("IR budget must lie in (0, 1)")
    record = ITRS_2000.node(node_nm)
    pitch = _pitch_m(record, scenario)
    current_per_m = hotspot_current_density_a_m2(record) * pitch
    allowed_drop_v = _PER_RAIL_BUDGET * ir_budget * record.vdd_v
    sheet_r = record.top_metal_sheet_resistance
    return (CROWDING_FACTOR * current_per_m * sheet_r * pitch ** 2
            / (8.0 * allowed_drop_v))


def routing_resource_fraction(node_nm: int, scenario: PitchScenario,
                              ir_budget: float = IR_DROP_BUDGET) -> float:
    """Fraction of top-level routing consumed by power delivery.

    Two rails (Vdd and GND) per pitch plus the constant landing-pad
    share.  Values above 1.0 mean the grid physically cannot be routed.
    """
    record = ITRS_2000.node(node_nm)
    pitch = _pitch_m(record, scenario)
    width = required_rail_width_m(node_nm, scenario, ir_budget)
    return 2.0 * width / pitch + LANDING_PAD_FRACTION


@dataclass(frozen=True)
class Fig5Point:
    """One node's Fig. 5 data for one pitch scenario."""

    node_nm: int
    scenario: PitchScenario
    bump_pitch_um: float
    rail_width_um: float
    #: Rail width normalised to the node's minimum top-metal width
    #: (Fig. 5's left axis).
    width_over_min: float
    #: Top-level routing fraction used (Fig. 5's right axis).
    routing_fraction: float


def fig5_point(node_nm: int, scenario: PitchScenario) -> Fig5Point:
    """Evaluate Fig. 5 at one node/scenario."""
    record = ITRS_2000.node(node_nm)
    width = required_rail_width_m(node_nm, scenario)
    return Fig5Point(
        node_nm=node_nm,
        scenario=scenario,
        bump_pitch_um=units.to_um(_pitch_m(record, scenario)),
        rail_width_um=units.to_um(width),
        width_over_min=width / units.um(record.top_metal_min_width_um),
        routing_fraction=routing_resource_fraction(node_nm, scenario),
    )


def fig5_sweep(scenario: PitchScenario) -> list[Fig5Point]:
    """Fig. 5 across the whole roadmap for one scenario."""
    return [fig5_point(node_nm, scenario)
            for node_nm in ITRS_2000.node_sizes]
