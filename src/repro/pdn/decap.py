"""On-die decoupling-capacitance sizing (Section 4's transient story).

Between the instant a current step hits and the time the package loop
responds, on-die decap is the only charge source.  Keeping the droop
within a budget requires the supply's characteristic impedance
``Z0 = sqrt(L_eff / C_decap)`` to stay below ``dV / dI``::

    C_required = L_eff * (dI / dV)^2

This module sizes that capacitance, translates it into die-area cost
through the thin-oxide decap density, and evaluates roadmap scenarios
(wake-up step, bump-count choice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000
from repro.pdn.bumps import min_pitch_bump_count, VDD_PAD_FRACTION
from repro.pdn.transients import DECAP_PER_M2, supply_inductance_h


def required_decap_f(current_step_a: float, droop_budget_v: float,
                     inductance_h: float) -> float:
    """Decap needed to hold a current step within a droop budget [F]."""
    if current_step_a < 0:
        raise ModelParameterError("current step cannot be negative")
    if droop_budget_v <= 0:
        raise ModelParameterError("droop budget must be positive")
    if inductance_h <= 0:
        raise ModelParameterError("inductance must be positive")
    return inductance_h * (current_step_a / droop_budget_v) ** 2


def decap_area_m2(capacitance_f: float) -> float:
    """Die area consumed by thin-oxide decap fill [m^2]."""
    if capacitance_f < 0:
        raise ModelParameterError("capacitance cannot be negative")
    return capacitance_f / DECAP_PER_M2


@dataclass(frozen=True)
class DecapBudget:
    """Decap sizing outcome for one node / bump scenario."""

    node_nm: int
    use_min_pitch: bool
    current_step_a: float
    droop_budget_v: float
    inductance_h: float
    required_f: float
    area_m2: float
    die_area_m2: float

    @property
    def area_fraction(self) -> float:
        """Decap area as a fraction of the die."""
        return self.area_m2 / self.die_area_m2

    @property
    def feasible(self) -> bool:
        """True when the decap fits in a reasonable (<15 %) die share."""
        return self.area_fraction <= 0.15

    @property
    def achieved_impedance_ohm(self) -> float:
        """Z0 of the sized network [ohm]."""
        return math.sqrt(self.inductance_h / self.required_f)


def decap_budget(node_nm: int, use_min_pitch: bool,
                 droop_fraction: float = 0.10,
                 standby_fraction: float = 0.05) -> DecapBudget:
    """Size the wake-up decap for a node under either bump scenario.

    More bumps (the minimum-pitch scenario) lower the loop inductance
    and thereby quadratically shrink the decap requirement -- the same
    lever the paper recommends for di/dt control.
    """
    if not 0.0 < droop_fraction < 1.0:
        raise ModelParameterError("droop fraction must lie in (0, 1)")
    record = ITRS_2000.node(node_nm)
    if use_min_pitch:
        n_bumps = round(min_pitch_bump_count(node_nm) * VDD_PAD_FRACTION)
    else:
        n_bumps = round(record.itrs_total_pads * VDD_PAD_FRACTION)
    inductance = supply_inductance_h(n_bumps)
    step = record.supply_current_a * (1.0 - standby_fraction)
    budget_v = droop_fraction * record.vdd_v
    required = required_decap_f(step, budget_v, inductance)
    return DecapBudget(
        node_nm=node_nm,
        use_min_pitch=use_min_pitch,
        current_step_a=step,
        droop_budget_v=budget_v,
        inductance_h=inductance,
        required_f=required,
        area_m2=decap_area_m2(required),
        die_area_m2=record.die_area_m2,
    )
