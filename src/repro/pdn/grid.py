"""Sparse resistive grid solver -- independent validation of the
analytic BACPAC model (experiment E-V1).

Two solvers:

* :func:`solve_rail_strip` -- a single rail between two bump
  connections, discretised into N resistive segments with the collected
  current injected uniformly.  Its mid-span drop converges to the
  analytic ``j Rsq p^2 / (8 W)`` distributed result, validating the
  formula at the heart of Fig. 5.
* :func:`solve_power_grid_2d` -- a full two-dimensional mesh of one
  bump period with rails in both directions, solved with
  ``scipy.sparse``.  In the realistic mesh only every
  ``rails_per_pitch``-th rail passes through a bump, so current from
  the other rails detours through the orthogonal direction and the
  worst-case drop lands *above* the idealised 1-D figure -- inside the
  allowance the calibrated ``CROWDING_FACTOR`` provides, which the
  validation asserts.

Assembly is fully vectorized: both Laplacians are built from NumPy
index arrays straight into COO/CSR form (no per-node Python loop, no
``lil_matrix``), so system construction scales with hardware memory
bandwidth rather than interpreter overhead.  Entry values are
identical to the historical per-node assembly -- degree terms are the
same correctly-rounded ``k * conductance`` products -- so drops match
the original implementation to within solver round-off (well inside
1e-9).  The systems are symmetric positive definite, which the guarded
solve exploits through its preconditioned conjugate-gradient path
(``spd=True``; see :func:`repro.reliability.guard.guarded_linear_solve`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix

from repro import units
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000
from repro.obs import COUNT_BUCKETS, add_counter, observe, span
from repro.pdn.bacpac import (
    PitchScenario,
    hotspot_current_density_a_m2,
    required_rail_width_m,
)
from repro.reliability.guard import guarded_linear_solve


def _strip_laplacian(n_interior: int, conductance: float) -> csr_matrix:
    """Tridiagonal chain Laplacian (both ends Dirichlet), vectorized.

    Diagonal ``2 g`` at every interior node, ``-g`` on both
    off-diagonals -- the same entries the per-node assembly produced.
    """
    diag = np.arange(n_interior)
    off = np.arange(n_interior - 1)
    rows = np.concatenate((diag, off + 1, off))
    cols = np.concatenate((diag, off, off + 1))
    data = np.concatenate((
        np.full(n_interior, 2.0 * conductance),
        np.full(n_interior - 1, -conductance),
        np.full(n_interior - 1, -conductance),
    ))
    return csr_matrix((data, (rows, cols)),
                      shape=(n_interior, n_interior))


def _solve_strip_drops(current_per_m: float, sheet_resistance: float,
                       width_m: float, span_m: float, n_segments: int,
                       *, solver: str, name: str,
                       preconditioner: str | None = None):
    """Drop profile of one uniformly loaded rail between two bumps.

    Returns the full :class:`~repro.reliability.guard.GuardedSolution`
    so callers can surface the solver diagnostics.
    """
    seg_len = span_m / n_segments
    seg_res = sheet_resistance * seg_len / width_m
    # Interior nodes 1..n-1; ends grounded (at the supply).
    n_interior = n_segments - 1
    conductance = 1.0 / seg_res
    with span("pdn.assemble", solver=solver, nodes=n_interior):
        matrix = _strip_laplacian(n_interior, conductance)
        rhs = np.full(n_interior, current_per_m * seg_len)
    add_counter("pdn.unknowns", n_interior)
    observe("pdn.system_unknowns", n_interior, COUNT_BUCKETS,
            solver=solver)
    return guarded_linear_solve(matrix, rhs, name=name, spd=True,
                                preconditioner=preconditioner)


def solve_rail_strip(current_per_m: float, sheet_resistance: float,
                     width_m: float, span_m: float,
                     n_segments: int = 200) -> float:
    """Worst (mid-span) drop of one rail between two bumps [V].

    Both ends are held at the supply; ``current_per_m`` [A/m] is drawn
    uniformly along the span.
    """
    if min(current_per_m, sheet_resistance, width_m, span_m) <= 0:
        raise ModelParameterError("strip parameters must be positive")
    if n_segments < 2:
        raise ModelParameterError("need at least two segments")
    drops = _solve_strip_drops(current_per_m, sheet_resistance, width_m,
                               span_m, n_segments, solver="rail-strip",
                               name="pdn-rail-strip").x
    return float(np.max(drops))


@dataclass(frozen=True)
class GridSolution:
    """Result of the 2-D mesh solve (plus solver diagnostics)."""

    worst_drop_v: float
    mean_drop_v: float
    n_nodes: int
    #: How the linear system was solved ("cg" / "spsolve").
    solver_method: str = ""
    solver_iterations: int = 0
    #: Preconditioner applied on the CG path, ``None`` otherwise.
    preconditioner: str | None = None
    #: True when the multilevel setup came from the reuse cache --
    #: the signal that a sweep is amortizing setup as intended.
    setup_reused: bool = False


def _mesh_laplacian(n_side: int, rails_per_pitch: int,
                    conductance: float) -> tuple[csr_matrix, int]:
    """Vectorized 2-D mesh Laplacian with bump nodes eliminated.

    Node ``(ix, iy)`` is a Dirichlet bump when both coordinates are
    multiples of ``rails_per_pitch``; every other node is an unknown,
    numbered in row-major ``(ix, iy)`` order -- the same ordering the
    historical dict-based assembly produced.  The diagonal counts every
    in-bounds neighbour (patch boundaries are symmetry planes), and
    off-diagonal couplings are emitted only between unknown pairs: a
    bump neighbour contributes its diagonal term and nothing else.
    """
    coords = np.arange(n_side)
    ix = coords[:, None].repeat(n_side, axis=1)
    iy = coords[None, :].repeat(n_side, axis=0)
    unknown = ~((ix % rails_per_pitch == 0)
                & (iy % rails_per_pitch == 0))
    n_unknown = int(np.count_nonzero(unknown))
    row_of = np.full((n_side, n_side), -1, dtype=np.int64)
    row_of[unknown] = np.arange(n_unknown)

    # Diagonal: conductance per in-bounds neighbour (2..4 of them).
    degree = ((ix > 0).astype(float) + (ix < n_side - 1)
              + (iy > 0) + (iy < n_side - 1))
    rows = [np.arange(n_unknown)]
    cols = [np.arange(n_unknown)]
    data = [conductance * degree[unknown]]

    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        jx, jy = ix + dx, iy + dy
        in_bounds = unknown & (jx >= 0) & (jx < n_side) \
            & (jy >= 0) & (jy < n_side)
        neighbour = np.full((n_side, n_side), -1, dtype=np.int64)
        neighbour[in_bounds] = row_of[jx[in_bounds], jy[in_bounds]]
        coupled = neighbour >= 0
        rows.append(row_of[coupled])
        cols.append(neighbour[coupled])
        data.append(np.full(int(np.count_nonzero(coupled)),
                            -conductance))

    matrix = csr_matrix(
        (np.concatenate(data),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_unknown, n_unknown))
    return matrix, n_unknown


def solve_power_grid_2d(current_density_a_m2: float,
                        sheet_resistance: float, width_m: float,
                        bump_pitch_m: float, rails_per_pitch: int = 4,
                        cells: int = 2,
                        preconditioner: str | None = None
                        ) -> GridSolution:
    """Solve a 2-D power mesh patch with bumps on a regular grid.

    ``rails_per_pitch`` rails (each ``width_m`` wide) run in each
    direction per bump pitch, each carrying a proportional share of the
    collected current; bumps sit at every pitch intersection and are
    Dirichlet (ideal supply) nodes.  ``cells`` bump periods are modelled
    per side.

    The degenerate ``rails_per_pitch = 1`` mesh has a bump at every
    rail crossing, so the 2-D system decouples into independent rail
    spans with no crowding detour: each span is exactly the uniformly
    loaded 1-D strip of :func:`solve_rail_strip` carrying
    ``current_density * bump_pitch`` per metre, and the solve reduces
    to that chain (the historical assembly produced an empty system
    here and failed).
    """
    if min(current_density_a_m2, sheet_resistance, width_m,
           bump_pitch_m) <= 0:
        raise ModelParameterError("grid parameters must be positive")
    if rails_per_pitch < 1 or cells < 1:
        raise ModelParameterError("rails_per_pitch and cells must be >= 1")

    if rails_per_pitch == 1:
        solution = _solve_strip_drops(
            current_density_a_m2 * bump_pitch_m, sheet_resistance,
            width_m, bump_pitch_m, 200, solver="grid-2d",
            name="pdn-grid-2d", preconditioner=preconditioner)
        drops = solution.x
        return GridSolution(
            worst_drop_v=float(np.max(drops)),
            mean_drop_v=float(np.mean(drops)),
            n_nodes=int(drops.size),
            solver_method=solution.diagnostics.method,
            solver_iterations=solution.diagnostics.iterations,
            preconditioner=solution.diagnostics.preconditioner,
            setup_reused=solution.diagnostics.setup_reused,
        )

    n_side = rails_per_pitch * cells + 1
    node_pitch = bump_pitch_m / rails_per_pitch
    seg_res = sheet_resistance * node_pitch / width_m
    conductance = 1.0 / seg_res
    sink_per_node = current_density_a_m2 * node_pitch ** 2

    with span("pdn.assemble", solver="grid-2d",
              nodes=(n_side * n_side - (cells + 1) ** 2)):
        matrix, n_unknown = _mesh_laplacian(n_side, rails_per_pitch,
                                            conductance)
        rhs = np.full(n_unknown, sink_per_node)
    add_counter("pdn.unknowns", n_unknown)
    observe("pdn.system_unknowns", n_unknown, COUNT_BUCKETS,
            solver="grid-2d")
    solution = guarded_linear_solve(matrix, rhs, name="pdn-grid-2d",
                                    spd=True,
                                    preconditioner=preconditioner)
    drops = solution.x
    return GridSolution(
        worst_drop_v=float(np.max(drops)),
        mean_drop_v=float(np.mean(drops)),
        n_nodes=n_unknown,
        solver_method=solution.diagnostics.method,
        solver_iterations=solution.diagnostics.iterations,
        preconditioner=solution.diagnostics.preconditioner,
        setup_reused=solution.diagnostics.setup_reused,
    )


@dataclass(frozen=True)
class ValidationResult:
    """Analytic-vs-solver comparison at one node."""

    node_nm: int
    analytic_drop_v: float
    strip_drop_v: float
    grid_drop_v: float

    @property
    def strip_error(self) -> float:
        """Relative error of the analytic formula vs the 1-D solver."""
        return abs(self.analytic_drop_v - self.strip_drop_v) \
            / self.analytic_drop_v

    @property
    def grid_margin(self) -> float:
        """2-D mesh drop over the idealised 1-D analytic figure.

        Expected in [1, 3]: above 1 because only every pitch-th rail
        reaches a bump in the realistic mesh, and within the calibrated
        crowding allowance's neighbourhood.
        """
        return self.grid_drop_v / self.analytic_drop_v


def validate_analytic_model(node_nm: int,
                            scenario: PitchScenario =
                            PitchScenario.MIN_PITCH,
                            rails_per_pitch: int = 4) -> ValidationResult:
    """Cross-check the Fig. 5 rail sizing against the grid solvers.

    The rail width produced by :func:`required_rail_width_m` is fed back
    into both solvers.  The 1-D strip must land on the analytic
    distributed-drop formula (validating the p^2/8 result); the 2-D
    mesh -- the same per-direction metal split into ``rails_per_pitch``
    narrower rails, only every pitch-th of which reaches a bump -- runs
    above the idealised figure but inside the calibrated crowding
    allowance's neighbourhood (``grid_margin`` in [1, 3]).
    """
    record = ITRS_2000.node(node_nm)
    pitch = units.um(record.min_bump_pitch_um
                     if scenario is PitchScenario.MIN_PITCH
                     else record.itrs_bump_pitch_um)
    width = required_rail_width_m(node_nm, scenario)
    density = hotspot_current_density_a_m2(record)
    current_per_m = density * pitch
    sheet = record.top_metal_sheet_resistance
    analytic = current_per_m * sheet * pitch ** 2 / (8.0 * width)
    strip = solve_rail_strip(current_per_m, sheet, width, pitch)
    grid = solve_power_grid_2d(density, sheet, width / rails_per_pitch,
                               pitch, rails_per_pitch=rails_per_pitch)
    return ValidationResult(
        node_nm=node_nm,
        analytic_drop_v=analytic,
        strip_drop_v=strip,
        grid_drop_v=grid.worst_drop_v,
    )
