"""Power-distribution network analysis (Section 4, Fig. 5).

A BACPAC-style analytic IR-drop model that sizes top-level power rails
for hot-spot current densities, bump pitch/count budgets against ITRS
pad projections, an independent sparse resistive-grid solver used to
validate the analytic model, di/dt transient models for standby
wake-up and MCML-vs-CMOS comparisons, and a time-stepping RLC
transient simulator of the supply loop that those closed forms anchor.
"""

from repro.pdn.bacpac import (
    HOTSPOT_FACTOR,
    IR_DROP_BUDGET,
    LANDING_PAD_FRACTION,
    Fig5Point,
    fig5_point,
    fig5_sweep,
    required_rail_width_m,
    routing_resource_fraction,
)
from repro.pdn.bumps import (
    BumpBudget,
    bump_budget,
    min_pitch_bump_count,
    vdd_bumps_required,
)
from repro.pdn.grid import (
    solve_rail_strip,
    solve_power_grid_2d,
    validate_analytic_model,
)
from repro.pdn.transients import (
    WakeupTransient,
    wakeup_transient,
    mcml_transient_advantage,
    supply_impedance_ohm,
)
from repro.pdn.decap import (
    DecapBudget,
    decap_area_m2,
    decap_budget,
    required_decap_f,
)
from repro.pdn.transim import (
    CurrentStimulus,
    SupplyLoop,
    TransientResult,
    select_step,
    simulate,
    supply_loop_for_node,
)

__all__ = [
    "HOTSPOT_FACTOR",
    "IR_DROP_BUDGET",
    "LANDING_PAD_FRACTION",
    "Fig5Point",
    "fig5_point",
    "fig5_sweep",
    "required_rail_width_m",
    "routing_resource_fraction",
    "BumpBudget",
    "bump_budget",
    "min_pitch_bump_count",
    "vdd_bumps_required",
    "solve_rail_strip",
    "solve_power_grid_2d",
    "validate_analytic_model",
    "WakeupTransient",
    "wakeup_transient",
    "mcml_transient_advantage",
    "supply_impedance_ohm",
    "DecapBudget",
    "decap_area_m2",
    "decap_budget",
    "required_decap_f",
    "CurrentStimulus",
    "SupplyLoop",
    "TransientResult",
    "select_step",
    "simulate",
    "supply_loop_for_node",
]
