"""Supply-current transients (Section 4's closing discussion).

Two phenomena:

* **Standby wake-up.**  Sleep/standby modes save leakage, but waking
  swings the chip current from the standby level to the full active
  level in microseconds; the resulting L di/dt droop stresses the power
  network.  Every bump contributes its loop inductance in parallel, so
  using the *minimum* bump pitch (many bumps) directly lowers the
  transient -- the paper's recommendation.
* **MCML.**  Current-steering logic draws a near-constant supply
  current, trading static power for drastically smaller di/dt; the
  comparison helper quantifies the peak-current advantage over a CMOS
  datapath of equal throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.mcml import cmos_peak_current_a, mcml_matching_cmos
from repro.devices.params import device_for_node
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000
from repro.pdn.bumps import min_pitch_bump_count, VDD_PAD_FRACTION

#: Loop inductance of a single flip-chip bump + package via [H].
BUMP_INDUCTANCE_H = 1.0e-10

#: On-die decoupling capacitance per unit area [F/m^2] (thin-oxide
#: decap fill, ~10 % of die area at ~10 fF/um^2).
DECAP_PER_M2 = 1.0e-2


def supply_inductance_h(n_power_bumps: int) -> float:
    """Effective supply loop inductance with bumps in parallel [H]."""
    if n_power_bumps < 1:
        raise ModelParameterError("need at least one power bump")
    return BUMP_INDUCTANCE_H / n_power_bumps


def supply_impedance_ohm(n_power_bumps: int, die_area_m2: float) -> float:
    """Characteristic impedance sqrt(L/C) of the supply loop [ohm]."""
    if die_area_m2 <= 0:
        raise ModelParameterError("die area must be positive")
    inductance = supply_inductance_h(n_power_bumps)
    capacitance = DECAP_PER_M2 * die_area_m2
    return math.sqrt(inductance / capacitance)


@dataclass(frozen=True)
class WakeupTransient:
    """Wake-up droop analysis at one node/bump scenario."""

    node_nm: int
    n_power_bumps: int
    current_step_a: float
    wake_time_s: float
    di_dt_a_per_s: float
    droop_v: float
    vdd_v: float

    @property
    def droop_fraction(self) -> float:
        """Droop as a fraction of Vdd."""
        return self.droop_v / self.vdd_v

    @property
    def acceptable(self) -> bool:
        """True when the droop stays within the usual 10 % budget."""
        return self.droop_fraction <= 0.10


def wakeup_transient(node_nm: int, use_min_pitch: bool,
                     standby_fraction: float = 0.05,
                     wake_time_s: float = 1.0e-8) -> WakeupTransient:
    """Evaluate the standby -> active wake-up droop.

    ``use_min_pitch`` selects between the minimum-achievable bump count
    and the ITRS pad-count scenario.  The droop is the inductive kick
    L_eff * di/dt of the parallel bump array -- the component that the
    paper's recommendation (use the minimum bump pitch, i.e. many more
    Vdd/GND bumps in parallel) directly attacks.  On-die decoupling
    (see :func:`supply_impedance_ohm`) further limits the droop but does
    not depend on the bump count, so it is reported separately.
    """
    if not 0.0 <= standby_fraction < 1.0:
        raise ModelParameterError("standby fraction must lie in [0, 1)")
    if wake_time_s <= 0:
        raise ModelParameterError("wake time must be positive")
    record = ITRS_2000.node(node_nm)
    if use_min_pitch:
        n_bumps = round(min_pitch_bump_count(node_nm) * VDD_PAD_FRACTION)
    else:
        n_bumps = round(record.itrs_total_pads * VDD_PAD_FRACTION)
    step = record.supply_current_a * (1.0 - standby_fraction)
    di_dt = step / wake_time_s
    droop = supply_inductance_h(n_bumps) * di_dt
    return WakeupTransient(
        node_nm=node_nm,
        n_power_bumps=n_bumps,
        current_step_a=step,
        wake_time_s=wake_time_s,
        di_dt_a_per_s=di_dt,
        droop_v=droop,
        vdd_v=record.vdd_v,
    )


def mcml_transient_advantage(node_nm: int, load_f: float = 20e-15,
                             cmos_size: float = 4.0) -> float:
    """Peak-supply-current ratio CMOS / MCML for matched-speed gates.

    Values well above 1 quantify the paper's "much smaller current
    transients" claim for current-steering logic.
    """
    device = device_for_node(node_nm)
    cmos, mcml = mcml_matching_cmos(device, load_f, cmos_size=cmos_size)
    return cmos_peak_current_a(cmos) / mcml.peak_supply_current_a()
