"""Bump pitch/count budgets vs ITRS pad projections (Section 4).

The paper's observations, which :func:`bump_budget` quantifies per node:

* the ITRS pad counts correspond to a roughly constant ~350 um effective
  bump pitch even though the *achievable* pitch falls to 80 um at 35 nm;
* at 35 nm the ITRS allots 4416 pads, ~1500 of them Vdd, while the
  worst-case supply current is ~300 A -- 0.2 A per Vdd bump, beyond the
  projected per-bump capability, so more Vdd/GND connections are needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000

#: Fraction of pads assigned to Vdd (and, symmetrically, to GND); the
#: paper's 1500-of-4416 at 35 nm.
VDD_PAD_FRACTION = 0.34


@dataclass(frozen=True)
class BumpBudget:
    """Power-delivery budget of one node under ITRS pad counts."""

    node_nm: int
    total_pads: int
    vdd_pads: int
    supply_current_a: float
    current_per_vdd_bump_a: float
    bump_current_limit_a: float
    effective_pitch_um: float
    min_pitch_um: float

    @property
    def feasible(self) -> bool:
        """True when the per-bump current stays within its limit."""
        return self.current_per_vdd_bump_a <= self.bump_current_limit_a

    @property
    def vdd_bump_shortfall(self) -> int:
        """Additional Vdd bumps needed to respect the per-bump limit."""
        needed = vdd_bumps_required(self.supply_current_a,
                                    self.bump_current_limit_a)
        return max(0, needed - self.vdd_pads)

    @property
    def pitch_headroom(self) -> float:
        """Ratio of ITRS effective pitch to the achievable minimum.

        Values far above 1 are the unexploited packaging capability the
        paper says the roadmap should leverage.
        """
        return self.effective_pitch_um / self.min_pitch_um


def vdd_bumps_required(supply_current_a: float,
                       bump_limit_a: float) -> int:
    """Minimum Vdd bump count for a supply current."""
    if supply_current_a < 0:
        raise ModelParameterError("supply current cannot be negative")
    if bump_limit_a <= 0:
        raise ModelParameterError("bump current limit must be positive")
    return math.ceil(supply_current_a / bump_limit_a)


def min_pitch_bump_count(node_nm: int) -> int:
    """Bumps available over the die at the minimum achievable pitch."""
    record = ITRS_2000.node(node_nm)
    pitch_m = units.um(record.min_bump_pitch_um)
    return int(record.die_area_m2 / pitch_m ** 2)


def bump_budget(node_nm: int) -> BumpBudget:
    """Evaluate the ITRS bump budget for a node."""
    record = ITRS_2000.node(node_nm)
    vdd_pads = round(VDD_PAD_FRACTION * record.itrs_total_pads)
    supply = record.supply_current_a
    return BumpBudget(
        node_nm=node_nm,
        total_pads=record.itrs_total_pads,
        vdd_pads=vdd_pads,
        supply_current_a=supply,
        current_per_vdd_bump_a=supply / vdd_pads,
        bump_current_limit_a=record.bump_current_limit_a,
        effective_pitch_um=record.itrs_bump_pitch_um,
        min_pitch_um=record.min_bump_pitch_um,
    )
