"""Time-stepping RLC transient simulation of the supply loop (Section 4).

:mod:`repro.pdn.transients` prices the di/dt problem with two closed
forms -- the inductive kick ``L_eff * di/dt`` of the parallel bump
array and the characteristic impedance ``Z0 = sqrt(L/C)`` of the
package-inductance / on-die-decap tank.  Both are single numbers; the
actual supply response to a wake-up ramp, a clock-gating burst, or a
power virus is a *waveform*, and the closed forms are its limiting
regimes only.  This module simulates that waveform:

* the **supply loop** is the series RLC the paper describes: package
  loop inductance from the bump array (every bump in parallel), the
  grid's effective series resistance (the static IR-drop budget), and
  the thin-oxide on-die decap with an optional ESR;
* **stimuli** are piecewise-linear load-current waveforms (step, ramp,
  periodic burst, or sampled traces), so every segment has an exact
  state-space solution;
* the default **integrator is segment-exact**: within each linear
  stimulus segment the two-state system ``x' = A x + B u(t)`` is
  propagated with the closed-form matrix exponential (evaluated through
  the trace/determinant formula, robust across under/over/critically
  damped loops) and *sampled vectorized* over the whole segment's time
  grid -- no per-step Python loop, unconditionally stable;
* a discrete **trapezoidal stepper** (A-stable, second order) is kept
  as the reference kernel: step-refinement must converge to the exact
  path, and the before/after bench baselines compare the two;
* the **step selector** keeps the sample grid fine enough to resolve
  the resonance and the fastest stimulus edge, so the recorded peak
  droop is not an undersampling artifact (stability itself is free:
  both integrators are A-stable).

Validation anchors (tested in ``tests/test_pdn_transim.py``): a slow,
well-damped ramp reproduces the ``wakeup_transient`` inductive kick; a
lightly-damped current step droops by ``dI * Z0`` per
``supply_impedance_ohm``; a lossless loop conserves energy.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError, ReproError
from repro.itrs import ITRS_2000
from repro.obs import COUNT_BUCKETS, add_counter, observe, span
from repro.pdn.bumps import VDD_PAD_FRACTION, min_pitch_bump_count
from repro.pdn.transients import DECAP_PER_M2, supply_inductance_h

#: Environment override for the integration method; the CLI and the
#: bench harness use it so pool workers inherit the choice.
TRANSIM_METHOD_ENV = "REPRO_TRANSIM_METHOD"

METHOD_EXACT = "exact"
METHOD_TRAPEZOID = "trapezoid"
METHODS = (METHOD_EXACT, METHOD_TRAPEZOID)

#: Step selector: resolve the resonant period by at least this many
#: samples (so the peak of a droop oscillation is not missed) ...
POINTS_PER_PERIOD = 32

#: ... and the fastest finite stimulus edge by at least this many.
POINTS_PER_EDGE = 8

#: Refusal threshold for a single simulation's sample count.
MAX_STEPS = 2_000_000

#: Default static IR-drop fraction of Vdd at full load; sets the
#: effective series (grid + spreading) resistance of the loop.
DEFAULT_IR_FRACTION = 0.025

#: Droop histogram buckets [V]: 1 mV .. ~0.5 V.
DROOP_BUCKETS = tuple(1e-3 * 2.0 ** k for k in range(10))


@dataclass(frozen=True)
class SupplyLoop:
    """The series-RLC supply loop: package L, grid R, on-die decap C."""

    #: Nominal supply voltage [V].
    vdd_v: float
    #: Effective package loop inductance (bumps in parallel) [H].
    inductance_h: float
    #: Effective series resistance of the grid/package loop [ohm].
    resistance_ohm: float
    #: On-die decoupling capacitance [F].
    decap_f: float
    #: Equivalent series resistance of the decap [ohm].
    esr_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd_v <= 0:
            raise ModelParameterError("vdd must be positive")
        if self.inductance_h <= 0 or self.decap_f <= 0:
            raise ModelParameterError(
                "inductance and decap must be positive")
        if self.resistance_ohm < 0 or self.esr_ohm < 0:
            raise ModelParameterError("resistances cannot be negative")

    @property
    def z0_ohm(self) -> float:
        """Characteristic impedance sqrt(L/C) [ohm]."""
        return math.sqrt(self.inductance_h / self.decap_f)

    @property
    def omega0_rad_s(self) -> float:
        """Angular resonance frequency 1/sqrt(LC) [rad/s]."""
        return 1.0 / math.sqrt(self.inductance_h * self.decap_f)

    @property
    def period_s(self) -> float:
        """Resonant period 2 pi sqrt(LC) [s]."""
        return 2.0 * math.pi / self.omega0_rad_s

    @property
    def damping_ratio(self) -> float:
        """Series damping ratio (R + ESR) / (2 Z0)."""
        return (self.resistance_ohm + self.esr_ohm) / (2.0 * self.z0_ohm)

    @property
    def settle_s(self) -> float:
        """Envelope decay time of the transient (4 time constants) [s].

        The homogeneous response decays as ``exp(-zeta * w0 * t)``; four
        time constants put the residual ringing below 2 %.  An undamped
        loop never settles (returns inf).
        """
        rate = self.damping_ratio * self.omega0_rad_s
        return math.inf if rate == 0 else 4.0 / rate

    def state_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Continuous state-space (A, B) for x = [i_L, v_C], u = [Vdd, i_load]."""
        ind, cap = self.inductance_h, self.decap_f
        r_total = self.resistance_ohm + self.esr_ohm
        a = np.array([[-r_total / ind, -1.0 / ind],
                      [1.0 / cap, 0.0]])
        b = np.array([[1.0 / ind, self.esr_ohm / ind],
                      [0.0, -1.0 / cap]])
        return a, b

    def steady_state(self, i_load_a: float) -> np.ndarray:
        """DC operating point [i_L, v_C] at a constant load current."""
        return np.array([i_load_a,
                         self.vdd_v - self.resistance_ohm * i_load_a])

    def die_voltage(self, i_l: np.ndarray, v_c: np.ndarray,
                    i_load: np.ndarray) -> np.ndarray:
        """Die supply voltage v_C + ESR * (i_L - i_load) [V]."""
        return v_c + self.esr_ohm * (i_l - i_load)


def supply_loop_for_node(node_nm: int, use_min_pitch: bool, *,
                         decap_f: float | None = None,
                         ir_fraction: float = DEFAULT_IR_FRACTION,
                         damping_ratio: float | None = None,
                         esr_ohm: float = 0.0) -> SupplyLoop:
    """Build the supply loop for an ITRS node and bump scenario.

    Inductance comes from the parallel bump array (the same
    :func:`~repro.pdn.transients.supply_inductance_h` the closed forms
    use), capacitance from the thin-oxide decap fill over the die
    (matching :func:`~repro.pdn.transients.supply_impedance_ohm`)
    unless ``decap_f`` overrides it, and the series resistance from the
    static IR-drop budget ``ir_fraction * Vdd / I_supply`` -- unless
    ``damping_ratio`` is given, which pins R = 2 zeta Z0 directly (the
    validation scenarios use this to select a regime).
    """
    if not 0.0 <= ir_fraction < 1.0:
        raise ModelParameterError("ir fraction must lie in [0, 1)")
    record = ITRS_2000.node(node_nm)
    if use_min_pitch:
        n_bumps = round(min_pitch_bump_count(node_nm) * VDD_PAD_FRACTION)
    else:
        n_bumps = round(record.itrs_total_pads * VDD_PAD_FRACTION)
    inductance = supply_inductance_h(n_bumps)
    capacitance = decap_f if decap_f is not None \
        else DECAP_PER_M2 * record.die_area_m2
    if capacitance <= 0:
        raise ModelParameterError("decap must be positive")
    if damping_ratio is not None:
        if damping_ratio < 0:
            raise ModelParameterError("damping ratio cannot be negative")
        resistance = 2.0 * damping_ratio \
            * math.sqrt(inductance / capacitance)
    else:
        resistance = ir_fraction * record.vdd_v / record.supply_current_a
    return SupplyLoop(vdd_v=record.vdd_v, inductance_h=inductance,
                      resistance_ohm=resistance, decap_f=capacitance,
                      esr_ohm=esr_ohm)


@dataclass(frozen=True)
class CurrentStimulus:
    """A piecewise-linear load-current waveform.

    ``times_s`` is non-decreasing and starts at 0; a repeated time is
    an ideal jump.  The current is held constant after the last
    breakpoint.
    """

    times_s: tuple[float, ...]
    currents_a: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.currents_a):
            raise ModelParameterError(
                "times and currents must have the same length")
        if len(self.times_s) < 1:
            raise ModelParameterError("stimulus needs a breakpoint")
        if self.times_s[0] != 0.0:
            raise ModelParameterError("stimulus must start at t = 0")
        if any(t1 < t0 for t0, t1
               in zip(self.times_s, self.times_s[1:])):
            raise ModelParameterError("times must be non-decreasing")
        if min(self.currents_a) < 0:
            raise ModelParameterError("load current cannot be negative")

    @classmethod
    def step(cls, baseline_a: float, level_a: float,
             at_s: float = 0.0) -> "CurrentStimulus":
        """Ideal current step at ``at_s``."""
        if at_s < 0:
            raise ModelParameterError("step time cannot be negative")
        if at_s == 0.0:
            return cls((0.0, 0.0), (baseline_a, level_a))
        return cls((0.0, at_s, at_s), (baseline_a, baseline_a, level_a))

    @classmethod
    def ramp(cls, baseline_a: float, level_a: float,
             start_s: float, rise_s: float) -> "CurrentStimulus":
        """Linear ramp (the wake-up stimulus) starting at ``start_s``."""
        if start_s < 0 or rise_s <= 0:
            raise ModelParameterError(
                "ramp needs start >= 0 and rise > 0")
        if start_s == 0.0:
            return cls((0.0, rise_s), (baseline_a, level_a))
        return cls((0.0, start_s, start_s + rise_s),
                   (baseline_a, baseline_a, level_a))

    @classmethod
    def periodic(cls, low_a: float, high_a: float, period_s: float,
                 n_cycles: int, duty: float = 0.5,
                 edge_fraction: float = 0.05) -> "CurrentStimulus":
        """Trapezoidal burst train (clock gating / periodic activity)."""
        if period_s <= 0 or n_cycles < 1:
            raise ModelParameterError(
                "period must be positive, n_cycles >= 1")
        if not 0.0 < duty < 1.0:
            raise ModelParameterError("duty must lie in (0, 1)")
        if not 0.0 < edge_fraction <= 0.25:
            raise ModelParameterError(
                "edge fraction must lie in (0, 0.25]")
        edge = edge_fraction * period_s * min(duty, 1.0 - duty)
        times: list[float] = [0.0]
        currents: list[float] = [low_a]
        for cycle in range(n_cycles):
            start = cycle * period_s
            high_end = start + duty * period_s
            times += [start + edge, high_end, high_end + edge]
            currents += [high_a, high_a, low_a]
            times.append((cycle + 1) * period_s)
            currents.append(low_a)
        return cls(tuple(times), tuple(currents))

    @classmethod
    def from_samples(cls, dt_s: float,
                     currents_a: tuple[float, ...] | list[float]
                     ) -> "CurrentStimulus":
        """Piecewise-constant stimulus from sampled currents (jumps)."""
        if dt_s <= 0:
            raise ModelParameterError("sample period must be positive")
        if not currents_a:
            raise ModelParameterError("need at least one sample")
        times: list[float] = [0.0]
        currents: list[float] = [float(currents_a[0])]
        for index, value in enumerate(currents_a[1:], start=1):
            edge = index * dt_s
            times += [edge, edge]
            currents += [currents[-1], float(value)]
        return cls(tuple(times), tuple(currents))

    @property
    def last_time_s(self) -> float:
        """Time of the final breakpoint [s]."""
        return self.times_s[-1]

    @property
    def min_edge_s(self) -> float:
        """Shortest finite segment duration (inf if all are jumps)."""
        finite = [t1 - t0 for t0, t1, i0, i1
                  in zip(self.times_s, self.times_s[1:],
                         self.currents_a, self.currents_a[1:])
                  if t1 > t0 and i1 != i0]
        return min(finite) if finite else math.inf

    def current_at(self, t: np.ndarray | float) -> np.ndarray:
        """Load current at time(s) ``t`` [A] (vectorized)."""
        return np.interp(t, self.times_s, self.currents_a)

    def segments(self, duration_s: float
                 ) -> list[tuple[float, float, float, float]]:
        """Linear segments ``(t0, t1, i0, slope)`` covering [0, duration]."""
        if duration_s <= 0:
            raise ModelParameterError("duration must be positive")
        edges = [t for t in self.times_s if 0.0 < t < duration_s]
        bounds = sorted({0.0, *edges, duration_s})
        out = []
        for t0, t1 in zip(bounds, bounds[1:]):
            # sample strictly inside so a jump at t0 takes its post
            # value and a jump at t1 is left to the next segment
            i_start = float(self.current_at(np.nextafter(t0, t1)))
            i_end = float(self.current_at(np.nextafter(t1, t0)))
            slope = (i_end - i_start) / (t1 - t0)
            out.append((t0, t1, i_start, slope))
        return out


@dataclass(frozen=True, eq=False)
class TransientResult:
    """Sampled supply-loop response to one stimulus."""

    loop: SupplyLoop
    time_s: np.ndarray
    #: Die supply voltage per sample [V].
    v_die_v: np.ndarray
    #: Inductor (package) current per sample [A].
    inductor_a: np.ndarray
    #: Load current per sample [A].
    load_a: np.ndarray
    method: str
    dt_s: float

    @property
    def n_steps(self) -> int:
        return len(self.time_s) - 1

    @property
    def droop_v(self) -> np.ndarray:
        """Instantaneous droop Vdd - v_die per sample [V]."""
        return self.loop.vdd_v - self.v_die_v

    @property
    def max_droop_v(self) -> float:
        """Worst droop over the run [V]."""
        return float(np.max(self.droop_v))

    @property
    def max_droop_fraction(self) -> float:
        """Worst droop as a fraction of Vdd."""
        return self.max_droop_v / self.loop.vdd_v

    @property
    def min_v_die_v(self) -> float:
        """Lowest die voltage reached [V]."""
        return float(np.min(self.v_die_v))

    @property
    def inductor_kick_v(self) -> np.ndarray:
        """Inductor voltage L di_L/dt per sample [V].

        Computed algebraically from the loop equation
        ``L di/dt = Vdd - R i_L - v_die`` -- no numerical
        differentiation, so it is exact at every sample.
        """
        return (self.loop.vdd_v
                - self.loop.resistance_ohm * self.inductor_a
                - self.v_die_v)

    @property
    def peak_inductor_kick_v(self) -> float:
        """Largest inductive kick |L di/dt| over the run [V]."""
        return float(np.max(np.abs(self.inductor_kick_v)))

    def energy_balance(self) -> dict[str, float]:
        """Trapezoid-quadrature energy audit over the run [J].

        ``residual = source - load - dissipated - stored_delta``; for a
        lossless loop (R = ESR = 0) the dissipated term is identically
        zero and the residual measures integrator + quadrature error
        only.
        """
        loop = self.loop
        i_l, i_load = self.inductor_a, self.load_a
        v_c = self.v_die_v - loop.esr_ohm * (i_l - i_load)
        stored = (0.5 * loop.inductance_h * i_l ** 2
                  + 0.5 * loop.decap_f * v_c ** 2)
        source = float(np.trapezoid(loop.vdd_v * i_l, self.time_s))
        load = float(np.trapezoid(self.v_die_v * i_load, self.time_s))
        dissipated = float(np.trapezoid(
            loop.resistance_ohm * i_l ** 2
            + loop.esr_ohm * (i_l - i_load) ** 2, self.time_s))
        stored_delta = float(stored[-1] - stored[0])
        return {
            "source_j": source,
            "load_j": load,
            "dissipated_j": dissipated,
            "stored_delta_j": stored_delta,
            "residual_j": source - load - dissipated - stored_delta,
        }


def resolve_method(method: str | None = None) -> str:
    """Integration method: explicit arg beats env beats exact default."""
    if method is None:
        method = os.environ.get(TRANSIM_METHOD_ENV, "").strip().lower() \
            or METHOD_EXACT
    if method not in METHODS:
        raise ReproError(
            f"unknown transim method {method!r}; choose from {METHODS}")
    return method


def select_step(loop: SupplyLoop, stimulus: CurrentStimulus,
                duration_s: float, dt_s: float | None = None) -> float:
    """Pick (or validate) the sample step for one simulation.

    Both integrators are A-stable, so the selector guards *resolution*,
    not blow-up: the grid must sample the resonant period
    :data:`POINTS_PER_PERIOD` times (an undersampled ringing peak reads
    as a smaller droop) and the fastest finite stimulus edge
    :data:`POINTS_PER_EDGE` times.  A requested ``dt_s`` is honoured
    only when it is at least that fine; the total step count is capped
    at :data:`MAX_STEPS`.
    """
    if duration_s <= 0:
        raise ModelParameterError("duration must be positive")
    bound = loop.period_s / POINTS_PER_PERIOD
    if math.isfinite(stimulus.min_edge_s):
        bound = min(bound, stimulus.min_edge_s / POINTS_PER_EDGE)
    bound = min(bound, duration_s / 2.0)
    chosen = bound if dt_s is None else min(dt_s, bound)
    if chosen <= 0:
        raise ModelParameterError("time step must be positive")
    if duration_s / chosen > MAX_STEPS:
        raise ReproError(
            f"transient needs {duration_s / chosen:.0f} steps "
            f"(> {MAX_STEPS}); shorten the window or coarsen dt")
    return chosen


def _propagator(a: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """exp(A tau) for a 2x2 A, vectorized over tau -> (len(tau), 2, 2).

    Uses the trace/determinant closed form
    ``exp(A t) = e^{mu t} (cosh(d t) I + sinh(d t)/d (A - mu I))`` with
    ``mu = tr(A)/2`` and ``d = sqrt(mu^2 - det(A))`` evaluated in
    complex arithmetic, which is uniformly valid for under-, over- and
    critically-damped loops (the ``d -> 0`` limit is handled by a
    series guard).  This is the vectorized kernel of the exact
    integrator: one call samples a whole segment.
    """
    mu = 0.5 * (a[0, 0] + a[1, 1])
    det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
    delta = np.sqrt(complex(mu * mu - det))
    tau = np.asarray(tau, dtype=float)
    scale = np.exp(mu * tau)
    arg = delta * tau
    cosh = np.cosh(arg)
    if abs(delta) * float(np.max(np.abs(tau), initial=0.0)) < 1e-8:
        # sinh(d t)/d -> t (1 + (d t)^2 / 6) as d -> 0
        sinhc = tau * (1.0 + arg * arg / 6.0)
    else:
        sinhc = np.sinh(arg) / delta
    eye = np.eye(2)
    dev = a - mu * eye
    out = (scale * cosh)[:, None, None] * eye \
        + (scale * sinhc)[:, None, None] * dev
    return np.real(out)


def _simulate_exact(loop: SupplyLoop, stimulus: CurrentStimulus,
                    time_s: np.ndarray, x0: np.ndarray) -> np.ndarray:
    """Segment-exact sampling of the state trajectory -> (n, 2)."""
    a, b = loop.state_matrices()
    a_inv = np.linalg.inv(a)
    states = np.empty((len(time_s), 2))
    states[0] = x0
    x = np.array(x0, dtype=float)
    duration = float(time_s[-1])
    for t0, t1, i0, slope in stimulus.segments(duration):
        # x_p(t) = -A^-1 B u(t) - A^-2 B u'   (u linear in t)
        u0 = np.array([loop.vdd_v, i0])
        du = np.array([0.0, slope])
        drift = a_inv @ (a_inv @ (b @ du))

        def particular(t: np.ndarray) -> np.ndarray:
            u_t = u0[None, :] + np.outer(t - t0, du)
            return -(u_t @ (a_inv @ b).T) - drift[None, :]

        first = int(np.searchsorted(time_s, t0, side="right"))
        last = int(np.searchsorted(time_s, t1, side="right"))
        idx = np.arange(first, last)
        homo0 = x - particular(np.array([t0]))[0]
        if len(idx):
            props = _propagator(a, time_s[idx] - t0)
            states[idx] = particular(time_s[idx]) \
                + np.einsum("nij,j->ni", props, homo0)
        # advance the segment-end state exactly
        end_prop = _propagator(a, np.array([t1 - t0]))[0]
        x = particular(np.array([t1]))[0] + end_prop @ homo0
    return states


def _simulate_trapezoid(loop: SupplyLoop, stimulus: CurrentStimulus,
                        time_s: np.ndarray, x0: np.ndarray
                        ) -> np.ndarray:
    """Discrete trapezoidal (Crank-Nicolson) stepping -> (n, 2).

    The A-stable reference kernel: one 2x2 solve folded into two
    constant matrices, then a sequential update per step.  Kept for
    step-refinement convergence checks and as the bench "before"
    kernel the vectorized exact path is measured against.
    """
    a, b = loop.state_matrices()
    dt = float(time_s[1] - time_s[0])
    eye = np.eye(2)
    backward = np.linalg.inv(eye - 0.5 * dt * a)
    m1 = backward @ (eye + 0.5 * dt * a)
    m2 = backward @ (0.5 * dt * b)
    i_load = stimulus.current_at(time_s)
    u = np.column_stack([np.full_like(time_s, loop.vdd_v), i_load])
    states = np.empty((len(time_s), 2))
    states[0] = x0
    x = np.array(x0, dtype=float)
    for k in range(len(time_s) - 1):
        x = m1 @ x + m2 @ (u[k] + u[k + 1])
        states[k + 1] = x
    return states


def simulate(loop: SupplyLoop, stimulus: CurrentStimulus,
             duration_s: float, *, dt_s: float | None = None,
             method: str | None = None,
             x0: np.ndarray | None = None) -> TransientResult:
    """Simulate the supply loop's response to a load-current stimulus.

    ``x0`` is the initial state ``[i_L, v_C]``; by default the loop
    starts settled at the stimulus' initial current.  ``method`` is
    ``exact`` (default) or ``trapezoid``; the
    :data:`TRANSIM_METHOD_ENV` environment variable overrides the
    default.
    """
    method = resolve_method(method)
    dt = select_step(loop, stimulus, duration_s, dt_s)
    n_steps = max(2, int(round(duration_s / dt)))
    time_s = np.linspace(0.0, duration_s, n_steps + 1)
    if x0 is None:
        # settle at the first breakpoint's current (not current_at(0),
        # which would absorb a jump placed at t = 0 into the DC start)
        x0 = loop.steady_state(float(stimulus.currents_a[0]))
    x0 = np.asarray(x0, dtype=float)
    if x0.shape != (2,):
        raise ModelParameterError("x0 must be a 2-vector [i_L, v_C]")
    with span("pdn.transim", method=method, steps=n_steps):
        if method == METHOD_EXACT:
            states = _simulate_exact(loop, stimulus, time_s, x0)
        else:
            states = _simulate_trapezoid(loop, stimulus, time_s, x0)
        i_load = stimulus.current_at(time_s)
        v_die = loop.die_voltage(states[:, 0], states[:, 1], i_load)
        add_counter("transim.runs")
        add_counter("transim.steps", n_steps)
        observe("transim.steps_per_run", n_steps, COUNT_BUCKETS)
        result = TransientResult(
            loop=loop, time_s=time_s, v_die_v=v_die,
            inductor_a=states[:, 0], load_a=np.asarray(i_load),
            method=method, dt_s=float(time_s[1] - time_s[0]))
        observe("transim.max_droop_v", result.max_droop_v,
                DROOP_BUCKETS)
    return result


__all__ = [
    "CurrentStimulus",
    "DEFAULT_IR_FRACTION",
    "DROOP_BUCKETS",
    "MAX_STEPS",
    "METHODS",
    "METHOD_EXACT",
    "METHOD_TRAPEZOID",
    "POINTS_PER_EDGE",
    "POINTS_PER_PERIOD",
    "SupplyLoop",
    "TRANSIM_METHOD_ENV",
    "TransientResult",
    "resolve_method",
    "select_step",
    "simulate",
    "supply_loop_for_node",
]
