"""Multi-layer power-grid stack (Fig. 5's footnote 8, completed).

Fig. 5 sizes only the top-level rails, "assuming that the remainder of
the power grid is under the designer's control whereas the top-level
granularity is technology-limited".  This module models that remainder:
a series stack of grid layers between the bumps and the devices, each
collecting current at its own pitch, plus the via arrays between
layers.  The worst-case device-level droop is the sum of the per-layer
distributed drops and the via drops, and a budget allocator splits the
10 % IR budget across the stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import InfeasibleConstraintError, ModelParameterError
from repro.itrs import ITRS_2000, TechnologyNode
from repro.pdn.bacpac import (
    IR_DROP_BUDGET,
    PitchScenario,
    hotspot_current_density_a_m2,
    required_rail_width_m,
)

#: Resistance of one power via (stacked, farmed) [ohm].
VIA_RESISTANCE_OHM = 1.0

#: Vias per via farm connecting adjacent layers in one grid cell.
VIAS_PER_FARM = 16


@dataclass(frozen=True)
class GridLayer:
    """One layer of the power grid."""

    name: str
    #: Sheet resistance [ohm/square].
    sheet_resistance: float
    #: Power rail width on this layer [m].
    rail_width_m: float
    #: Rail pitch on this layer [m].
    rail_pitch_m: float
    #: Pitch of connections to the layer above [m].
    feed_pitch_m: float

    def __post_init__(self) -> None:
        if min(self.sheet_resistance, self.rail_width_m,
               self.rail_pitch_m, self.feed_pitch_m) <= 0:
            raise ModelParameterError(
                f"grid layer {self.name!r} needs positive parameters"
            )
        if self.feed_pitch_m < self.rail_pitch_m:
            raise ModelParameterError(
                f"layer {self.name!r}: feeds cannot be denser than rails"
            )

    def worst_drop_v(self, current_density_a_m2: float) -> float:
        """Mid-span distributed drop between feed points [V]."""
        if current_density_a_m2 < 0:
            raise ModelParameterError("current density cannot be negative")
        current_per_m = current_density_a_m2 * self.rail_pitch_m
        return (current_per_m * self.sheet_resistance
                * self.feed_pitch_m ** 2 / (8.0 * self.rail_width_m))

    def via_drop_v(self, current_density_a_m2: float) -> float:
        """Drop across the via farm feeding one cell of this layer [V]."""
        cell_current = current_density_a_m2 * self.feed_pitch_m ** 2
        return cell_current * VIA_RESISTANCE_OHM / VIAS_PER_FARM


class GridStack:
    """A bump-to-device stack of grid layers (top layer first)."""

    def __init__(self, node_nm: int, layers: list[GridLayer]):
        if not layers:
            raise ModelParameterError("stack needs at least one layer")
        pitches = [layer.rail_pitch_m for layer in layers]
        if any(a < b for a, b in zip(pitches, pitches[1:])):
            raise ModelParameterError(
                "layers must be ordered coarse (top) to fine (bottom)"
            )
        self.record: TechnologyNode = ITRS_2000.node(node_nm)
        self.layers = list(layers)

    def total_drop_v(self,
                     current_density_a_m2: float | None = None) -> float:
        """Worst-case device-level droop through the whole stack [V]."""
        if current_density_a_m2 is None:
            current_density_a_m2 = hotspot_current_density_a_m2(
                self.record)
        total = 0.0
        for layer in self.layers:
            total += layer.worst_drop_v(current_density_a_m2)
            total += layer.via_drop_v(current_density_a_m2)
        return total

    def drop_fraction(self,
                      current_density_a_m2: float | None = None) -> float:
        """Total droop over Vdd (compare against the 10 % budget)."""
        return self.total_drop_v(current_density_a_m2) \
            / self.record.vdd_v

    def meets_budget(self, budget: float = IR_DROP_BUDGET) -> bool:
        """True when the hot-spot droop stays inside the budget."""
        return self.drop_fraction() <= budget

    def layer_breakdown(self) -> list[tuple[str, float, float]]:
        """(name, rail drop, via drop) per layer at the hot-spot [V]."""
        density = hotspot_current_density_a_m2(self.record)
        return [(layer.name, layer.worst_drop_v(density),
                 layer.via_drop_v(density))
                for layer in self.layers]


def default_grid_stack(node_nm: int,
                       scenario: PitchScenario = PitchScenario.MIN_PITCH,
                       budget: float = IR_DROP_BUDGET) -> GridStack:
    """Build a three-layer stack meeting the budget at a node.

    The top layer uses the Fig. 5 sizing (half the budget); the
    intermediate and M2-class layers are sized by the allocator to
    split the remainder.  Raises
    :class:`InfeasibleConstraintError` when even maximal lower-layer
    widths cannot close the budget.
    """
    record = ITRS_2000.node(node_nm)
    density = hotspot_current_density_a_m2(record)
    pitch = units.um(record.min_bump_pitch_um
                     if scenario is PitchScenario.MIN_PITCH
                     else record.itrs_bump_pitch_um)

    top = GridLayer(
        name="top",
        sheet_resistance=record.top_metal_sheet_resistance,
        rail_width_m=required_rail_width_m(node_nm, scenario, budget),
        rail_pitch_m=pitch,
        feed_pitch_m=pitch,
    )

    # Lower layers: scaled geometry, fed at the pitch of the layer
    # above; widths sized to take 30 % / 10 % of the remaining budget.
    intermediate_width_min = units.um(record.top_metal_min_width_um) / 2
    m2_width_min = units.um(record.top_metal_min_width_um) / 4
    intermediate_sheet = record.top_metal_sheet_resistance * 3.0
    m2_sheet = record.top_metal_sheet_resistance * 8.0
    intermediate_pitch = pitch / 8.0
    m2_pitch = pitch / 32.0

    remaining_v = budget * record.vdd_v \
        - top.worst_drop_v(density) - top.via_drop_v(density)
    if remaining_v <= 0:
        raise InfeasibleConstraintError(
            f"top layer alone exceeds the {budget:.0%} budget at "
            f"{node_nm} nm"
        )

    def size_layer(name, sheet, rail_pitch, feed_pitch, width_min,
                   share):
        probe = GridLayer(name=name, sheet_resistance=sheet,
                          rail_width_m=width_min,
                          rail_pitch_m=rail_pitch,
                          feed_pitch_m=feed_pitch)
        target_v = share * remaining_v - probe.via_drop_v(density)
        if target_v <= 0:
            raise InfeasibleConstraintError(
                f"via drop alone exceeds layer {name!r}'s budget share "
                f"at {node_nm} nm"
            )
        width = probe.worst_drop_v(density) * width_min / target_v \
            if probe.worst_drop_v(density) > target_v else width_min
        return GridLayer(name=name, sheet_resistance=sheet,
                         rail_width_m=max(width, width_min),
                         rail_pitch_m=rail_pitch,
                         feed_pitch_m=feed_pitch)

    intermediate = size_layer("intermediate", intermediate_sheet,
                              intermediate_pitch, pitch,
                              intermediate_width_min, 0.6)
    m2 = size_layer("m2", m2_sheet, m2_pitch, intermediate_pitch,
                    m2_width_min, 0.4)
    return GridStack(node_nm, [top, intermediate, m2])
