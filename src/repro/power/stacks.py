"""Intra-cell stacks, state-dependent leakage and mixed-Vth cells.

Section 3.3's closing idea: "the use of different threshold transistors
in a stacked arrangement can give fairly substantial leakage savings
with minimal delay penalties.  Furthermore, the state dependence of
leakage can be leveraged in cases with stacked multi-Vth's without
additional sleep transistors" (see also ref [38]).

Model: a series stack of N devices conducts the leakage of its weakest
barrier.  With one device off, the stack leaks that device's Ioff; with
two or more off, the internal node settles so that the stack leaks
roughly :data:`STACK_FACTOR` of the single-off value (the classic ~10x
stack effect).  Mixed-Vth stacks leak through whichever series path the
input state leaves on, so placing a single high-Vth device in the stack
caps the worst state at the high-Vth Ioff while only that device's
delay contribution slows the gate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.errors import ModelParameterError

#: Residual leakage fraction when two or more stacked devices are off.
STACK_FACTOR = 0.1


@dataclass(frozen=True)
class StackedDevice:
    """One transistor of a series stack."""

    device: DeviceParams
    width_um: float

    def __post_init__(self) -> None:
        if self.width_um <= 0:
            raise ModelParameterError("width must be positive")

    def ioff_a(self, temperature_k: float = 300.0) -> float:
        """Off current of this device alone [A]."""
        return (MosfetModel(self.device).ioff_na_um(
            temperature_k=temperature_k) * 1e-9 * self.width_um)

    def on_resistance_weight(self) -> float:
        """Relative series-resistance contribution when on (~1/(W*Ion))."""
        ion = MosfetModel(self.device).ion_ua_um()
        return 1.0 / (self.width_um * ion)


class TransistorStack:
    """A series stack of (possibly mixed-Vth) transistors."""

    def __init__(self, devices: list[StackedDevice]):
        if not devices:
            raise ModelParameterError("stack needs at least one device")
        self.devices = list(devices)

    def __len__(self) -> int:
        return len(self.devices)

    def leakage_a(self, off_mask: tuple[bool, ...],
                  temperature_k: float = 300.0) -> float:
        """Stack leakage for a given input state [A].

        ``off_mask[i]`` is True when device i is off.  A fully-on stack
        does not leak (the output node is driven); with off devices the
        stack leaks the *minimum* off current among them (the weakest
        barrier dominates the series path), suppressed by the stack
        factor when several are off.
        """
        if len(off_mask) != len(self.devices):
            raise ModelParameterError(
                f"mask length {len(off_mask)} != stack height "
                f"{len(self.devices)}"
            )
        off_currents = [device.ioff_a(temperature_k)
                        for device, off in zip(self.devices, off_mask)
                        if off]
        if not off_currents:
            return 0.0
        bottleneck = min(off_currents)
        if len(off_currents) >= 2:
            bottleneck *= STACK_FACTOR
        return bottleneck

    def average_leakage_a(self, temperature_k: float = 300.0) -> float:
        """Leakage averaged over equiprobable input states [A]."""
        states = list(itertools.product((False, True),
                                        repeat=len(self.devices)))
        total = sum(self.leakage_a(state, temperature_k)
                    for state in states)
        return total / len(states)

    def worst_state_leakage_a(self,
                              temperature_k: float = 300.0) -> float:
        """Leakage of the worst (leakiest) input state [A]."""
        states = itertools.product((False, True),
                                   repeat=len(self.devices))
        return max(self.leakage_a(state, temperature_k)
                   for state in states)

    def best_standby_state(self, temperature_k: float = 300.0
                           ) -> tuple[bool, ...]:
        """Input state minimising leakage with at least one device off.

        This is ref [38]'s technique: park the logic in its lowest-
        leakage state instead of adding sleep transistors.
        """
        states = [state for state in
                  itertools.product((False, True),
                                    repeat=len(self.devices))
                  if any(state)]
        return min(states,
                   key=lambda state: self.leakage_a(state,
                                                    temperature_k))

    def relative_delay(self) -> float:
        """Series-resistance proxy for the stack's pull delay.

        The sum of per-device 1/(W * Ion) weights; comparing two stacks
        of equal height gives their delay ratio.
        """
        return sum(device.on_resistance_weight()
                   for device in self.devices)


@dataclass(frozen=True)
class MixedVthComparison:
    """All-low-Vth vs one-high-Vth-in-stack comparison (Section 3.3)."""

    all_low: TransistorStack
    mixed: TransistorStack
    temperature_k: float

    @property
    def leakage_saving(self) -> float:
        """Average-leakage reduction of the mixed stack (0..1)."""
        base = self.all_low.average_leakage_a(self.temperature_k)
        return 1.0 - self.mixed.average_leakage_a(self.temperature_k) \
            / base

    @property
    def delay_penalty(self) -> float:
        """Fractional pull-delay increase of the mixed stack."""
        return self.mixed.relative_delay() \
            / self.all_low.relative_delay() - 1.0


def mixed_vth_stack_study(device: DeviceParams, height: int = 2,
                          width_um: float = 1.0,
                          vth_offset_v: float = 0.100,
                          temperature_k: float = 300.0
                          ) -> MixedVthComparison:
    """Compare an all-low-Vth stack against one with a high-Vth foot.

    The high-Vth device sits nearest the rail (the usual placement), so
    every leaking state sees its strong barrier.
    """
    if height < 2:
        raise ModelParameterError("a stack study needs height >= 2")
    low = device.with_vth(device.vth_v - vth_offset_v)
    all_low = TransistorStack(
        [StackedDevice(low, width_um) for _ in range(height)])
    mixed = TransistorStack(
        [StackedDevice(device, width_um)]
        + [StackedDevice(low, width_um) for _ in range(height - 1)])
    return MixedVthComparison(all_low=all_low, mixed=mixed,
                              temperature_k=temperature_k)
