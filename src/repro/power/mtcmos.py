"""MTCMOS sleep-transistor analysis (Section 3.2.1, ref [34]).

Multi-Threshold CMOS gates fast low-Vth logic through a high-Vth sleep
transistor: in standby the high-Vth device limits leakage to its own
(tiny) off current; in active mode the sleep device is a series
resistance that raises the virtual-ground rail and slows the logic.
Up-sizing the sleep transistor buys speed at the cost of area -- the
trade-off the paper lists among the technique's disadvantages, together
with "no leakage reduction in active mode" and sleep-signal routing.

The model follows the standard virtual-rail analysis: the sleep device
operates in its linear region, with on-resistance::

    R_sleep = 1 / (mu Coxe (W/Leff) (Vdd - Vth_high))

the virtual-ground bounce is ``Vx = I_active * R_sleep`` and the logic
slows by approximately ``Vx / (Vdd - Vth_low)`` (lost gate overdrive,
plus the same loss in drain bias).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.errors import InfeasibleConstraintError, ModelParameterError

#: Fraction of the block's devices simultaneously drawing current
#: (switching) at the activity peak -- sets the sleep device's load.
PEAK_CURRENT_FRACTION = 0.10

#: Delay sensitivity to virtual-rail bounce: lost overdrive counts
#: roughly twice (gate drive and source degeneration/body effect).
_BOUNCE_DELAY_FACTOR = 2.0


@dataclass(frozen=True)
class MtcmosDesign:
    """One sized MTCMOS block."""

    #: Low-Vth logic device card.
    logic_device: DeviceParams
    #: High-Vth sleep device card.
    sleep_device: DeviceParams
    #: Total logic transistor width in the block [um].
    logic_width_um: float
    #: Sleep transistor width [um].
    sleep_width_um: float

    def __post_init__(self) -> None:
        if self.logic_width_um <= 0 or self.sleep_width_um <= 0:
            raise ModelParameterError("widths must be positive")
        if self.sleep_device.vth_v <= self.logic_device.vth_v:
            raise ModelParameterError(
                "the sleep transistor must be the high-Vth device"
            )

    # --- active mode -----------------------------------------------------

    @property
    def sleep_resistance_ohm(self) -> float:
        """Linear-region resistance of the on sleep transistor [ohm]."""
        device = self.sleep_device
        mu_si = units.cm2_per_vs(device.mu_eff_cm2)
        coxe = device.gate_stack.coxe
        overdrive = device.vdd_v - device.vth_v
        if overdrive <= 0:
            raise ModelParameterError(
                "sleep device has no overdrive when on"
            )
        width_m = units.um(self.sleep_width_um)
        leff_m = units.nm(device.leff_nm)
        return 1.0 / (mu_si * coxe * (width_m / leff_m) * overdrive)

    @property
    def peak_active_current_a(self) -> float:
        """Peak current the logic block pulls through the sleep device."""
        ion_a_per_um = MosfetModel(self.logic_device).ion_ua_um() * 1e-6
        return (PEAK_CURRENT_FRACTION * self.logic_width_um
                * ion_a_per_um)

    @property
    def virtual_rail_bounce_v(self) -> float:
        """Virtual-ground rise during peak activity [V]."""
        return self.peak_active_current_a * self.sleep_resistance_ohm

    @property
    def delay_penalty(self) -> float:
        """Fractional logic slowdown from the virtual rail (active mode)."""
        overdrive = self.logic_device.vdd_v - self.logic_device.vth_v
        return _BOUNCE_DELAY_FACTOR * self.virtual_rail_bounce_v \
            / overdrive

    @property
    def area_overhead(self) -> float:
        """Sleep-device width over logic width."""
        return self.sleep_width_um / self.logic_width_um

    # --- standby mode ------------------------------------------------------

    def standby_leakage_a(self, temperature_k: float = 300.0) -> float:
        """Block leakage with the sleep device off [A].

        Series composition: the high-Vth sleep device's off current caps
        the stack.
        """
        ioff_a_per_um = MosfetModel(self.sleep_device).ioff_na_um(
            temperature_k=temperature_k) * 1e-9
        return ioff_a_per_um * self.sleep_width_um

    def active_leakage_a(self, temperature_k: float = 300.0) -> float:
        """Block leakage with the sleep device on [A].

        "No leakage reduction in active mode": the low-Vth logic leaks
        at full tilt (half the width off on average).
        """
        ioff_a_per_um = MosfetModel(self.logic_device).ioff_na_um(
            temperature_k=temperature_k) * 1e-9
        return 0.5 * self.logic_width_um * ioff_a_per_um

    def standby_reduction(self, temperature_k: float = 300.0) -> float:
        """Leakage ratio active / standby (the headline MTCMOS win)."""
        return (self.active_leakage_a(temperature_k)
                / self.standby_leakage_a(temperature_k))


def size_sleep_transistor(logic_device: DeviceParams,
                          sleep_device: DeviceParams,
                          logic_width_um: float,
                          max_delay_penalty: float = 0.05
                          ) -> MtcmosDesign:
    """Smallest sleep transistor meeting a delay-penalty budget.

    The penalty is inversely proportional to the sleep width, so the
    minimum width follows in closed form from a unit-width evaluation.
    """
    if max_delay_penalty <= 0:
        raise InfeasibleConstraintError(
            "delay-penalty budget must be positive"
        )
    probe = MtcmosDesign(logic_device=logic_device,
                         sleep_device=sleep_device,
                         logic_width_um=logic_width_um,
                         sleep_width_um=1.0)
    width = probe.delay_penalty / max_delay_penalty
    return MtcmosDesign(logic_device=logic_device,
                        sleep_device=sleep_device,
                        logic_width_um=logic_width_um,
                        sleep_width_um=width)


def penalty_area_tradeoff(logic_device: DeviceParams,
                          sleep_device: DeviceParams,
                          logic_width_um: float,
                          penalties: tuple[float, ...] = (0.02, 0.05,
                                                          0.10, 0.20)
                          ) -> list[MtcmosDesign]:
    """Sweep the delay-penalty budget (the paper's area trade-off)."""
    return [size_sleep_transistor(logic_device, sleep_device,
                                  logic_width_um, penalty)
            for penalty in penalties]
