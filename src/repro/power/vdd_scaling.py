"""Figs. 3 and 4: the multi-Vdd + multi-Vth scalable power approach.

Section 3.3 evaluates a 35 nm gate as its local supply is lowered from
the nominal 0.6 V down to 0.2 V under three threshold policies:

* **CONSTANT**: Vth stays at its nominal value; delay degrades steeply
  (the paper quotes 3.7x at 0.2 V).
* **CONSTANT_PSTATIC**: Vth is lowered just fast enough that
  Pstatic = Vdd * Ioff stays constant.  Because Ioff also shrinks with
  Vdd through DIBL, a substantial Vth reduction is affordable and the
  delay increase at 0.2 V stays modest (paper: < 30 %) while dynamic
  power falls 89 %.
* **CONSERVATIVE**: Vth is lowered only enough to keep Ioff constant, so
  Pstatic falls linearly with Vdd; delay lies between the other two.

Fig. 4 plots the resulting Pdynamic/Pstatic ratio (activity 0.1) and the
paper derives that a 10x dynamic-over-static constraint allows
Vdd ~ 0.44 V, a ~46 % dynamic-power saving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro import units
from repro.circuits.fo4 import Fo4Reference, fo4_reference
from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.devices.params import device_for_node
from repro.errors import InfeasibleConstraintError, ModelParameterError

#: Node analysed by Figs. 3 and 4.
FIG34_NODE_NM = 35

#: Junction temperature for the Fig. 4 power ratio [K] (as in Fig. 1).
FIG4_TEMPERATURE_K = units.celsius_to_kelvin(85.0)

#: Activity factor of Fig. 4.
FIG4_ACTIVITY = 0.1

#: Supply sweep of Figs. 3-4 [V].
DEFAULT_VDD_SWEEP = tuple(np.linspace(0.2, 0.6, 21))


class VthPolicy(enum.Enum):
    """Threshold-scaling policy applied as the local Vdd is lowered."""

    CONSTANT = "constant"
    CONSTANT_PSTATIC = "constant_pstatic"
    CONSERVATIVE = "conservative"


def vth_for_policy(device: DeviceParams, vdd_v: float,
                   policy: VthPolicy) -> float:
    """Threshold voltage at a reduced supply under the given policy.

    All algebra follows from the extended Eq. (4):
    ``Ioff = I0 * 10^(-(Vth - eta (Vdd - Vdd_nom)) / S)``.
    """
    if vdd_v <= 0 or vdd_v > device.vdd_v:
        raise ModelParameterError(
            f"policy supplies must lie in (0, {device.vdd_v}] V, got {vdd_v}"
        )
    if policy is VthPolicy.CONSTANT:
        return device.vth_v
    dibl_shift = device.dibl_v_per_v * (vdd_v - device.vdd_v)
    if policy is VthPolicy.CONSERVATIVE:
        # Keep Ioff constant: the effective threshold must not change, so
        # the nominal Vth absorbs the (negative) DIBL shift.
        return device.vth_v + dibl_shift
    # CONSTANT_PSTATIC: Vdd * Ioff constant, i.e. Ioff may grow by
    # (Vdd_nom / Vdd); on top of that the DIBL reduction of Ioff at the
    # lower drain bias can also be given back as Vth reduction.
    swing_v = MosfetModel(device).subthreshold_swing_mv() * 1e-3
    allowed_ioff_growth = device.vdd_v / vdd_v
    return (device.vth_v + dibl_shift
            - swing_v * np.log10(allowed_ioff_growth))


@dataclass(frozen=True)
class VddScalingPoint:
    """One sample of the Fig. 3 / Fig. 4 sweeps."""

    vdd_v: float
    policy: VthPolicy
    vth_v: float
    #: FO4 delay normalised to the nominal-Vdd, nominal-Vth gate.
    delay_norm: float
    #: Dynamic power normalised to nominal (same f and C): (Vdd/Vnom)^2.
    dynamic_power_norm: float
    #: Static power normalised to nominal.
    static_power_norm: float
    #: Pdynamic / Pstatic at the Fig. 4 operating point.
    dyn_over_static: float


def _stage(node_nm: int) -> Fo4Reference:
    return fo4_reference(node_nm)


def scaling_point(vdd_v: float, policy: VthPolicy,
                  node_nm: int = FIG34_NODE_NM,
                  activity: float = FIG4_ACTIVITY,
                  temperature_k: float = FIG4_TEMPERATURE_K
                  ) -> VddScalingPoint:
    """Evaluate one (Vdd, policy) operating point."""
    device = device_for_node(node_nm)
    stage = _stage(node_nm)
    vth = vth_for_policy(device, vdd_v, policy)

    delay_nom = stage.delay_s()
    delay = stage.delay_s(vdd_v=vdd_v, vth_v=vth)

    static_nom = stage.static_power_w(temperature_k=temperature_k)
    static = stage.static_power_w(vdd_v=vdd_v, vth_v=vth,
                                  temperature_k=temperature_k)

    dynamic = stage.dynamic_power_w(activity, vdd_v=vdd_v)

    return VddScalingPoint(
        vdd_v=vdd_v,
        policy=policy,
        vth_v=vth,
        delay_norm=delay / delay_nom,
        dynamic_power_norm=(vdd_v / device.vdd_v) ** 2,
        static_power_norm=static / static_nom,
        dyn_over_static=dynamic / static,
    )


def vdd_scaling_sweep(policy: VthPolicy,
                      vdds_v: tuple[float, ...] = DEFAULT_VDD_SWEEP,
                      node_nm: int = FIG34_NODE_NM,
                      activity: float = FIG4_ACTIVITY,
                      temperature_k: float = FIG4_TEMPERATURE_K
                      ) -> list[VddScalingPoint]:
    """Compute one Fig. 3 / Fig. 4 curve."""
    return [scaling_point(float(vdd), policy, node_nm, activity,
                          temperature_k)
            for vdd in vdds_v]


def vdd_for_power_ratio(target_ratio: float,
                        policy: VthPolicy = VthPolicy.CONSTANT_PSTATIC,
                        node_nm: int = FIG34_NODE_NM,
                        activity: float = FIG4_ACTIVITY,
                        temperature_k: float = FIG4_TEMPERATURE_K) -> float:
    """Lowest Vdd keeping Pdynamic/Pstatic above ``target_ratio`` [V].

    With the ITRS 10x constraint and the constant-Pstatic policy the
    paper obtains ~0.44 V, a ~46 % dynamic-power saving.
    """
    if target_ratio <= 0:
        raise ModelParameterError("target ratio must be positive")
    device = device_for_node(node_nm)
    vdd_max = device.vdd_v

    def residual(vdd_v: float) -> float:
        point = scaling_point(vdd_v, policy, node_nm, activity,
                              temperature_k)
        return point.dyn_over_static - target_ratio

    if residual(vdd_max) < 0:
        raise InfeasibleConstraintError(
            f"Pdyn/Pstat is below {target_ratio} even at the nominal "
            f"{vdd_max} V supply (activity {activity})"
        )
    low = 0.05 * vdd_max
    if residual(low) > 0:
        return low
    return float(brentq(residual, low, vdd_max, xtol=1e-4))
