"""Substrate (body) biasing for standby Vth control (Section 3.2.1).

Refs [36, 37]: reverse-biasing the body raises Vth in standby,
exponentially cutting leakage, without the series sleep device of
MTCMOS.  The shift follows the classic body-effect relation::

    Vth(Vsb) = Vth0 + gamma (sqrt(2 phi_F + Vsb) - sqrt(2 phi_F))

The paper's caveat -- "body bias is less effective at controlling Vth in
scaled devices" -- enters through the body factor gamma, which shrinks
with oxide thickness (gamma ~ sqrt(2 q eps_si Na) / Coxe and the channel
doping cannot rise fast enough to compensate); we encode a per-node
gamma trajectory consistent with that trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.devices.params import device_for_node
from repro.errors import ModelParameterError, UnknownNodeError
from repro.itrs import ITRS_2000

#: Surface potential 2*phi_F [V].
SURFACE_POTENTIAL_V = 0.85

#: Body factor gamma per node [V^0.5]; shrinks with scaling as the
#: electrical oxide thins faster than channel doping rises.
BODY_FACTOR_BY_NODE: dict[int, float] = {
    180: 0.45,
    130: 0.38,
    100: 0.32,
    70: 0.25,
    50: 0.19,
    35: 0.14,
}


def body_factor(node_nm: int) -> float:
    """Body-effect coefficient gamma for a roadmap node [V^0.5]."""
    try:
        return BODY_FACTOR_BY_NODE[node_nm]
    except KeyError as exc:
        raise UnknownNodeError(
            f"no body factor for {node_nm} nm; available: "
            f"{sorted(BODY_FACTOR_BY_NODE)}"
        ) from exc


def vth_shift_v(node_nm: int, reverse_bias_v: float) -> float:
    """Vth increase from a reverse body bias [V]."""
    if reverse_bias_v < 0:
        raise ModelParameterError(
            "reverse bias is expressed as a non-negative magnitude"
        )
    gamma = body_factor(node_nm)
    return gamma * (math.sqrt(SURFACE_POTENTIAL_V + reverse_bias_v)
                    - math.sqrt(SURFACE_POTENTIAL_V))


@dataclass(frozen=True)
class BodyBiasResult:
    """Standby leakage reduction from a reverse body bias."""

    node_nm: int
    reverse_bias_v: float
    vth_shift_v: float
    leakage_reduction_factor: float


def standby_leakage_reduction(node_nm: int,
                              reverse_bias_v: float = 1.0,
                              temperature_k: float = 300.0
                              ) -> BodyBiasResult:
    """Leakage reduction factor from applying the bias in standby."""
    device: DeviceParams = device_for_node(node_nm)
    ITRS_2000.node(node_nm)  # validate the node label
    shift = vth_shift_v(node_nm, reverse_bias_v)
    model = MosfetModel(device)
    nominal = model.ioff_na_um(temperature_k=temperature_k)
    biased = model.ioff_na_um(vth_v=device.vth_v + shift,
                              temperature_k=temperature_k)
    return BodyBiasResult(
        node_nm=node_nm,
        reverse_bias_v=reverse_bias_v,
        vth_shift_v=shift,
        leakage_reduction_factor=nominal / biased,
    )


def effectiveness_trend(reverse_bias_v: float = 1.0
                        ) -> list[BodyBiasResult]:
    """The paper's scaling caveat, quantified across the roadmap.

    The returned reduction factors fall monotonically toward 35 nm:
    "body bias is less effective at controlling Vth in scaled devices".
    """
    return [standby_leakage_reduction(node_nm, reverse_bias_v)
            for node_nm in ITRS_2000.node_sizes]
