"""Chip- and gate-level power analysis (Sections 2-3 of the paper).

Dynamic (CV^2 f) and static (leakage) power calculators, the
static-to-dynamic ratio study of Fig. 1, and the multi-Vdd + multi-Vth
scaling strategies of Figs. 3 and 4.
"""

from repro.power.dynamic import (
    dynamic_power_w,
    switching_energy_j,
    dynamic_power_scaling,
)
from repro.power.static import (
    chip_static_power_w,
    standby_current_a,
    static_power_reduction_required,
)
from repro.power.ratio import RatioPoint, static_dynamic_ratio_sweep
from repro.power.vdd_scaling import (
    VthPolicy,
    VddScalingPoint,
    vth_for_policy,
    vdd_scaling_sweep,
    vdd_for_power_ratio,
)
from repro.power.mtcmos import (
    MtcmosDesign,
    penalty_area_tradeoff,
    size_sleep_transistor,
)
from repro.power.body_bias import (
    BodyBiasResult,
    body_factor,
    effectiveness_trend,
    standby_leakage_reduction,
    vth_shift_v,
)
from repro.power.stacks import (
    MixedVthComparison,
    StackedDevice,
    TransistorStack,
    mixed_vth_stack_study,
)

__all__ = [
    "dynamic_power_w",
    "switching_energy_j",
    "dynamic_power_scaling",
    "chip_static_power_w",
    "standby_current_a",
    "static_power_reduction_required",
    "RatioPoint",
    "static_dynamic_ratio_sweep",
    "VthPolicy",
    "VddScalingPoint",
    "vth_for_policy",
    "vdd_scaling_sweep",
    "vdd_for_power_ratio",
    "MtcmosDesign",
    "penalty_area_tradeoff",
    "size_sleep_transistor",
    "BodyBiasResult",
    "body_factor",
    "effectiveness_trend",
    "standby_leakage_reduction",
    "vth_shift_v",
    "MixedVthComparison",
    "StackedDevice",
    "TransistorStack",
    "mixed_vth_stack_study",
]
