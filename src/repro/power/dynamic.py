"""Dynamic (switching) power: alpha * f * C * Vdd^2.

Also provides the simple scaling comparisons the paper makes repeatedly:
dynamic power grows as Vdd^2 at fixed frequency, so a 1.2 V device used
where 0.9 V was projected costs (1.2/0.9)^2 - 1 = 78 % extra (Section
3.1), and a 0.7 V fallback at the 50 nm node costs 36 % over 0.6 V.
"""

from __future__ import annotations

from repro.errors import ModelParameterError


def switching_energy_j(capacitance_f: float, vdd_v: float) -> float:
    """Energy drawn from the supply per full charge cycle, C * Vdd^2 [J]."""
    if capacitance_f < 0:
        raise ModelParameterError("capacitance cannot be negative")
    if vdd_v < 0:
        raise ModelParameterError("Vdd cannot be negative")
    return capacitance_f * vdd_v ** 2


def dynamic_power_w(capacitance_f: float, vdd_v: float, frequency_hz: float,
                    activity: float) -> float:
    """Average switching power, alpha * f * C * Vdd^2 [W]."""
    if not 0.0 <= activity <= 1.0:
        raise ModelParameterError(
            f"switching activity must lie in [0, 1], got {activity}"
        )
    if frequency_hz < 0:
        raise ModelParameterError("frequency cannot be negative")
    return activity * frequency_hz * switching_energy_j(capacitance_f, vdd_v)


def dynamic_power_scaling(vdd_from_v: float, vdd_to_v: float) -> float:
    """Fractional dynamic-power change when moving Vdd (same f, C).

    Positive values are increases: ``dynamic_power_scaling(0.9, 1.2)``
    returns ~0.78, the paper's 78 % penalty for the published 1.2 V
    devices of Table 1.
    """
    if vdd_from_v <= 0 or vdd_to_v <= 0:
        raise ModelParameterError("supply voltages must be positive")
    return (vdd_to_v / vdd_from_v) ** 2 - 1.0
