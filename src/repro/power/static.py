"""Chip-level static power (Section 3.1).

The ITRS constrains static power to 10 % of the maximum MPU dissipation;
the paper notes that at 35 nm this still allows a 30 A standby current,
and that without circuit/architecture innovation the projected leakage
reaches kilowatt levels -- a 98 % reduction burden on design techniques.

This module scales per-micron device leakage up to a whole chip using a
total-transistor-width estimate, and quantifies those two headline
numbers.
"""

from __future__ import annotations

from repro.devices.mosfet import MosfetModel
from repro.devices.params import device_for_node
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000

#: Fraction of the maximum chip power the ITRS allows to be static.
ITRS_STATIC_FRACTION = 0.10

#: Total transistor width per unit die area [m of width per m^2 of die].
#: Derived from typical MPU layout density: at 180 nm roughly 20 M
#: transistors of ~10*Leff average width on a 340 mm^2 die; the density
#: scales as 1/node^2 along the roadmap while average width scales with
#: Leff, making width-per-area scale roughly as 1/node.
_WIDTH_DENSITY_180NM_M_PER_M2 = 8.0e4


def total_device_width_m(node_nm: int) -> float:
    """Estimated total (leaking) transistor width on the die [m]."""
    record = ITRS_2000.node(node_nm)
    density = _WIDTH_DENSITY_180NM_M_PER_M2 * (180.0 / node_nm)
    return density * record.die_area_m2


def standby_current_a(node_nm: int, vth_v: float | None = None,
                      temperature_k: float = 300.0,
                      off_fraction: float = 0.5) -> float:
    """Chip standby current from subthreshold leakage [A].

    ``off_fraction`` is the fraction of total width that is off and
    leaking at any time (half, for complementary logic).
    """
    if not 0.0 < off_fraction <= 1.0:
        raise ModelParameterError("off_fraction must lie in (0, 1]")
    device = device_for_node(node_nm)
    model = MosfetModel(device)
    ioff_a_per_m = model.ioff_na_um(vth_v=vth_v,
                                    temperature_k=temperature_k) * 1e-3
    return ioff_a_per_m * total_device_width_m(node_nm) * off_fraction


def chip_static_power_w(node_nm: int, vth_v: float | None = None,
                        temperature_k: float = 300.0) -> float:
    """Chip static power Vdd * Istandby [W]."""
    device = device_for_node(node_nm)
    return device.vdd_v * standby_current_a(node_nm, vth_v, temperature_k)


def itrs_static_budget_w(node_nm: int) -> float:
    """Static power allowed by the ITRS 10 % rule [W]."""
    return ITRS_STATIC_FRACTION * ITRS_2000.node(node_nm).chip_power_w


def itrs_standby_current_budget_a(node_nm: int) -> float:
    """Standby current implied by the 10 % rule [A].

    At 35 nm this is the paper's "30 A of current in standby":
    0.1 * 183 W / 0.6 V = 30.5 A.
    """
    record = ITRS_2000.node(node_nm)
    return itrs_static_budget_w(node_nm) / record.vdd_v


#: Operating junction temperature for chip-level leakage accounting [K]
#: (the 85 C the roadmap requires; leakage is evaluated hot, not at the
#: 300 K used for the Eq.-(4) device comparison).
OPERATING_TEMPERATURE_K = 358.15


def static_power_reduction_required(
        node_nm: int,
        temperature_k: float = OPERATING_TEMPERATURE_K) -> float:
    """Fractional reduction circuit techniques must deliver (0..1).

    The paper quotes 98 % at the end of the roadmap (using the ITRS'
    own Ioff growth); with our calibrated per-node Vth the hot-junction
    requirement lands at 70-90 % for the sub-100 nm nodes -- same
    conclusion, somewhat milder because the 35 nm Vth of 0.11 V leaks
    less than the anomalous 0.04 V point at 50 nm.
    """
    unchecked = chip_static_power_w(node_nm, temperature_k=temperature_k)
    budget = itrs_static_budget_w(node_nm)
    if unchecked <= budget:
        return 0.0
    return 1.0 - budget / unchecked


def unchecked_static_projection_w(node_nm: int,
                                  growth_per_generation: float = 5.0
                                  ) -> float:
    """Static power if Ioff grows unchecked (ref [23]'s projection) [W].

    Ref [23] projects a 5x Ioff rise per generation (the ITRS assumes
    2x).  Compounding that from the 180 nm baseline, together with the
    growing integrated transistor width, "static power would reach
    kilowatt levels, dwarfing dynamic power" by the end of the roadmap
    -- this function reproduces that trajectory.
    """
    if growth_per_generation <= 0:
        raise ModelParameterError("growth per generation must be positive")
    sizes = list(ITRS_2000.node_sizes)
    generation = sizes.index(ITRS_2000.node(node_nm).node_nm)
    baseline = chip_static_power_w(
        180, temperature_k=OPERATING_TEMPERATURE_K)
    width_growth = (total_device_width_m(node_nm)
                    / total_device_width_m(180))
    vdd_ratio = (ITRS_2000.node(node_nm).vdd_v
                 / ITRS_2000.node(180).vdd_v)
    return (baseline * growth_per_generation ** generation
            * width_growth * vdd_ratio)
