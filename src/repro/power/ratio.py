"""Fig. 1: the ratio of static to dynamic power vs switching activity.

"Figure 1 shows the relative importance of static and dynamic power for
an inverter driving a fan-out of 4 with an average interconnect load.
70 nm and 50 nm technologies are explored; results indicate that for
logic with switching activities on the order of 0.01 to 0.1, static power
can approach and exceed 10 % of dynamic power.  Temperature is 85 C."

The three curves are 70 nm at 0.9 V, 50 nm at 0.7 V and 50 nm at 0.6 V.
The 0.7 V variant re-solves Vth for the 750 uA/um Ion target at the
raised supply (the paper's Table 2 parenthetical column).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import units
from repro.circuits.fo4 import fo4_reference
from repro.devices.params import device_for_node
from repro.devices.solver import solve_vth_for_ion
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000

#: Junction temperature of Fig. 1 [K].
FIG1_TEMPERATURE_K = units.celsius_to_kelvin(85.0)

#: Activity-factor grid of Fig. 1 (log-spaced over the plotted range).
DEFAULT_ACTIVITIES = tuple(np.logspace(np.log10(0.01), np.log10(0.5), 24))

#: The (node, Vdd) variants plotted by Fig. 1.
FIG1_VARIANTS: tuple[tuple[int, float], ...] = (
    (70, 0.9),
    (50, 0.7),
    (50, 0.6),
)


@dataclass(frozen=True)
class RatioPoint:
    """One sample of a Fig. 1 curve."""

    node_nm: int
    vdd_v: float
    activity: float
    ratio: float


def device_at_vdd(node_nm: int, vdd_v: float):
    """Model card re-targeted to ``vdd_v`` with Vth re-solved for Ion.

    For the node's nominal supply this returns the calibrated card
    unchanged (up to solver tolerance); for alternatives such as 50 nm at
    0.7 V it reproduces the paper's procedure of re-solving Vth to meet
    750 uA/um.
    """
    device = device_for_node(node_nm)
    if vdd_v <= 0:
        raise ModelParameterError("Vdd must be positive")
    if abs(vdd_v - device.vdd_v) < 1e-12:
        return device
    retargeted = replace(device, vdd_v=vdd_v)
    target = ITRS_2000.node(node_nm).ion_target_ua_um
    vth = solve_vth_for_ion(retargeted, target)
    return retargeted.with_vth(vth)


def static_dynamic_ratio_sweep(
    variants: tuple[tuple[int, float], ...] = FIG1_VARIANTS,
    activities: tuple[float, ...] = DEFAULT_ACTIVITIES,
    temperature_k: float = FIG1_TEMPERATURE_K,
) -> list[RatioPoint]:
    """Compute the Fig. 1 curves.

    Returns one :class:`RatioPoint` per (variant, activity) pair, in
    variant-major order.
    """
    points: list[RatioPoint] = []
    for node_nm, vdd_v in variants:
        device = device_at_vdd(node_nm, vdd_v)
        stage = fo4_reference(node_nm, device=device)
        for activity in activities:
            ratio = stage.static_to_dynamic_ratio(
                activity, temperature_k=temperature_k)
            points.append(RatioPoint(node_nm=node_nm, vdd_v=vdd_v,
                                     activity=float(activity), ratio=ratio))
    return points
