"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  The subclasses distinguish the common failure domains:
bad model parameters, unknown roadmap nodes, infeasible optimization
constraints, and timing violations detected by the STA engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelParameterError(ReproError, ValueError):
    """A physical model was given an out-of-domain or inconsistent parameter."""


class UnknownNodeError(ReproError, KeyError):
    """A technology node was requested that the roadmap does not define."""


class CalibrationError(ReproError, RuntimeError):
    """A calibration / root-finding routine failed to converge."""


class InfeasibleConstraintError(ReproError, ValueError):
    """An optimization was asked to satisfy constraints it cannot meet."""


class TimingViolationError(ReproError, RuntimeError):
    """A transformation produced (or was asked to accept) negative slack."""


class NetlistError(ReproError, ValueError):
    """A netlist is malformed (cycles, dangling references, bad fanout)."""
