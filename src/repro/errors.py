"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  The subclasses distinguish the common failure domains:
bad model parameters, unknown roadmap nodes, failed numerical calibration,
infeasible optimization constraints, timing violations detected by the STA
engine, malformed netlists, and faults injected by the chaos harness.

The full hierarchy::

    ReproError
      ModelParameterError (ValueError)       out-of-domain model input
      UnknownNodeError (KeyError)            node absent from the roadmap
      CalibrationError (RuntimeError)        solver failed; carries diagnostics
      InfeasibleConstraintError (ValueError) unsatisfiable optimization
      TimingViolationError (RuntimeError)    negative slack
      NetlistError (ValueError)              malformed netlist
      InjectedFaultError (RuntimeError)      deliberate fault from a FaultPlan
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelParameterError(ReproError, ValueError):
    """A physical model was given an out-of-domain or inconsistent parameter."""


class UnknownNodeError(ReproError, KeyError):
    """A technology node was requested that the roadmap does not define."""


class CalibrationError(ReproError, RuntimeError):
    """A calibration / root-finding routine failed.

    Beyond the message, instances raised by
    :func:`repro.reliability.guard.guarded_solve` (and the solvers built
    on it) carry structured diagnostics so callers and logs can see *how*
    the solve failed instead of parsing prose:

    ``iterations``
        Total iterations spent across the primary method and any
        fallback (``None`` when the failure predates iterating, e.g. a
        bad bracket).
    ``residual``
        The best residual magnitude observed, ``None`` if never
        evaluated successfully.
    ``fallback``
        Name of the fallback strategy that was attempted (``"bisect"``,
        ``"relaxation"``, ``"dense"``), or ``None`` if the failure was
        raised before/without one.
    ``diagnostics``
        The full :class:`repro.reliability.guard.SolveDiagnostics`
        record when available, else ``None``.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None,
                 fallback: str | None = None,
                 diagnostics: Any = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.fallback = fallback
        self.diagnostics = diagnostics


class InfeasibleConstraintError(ReproError, ValueError):
    """An optimization was asked to satisfy constraints it cannot meet."""


class TimingViolationError(ReproError, RuntimeError):
    """A transformation produced (or was asked to accept) negative slack."""


class NetlistError(ReproError, ValueError):
    """A netlist is malformed (cycles, dangling references, bad fanout)."""


class InjectedFaultError(ReproError, RuntimeError):
    """A deliberate failure injected by a reliability fault plan."""
