"""Parallel, cached, observable experiment execution.

``repro.engine`` turns the experiment registry
(:mod:`repro.analysis.experiments`) into a schedulable workload:

* :class:`ExecutionEngine` / :func:`run_experiments` -- process-pool
  scheduler with per-experiment timeouts, bounded retries, and failure
  isolation (one crashing runner never aborts the sweep);
* :class:`~repro.engine.cache.ResultCache` -- content-addressed
  on-disk cache keyed by experiment id + a source fingerprint of the
  modules the runner transitively imports;
* :class:`~repro.engine.records.RunRecord` /
  :class:`~repro.engine.records.RunJournal` -- per-execution records
  appended to a JSONL journal;
* :class:`~repro.engine.metrics.EngineMetrics` -- aggregate sweep
  summary (outcomes, cache hit rate, parallel speedup).

``python -m repro run-all``, ``scripts/generate_experiments_md.py``
and the benchmark suite all execute through this engine;
:func:`repro.analysis.run_experiment` remains the thin single-shot
path.
"""

from repro.engine.cache import (
    CacheStats,
    ResultCache,
    runner_fingerprint,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.records import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunJournal,
    RunRecord,
)
from repro.engine.scheduler import (
    DEFAULT_CACHE_DIR,
    EngineConfig,
    ExecutionEngine,
    SweepResult,
    default_jobs,
    run_experiments,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "EngineConfig",
    "EngineMetrics",
    "ExecutionEngine",
    "ResultCache",
    "RunJournal",
    "RunRecord",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SweepResult",
    "default_jobs",
    "run_experiments",
    "runner_fingerprint",
]
