"""Parallel, cached, observable experiment execution.

``repro.engine`` turns the experiment registry
(:mod:`repro.analysis.experiments`) into a schedulable workload:

* :class:`ExecutionEngine` / :func:`run_experiments` -- process-pool
  scheduler with per-experiment timeouts, failure isolation (one
  crashing runner never aborts the sweep), and bounded retries spaced
  by exponential backoff with deterministic jitter;
* :class:`~repro.engine.cache.ResultCache` -- content-addressed
  on-disk cache keyed by experiment id + a source fingerprint of the
  modules the runner transitively imports; entries are checksummed and
  written atomically, and corrupt entries are quarantined as misses;
* :class:`~repro.engine.records.RunRecord` /
  :class:`~repro.engine.records.RunJournal` -- per-execution records
  appended (flushed + fsynced) to a JSONL journal whose recovery
  skips torn lines;
* :class:`~repro.engine.metrics.EngineMetrics` -- aggregate sweep
  summary (outcomes, cache hit rate, parallel speedup);
* fault injection -- :attr:`EngineConfig.fault_plan` accepts a
  :class:`~repro.reliability.faults.FaultPlan` so the chaos harness
  (:mod:`repro.reliability.chaos`) can prove every recovery path.

``python -m repro run-all``, ``scripts/generate_experiments_md.py``
and the benchmark suite all execute through this engine;
:func:`repro.analysis.run_experiment` remains the thin single-shot
path.
"""

from repro.engine.cache import (
    CacheStats,
    ClaimInfo,
    DEFAULT_CLAIM_TTL_S,
    ResultCache,
    runner_fingerprint,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.records import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunJournal,
    RunRecord,
)
from repro.engine.scheduler import (
    DEFAULT_CACHE_DIR,
    EngineConfig,
    ExecutionEngine,
    SweepResult,
    default_jobs,
    run_experiments,
)

__all__ = [
    "CacheStats",
    "ClaimInfo",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CLAIM_TTL_S",
    "EngineConfig",
    "EngineMetrics",
    "ExecutionEngine",
    "ResultCache",
    "RunJournal",
    "RunRecord",
    "STATUS_CANCELLED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SweepResult",
    "default_jobs",
    "run_experiments",
    "runner_fingerprint",
]
