"""Aggregate sweep metrics.

:class:`EngineMetrics` folds a sweep's :class:`~repro.engine.records.RunRecord`
list into the counters an operator actually reads after a run: outcome
counts, cache effectiveness, retry pressure, per-phase time totals, and
the parallel speedup (total runner seconds vs sweep wall seconds).

Two aggregation rules worth calling out:

* **retries** are the sum of per-record ``max(0, attempts - 1)``.  The
  tempting shortcut ``attempts - cache_misses`` miscounts as soon as a
  record is both retried *and* a cache hit -- which the engine's
  retry-time cache recheck produces legitimately (a concurrent sweep
  stored the entry between attempts).
* **speedup** is ``None`` (rendered ``n/a``) when the denominator is
  meaningless: a ~zero sweep wall time, a ~zero runner wall time, or a
  fully cached sweep.  Printing ``1.00x`` or a huge ratio there
  reports noise as if it were a measurement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.engine.records import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)


@dataclass(frozen=True)
class EngineMetrics:
    """Summary of one engine sweep."""

    total: int
    ok: int
    failed: int
    timed_out: int
    cancelled: int
    cache_hits: int
    cache_misses: int
    attempts: int
    retries: int
    sweep_wall_s: float
    runner_wall_s: float
    slowest_id: str | None
    slowest_wall_s: float
    phase_totals: dict[str, float] = field(default_factory=dict)

    #: Runner wall times at or below this are treated as "nothing
    #: actually ran" for the speedup ratio.
    MIN_MEASURABLE_S = 1e-6

    @classmethod
    def from_records(cls, records: Sequence[RunRecord],
                     sweep_wall_s: float) -> "EngineMetrics":
        slowest = max(records, key=lambda r: r.wall_time_s, default=None)
        phase_totals: dict[str, float] = {}
        for record in records:
            for name, value in record.phases.items():
                phase_totals[name] = phase_totals.get(name, 0.0) + value
        return cls(
            total=len(records),
            ok=sum(r.status == STATUS_OK for r in records),
            failed=sum(r.status == STATUS_FAILED for r in records),
            timed_out=sum(r.status == STATUS_TIMEOUT for r in records),
            cancelled=sum(r.status == STATUS_CANCELLED
                          for r in records),
            cache_hits=sum(r.cache_hit for r in records),
            cache_misses=sum(not r.cache_hit for r in records),
            attempts=sum(r.attempts for r in records),
            retries=sum(max(0, r.attempts - 1) for r in records),
            sweep_wall_s=sweep_wall_s,
            runner_wall_s=sum(r.wall_time_s for r in records),
            slowest_id=slowest.experiment_id if slowest else None,
            slowest_wall_s=slowest.wall_time_s if slowest else 0.0,
            phase_totals={name: phase_totals[name]
                          for name in sorted(phase_totals)},
        )

    @property
    def all_ok(self) -> bool:
        return (self.failed == 0 and self.timed_out == 0
                and self.cancelled == 0)

    @property
    def fully_cached(self) -> bool:
        return self.total > 0 and self.cache_hits == self.total

    @property
    def speedup(self) -> float | None:
        """Runner seconds per sweep wall second (1.0 = serial).

        ``None`` when the ratio would be meaningless: nothing ran long
        enough to measure, or every record came from the cache.
        """
        if (self.sweep_wall_s <= 0
                or self.runner_wall_s <= self.MIN_MEASURABLE_S
                or self.fully_cached):
            return None
        return self.runner_wall_s / self.sweep_wall_s

    def to_json_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        """Multi-line plain-text summary for the CLI."""
        speedup = self.speedup
        speedup_text = ("n/a" if speedup is None
                        else f"{speedup:.2f}x")
        lines = [
            f"experiments  {self.total} total: {self.ok} ok, "
            f"{self.failed} failed, {self.timed_out} timed out, "
            f"{self.cancelled} cancelled",
            f"cache        {self.cache_hits} hits, "
            f"{self.cache_misses} misses",
            f"attempts     {self.attempts} ({self.retries} retries)",
            f"wall time    {self.sweep_wall_s:.3f} s sweep, "
            f"{self.runner_wall_s:.3f} s in runners "
            f"({speedup_text} parallel speedup)",
        ]
        if self.phase_totals:
            phase_text = ", ".join(
                f"{name} {value:.3f} s"
                for name, value in self.phase_totals.items())
            lines.append(f"phases       {phase_text}")
        if self.slowest_id is not None:
            lines.append(f"slowest      {self.slowest_id} "
                         f"({self.slowest_wall_s:.3f} s)")
        return "\n".join(lines)
