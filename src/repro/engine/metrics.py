"""Aggregate sweep metrics.

:class:`EngineMetrics` folds a sweep's :class:`~repro.engine.records.RunRecord`
list into the counters an operator actually reads after a run: outcome
counts, cache effectiveness, retry pressure, and the parallel speedup
(total runner seconds vs sweep wall seconds).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.engine.records import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)


@dataclass(frozen=True)
class EngineMetrics:
    """Summary of one engine sweep."""

    total: int
    ok: int
    failed: int
    timed_out: int
    cache_hits: int
    cache_misses: int
    attempts: int
    sweep_wall_s: float
    runner_wall_s: float
    slowest_id: str | None
    slowest_wall_s: float

    @classmethod
    def from_records(cls, records: Sequence[RunRecord],
                     sweep_wall_s: float) -> "EngineMetrics":
        slowest = max(records, key=lambda r: r.wall_time_s, default=None)
        return cls(
            total=len(records),
            ok=sum(r.status == STATUS_OK for r in records),
            failed=sum(r.status == STATUS_FAILED for r in records),
            timed_out=sum(r.status == STATUS_TIMEOUT for r in records),
            cache_hits=sum(r.cache_hit for r in records),
            cache_misses=sum(not r.cache_hit for r in records),
            attempts=sum(r.attempts for r in records),
            sweep_wall_s=sweep_wall_s,
            runner_wall_s=sum(r.wall_time_s for r in records),
            slowest_id=slowest.experiment_id if slowest else None,
            slowest_wall_s=slowest.wall_time_s if slowest else 0.0,
        )

    @property
    def all_ok(self) -> bool:
        return self.failed == 0 and self.timed_out == 0

    @property
    def speedup(self) -> float:
        """Runner seconds per sweep wall second (1.0 = serial)."""
        if self.sweep_wall_s <= 0:
            return 1.0
        return self.runner_wall_s / self.sweep_wall_s

    def to_json_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        """Multi-line plain-text summary for the CLI."""
        lines = [
            f"experiments  {self.total} total: {self.ok} ok, "
            f"{self.failed} failed, {self.timed_out} timed out",
            f"cache        {self.cache_hits} hits, "
            f"{self.cache_misses} misses",
            f"attempts     {self.attempts} "
            f"({max(0, self.attempts - self.cache_misses)} retries)",
            f"wall time    {self.sweep_wall_s:.3f} s sweep, "
            f"{self.runner_wall_s:.3f} s in runners "
            f"({self.speedup:.2f}x parallel speedup)",
        ]
        if self.slowest_id is not None:
            lines.append(f"slowest      {self.slowest_id} "
                         f"({self.slowest_wall_s:.3f} s)")
        return "\n".join(lines)
