"""Run records and the JSONL run journal.

Every experiment execution -- cached or live, successful or not --
produces exactly one :class:`RunRecord`.  The record is the engine's
unit of observability: the scheduler appends each one to a JSONL
journal as it completes, and :mod:`repro.engine.metrics` aggregates a
sweep's records into an :class:`~repro.engine.metrics.EngineMetrics`
summary.

Journal schema (one JSON object per line)::

    {"experiment_id": "E-T2", "status": "ok", "wall_time_s": 0.012,
     "cache_hit": false, "attempts": 1, "error": null,
     "started_at": 1754380800.123}

``status`` is one of ``ok`` / ``failed`` / ``timeout``; ``error`` is
the ``repr`` of the exception for failed runs (or a worker-exit /
timeout description) and ``null`` otherwise; ``started_at`` is a unix
timestamp of the first attempt.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT)


@dataclass(frozen=True)
class RunRecord:
    """The immutable outcome of one experiment execution."""

    experiment_id: str
    status: str
    wall_time_s: float
    cache_hit: bool
    attempts: int
    error: str | None = None
    started_at: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_json_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunRecord":
        return cls(
            experiment_id=payload["experiment_id"],
            status=payload["status"],
            wall_time_s=float(payload["wall_time_s"]),
            cache_hit=bool(payload["cache_hit"]),
            attempts=int(payload["attempts"]),
            error=payload.get("error"),
            started_at=float(payload.get("started_at", 0.0)),
        )


class RunJournal:
    """Append-only JSONL journal of :class:`RunRecord` entries.

    The journal survives across sweeps: each engine run appends its
    records, so the file is a complete execution history of the cache
    directory it lives in.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(record.to_json_dict(),
                                    sort_keys=True) + "\n")

    def append_many(self, records: Iterable[RunRecord]) -> None:
        for record in records:
            self.append(record)

    @classmethod
    def read(cls, path: Path | str) -> list[RunRecord]:
        """Parse a journal file back into records (skipping blanks)."""
        records = []
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            if line.strip():
                records.append(RunRecord.from_json_dict(json.loads(line)))
        return records
