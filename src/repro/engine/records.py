"""Run records and the crash-safe JSONL run journal.

Every experiment execution -- cached or live, successful or not --
produces exactly one :class:`RunRecord`.  The record is the engine's
unit of observability: the scheduler appends each one to a JSONL
journal as it completes, and :mod:`repro.engine.metrics` aggregates a
sweep's records into an :class:`~repro.engine.metrics.EngineMetrics`
summary.

Journal schema (one JSON object per line)::

    {"experiment_id": "E-T2", "status": "ok", "wall_time_s": 0.012,
     "cache_hit": false, "attempts": 1, "error": null,
     "started_at": 1754380800.123,
     "phases": {"lookup": 0.001, "run": 0.011}}

``status`` is one of ``ok`` / ``failed`` / ``timeout`` /
``cancelled`` (the task was still pending when a graceful-shutdown
signal drained the sweep); ``error`` is the ``repr`` of the exception
for failed runs (or a worker-exit / timeout / interruption
description) and ``null`` otherwise; ``started_at`` is a unix
timestamp of the first attempt (monotonic-anchored, see
:func:`repro.obs.wall_now`).  ``phases`` maps phase name to seconds
spent in it across all attempts: ``lookup`` / ``run`` / ``store`` are
active work and sum to ``wall_time_s``; ``queue`` / ``retry`` measure
waiting (slot contention and backoff) and are excluded from
``wall_time_s``.

Crash safety: appends are flushed and fsynced (each line lands as one
``write`` on an ``O_APPEND`` descriptor), and recovery tolerates a
torn journal -- :meth:`RunJournal.recover` parses what it can and
skips truncated trailing lines or any line mangled by an interrupted
or interleaved writer, instead of losing the whole history.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CANCELLED = "cancelled"

STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT,
            STATUS_CANCELLED)

#: Experiment-id letter -> artifact family, e.g. ``E-T1`` -> table.
#: Families label the per-family latency histograms and the
#: ``repro stats`` / ``repro bench`` breakdowns.
EXPERIMENT_FAMILIES = {
    "T": "table",
    "F": "figure",
    "C": "claim",
    "V": "validation",
    "S": "scaling",
    "X": "extension",
    "E": "electrothermal",
}


def experiment_family(experiment_id: str) -> str:
    """Artifact family of an experiment id (``other`` when unknown)."""
    prefix, _, rest = experiment_id.partition("-")
    if prefix == "E" and rest:
        return EXPERIMENT_FAMILIES.get(rest[0], "other")
    return "other"


@dataclass(frozen=True)
class RunRecord:
    """The immutable outcome of one experiment execution."""

    experiment_id: str
    status: str
    wall_time_s: float
    cache_hit: bool
    attempts: int
    error: str | None = None
    started_at: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_json_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunRecord":
        return cls(
            experiment_id=payload["experiment_id"],
            status=payload["status"],
            wall_time_s=float(payload["wall_time_s"]),
            cache_hit=bool(payload["cache_hit"]),
            attempts=int(payload["attempts"]),
            error=payload.get("error"),
            started_at=float(payload.get("started_at", 0.0)),
            phases={str(name): float(value) for name, value
                    in (payload.get("phases") or {}).items()},
        )


class RunJournal:
    """Append-only JSONL journal of :class:`RunRecord` entries.

    The journal survives across sweeps: each engine run appends its
    records, so the file is a complete execution history of the cache
    directory it lives in.  Appends are durable (flush + fsync) and
    recovery is tolerant: a truncated trailing line from a crashed
    writer costs that one line, never the journal.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def _write_lines(self, lines: list[str]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.writelines(lines)
            stream.flush()
            os.fsync(stream.fileno())

    def append(self, record: RunRecord) -> None:
        self._write_lines(
            [json.dumps(record.to_json_dict(), sort_keys=True) + "\n"])

    def append_many(self, records: Iterable[RunRecord]) -> None:
        lines = [json.dumps(record.to_json_dict(), sort_keys=True) + "\n"
                 for record in records]
        if lines:
            self._write_lines(lines)

    @classmethod
    def recover(cls, path: Path | str) -> tuple[list["RunRecord"], int]:
        """Parse a journal, skipping unparseable lines.

        Returns ``(records, skipped)`` where ``skipped`` counts lines
        lost to truncation (a writer died mid-append) or interleaving.
        """
        records: list[RunRecord] = []
        skipped = 0
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                records.append(RunRecord.from_json_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
        return records, skipped

    @classmethod
    def read(cls, path: Path | str, *,
             strict: bool = False) -> list["RunRecord"]:
        """Parse a journal file back into records.

        With ``strict=False`` (the default) malformed lines are
        skipped -- the recovery behaviour sweeps rely on; with
        ``strict=True`` any malformed line raises.
        """
        if not strict:
            return cls.recover(path)[0]
        records = []
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            if line.strip():
                records.append(RunRecord.from_json_dict(json.loads(line)))
        return records
