"""Content-addressed, crash-safe on-disk result cache.

A cache entry is keyed by the experiment id plus a *source
fingerprint*: the SHA-256 over the source text of every ``repro.*``
module the experiment's runner transitively imports (discovered
statically from the import statements in each module, so function-local
imports count too).  Editing any module in that closure -- and only in
that closure -- changes the fingerprint and invalidates the entry, so
unchanged experiments return instantly while touched ones re-run.

Layout under the cache root::

    <cache_dir>/objects/<experiment_id>--<fingerprint[:24]>.rpc
    <cache_dir>/objects/<...>.rpc.claim    (in-flight computation leases)
    <cache_dir>/quarantine/                (corrupt entries, kept for autopsy)
    <cache_dir>/journal.jsonl              (written by the scheduler)

Crash safety:

* every entry is written **atomically** (unique temp file in the same
  directory, then ``os.replace``), so readers never observe a torn
  entry under normal operation;
* every entry is **checksummed**: the ``.rpc`` container is a magic
  header + SHA-256 digest + pickled payload.  A torn write, bit rot,
  or a foreign file is detected on read and the entry is
  **quarantined** (moved to ``quarantine/``) -- a corrupt entry becomes
  a cache miss, never a wrong result;
* directory creation is race-safe (concurrent ``--jobs`` sweeps on a
  cold cache), and unreadable or foreign files in the cache dir are
  ignored rather than fatal.

Results are pickled so they round-trip exactly (numpy scalars,
tuples); an unpicklable result is simply not cached.

Claims (cross-process dedup):

When several processes -- concurrent CLI sweeps, or service jobs from
different clients -- miss on the same ``(experiment, fingerprint)``
key, only one should compute it.  A **claim** is an advisory lease on
an in-flight entry: a ``<entry>.rpc.claim`` file created with
``O_CREAT | O_EXCL`` (atomic on every platform we care about) holding
the claimant's pid/host/timestamp.  The scheduler acquires the claim
before launching a runner and releases it after the store; a process
that loses the claim race polls for the stored result instead of
recomputing.  Claims are *advisory* and crash-tolerant: a claim whose
process died (same host) or whose age exceeds the TTL is **stale** and
may be broken by any waiter, so a crashed claimant can never wedge the
key -- the worst outcome is the duplicate computation we started with.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import inspect
import itertools
import json
import os
import pickle
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs import SIZE_BUCKETS, add_counter, observe, span, wall_now

CACHE_SCHEMA_VERSION = "2"

#: Leading bytes of every valid cache entry file.
ENTRY_MAGIC = b"RPROC2\n"

#: Suffix appended to an entry path to form its claim (lease) file.
CLAIM_SUFFIX = ".claim"

#: Age past which a claim is considered abandoned by any waiter.  Two
#: minutes matches the default per-experiment timeout: a healthy
#: claimant either stores or releases well within it.
DEFAULT_CLAIM_TTL_S = 120.0

_DIGEST_BYTES = 32

_PACKAGE_PREFIX = "repro"

_tmp_counter = itertools.count()


def _is_repro_module(name: str) -> bool:
    return name == _PACKAGE_PREFIX or name.startswith(_PACKAGE_PREFIX + ".")


def _imported_names(source: str, package: str | None) -> set[str]:
    """Module names imported anywhere in ``source`` (repro.* only).

    ``from repro.pdn import grid`` may name either an attribute or a
    submodule, so both ``repro.pdn`` and ``repro.pdn.grid`` are
    returned; non-module candidates are dropped during resolution.
    """
    names: set[str] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level and package:
                parts = package.split(".")
                if node.level - 1 <= len(parts):
                    base = parts[:len(parts) - (node.level - 1)]
                    module = ".".join(
                        base + ([node.module] if node.module else []))
                else:
                    continue
            elif node.level:
                continue
            else:
                module = node.module or ""
            if module:
                names.add(module)
                for alias in node.names:
                    names.add(f"{module}.{alias.name}")
    return {name for name in names if _is_repro_module(name)}


def _find_source(module_name: str) -> Path | None:
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    path = Path(spec.origin)
    return path if path.suffix == ".py" and path.exists() else None


# (path, mtime_ns, size) -> (digest, frozenset of imported repro names)
_FILE_STATE_CACHE: dict[tuple[str, int, int], tuple[str, frozenset]] = {}


def _file_state(path: Path, package: str | None) -> tuple[str, frozenset]:
    stat = path.stat()
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    cached = _FILE_STATE_CACHE.get(key)
    if cached is not None:
        return cached
    source = path.read_text(encoding="utf-8")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        imports = frozenset(_imported_names(source, package))
    except SyntaxError:
        imports = frozenset()
    state = (digest, imports)
    _FILE_STATE_CACHE[key] = state
    return state


def _package_of(module_name: str | None, path: Path | None) -> str | None:
    if module_name is None:
        return None
    if path is not None and path.name == "__init__.py":
        return module_name
    return module_name.rpartition(".")[0] or None


def runner_fingerprint(experiment_id: str,
                       runner: Callable[[], Any]) -> str:
    """Fingerprint of ``runner``'s transitive repro source closure.

    Starts from the file defining the runner (which may live outside
    the package, e.g. a test module), walks ``repro.*`` imports
    breadth-first, and hashes every reachable module's source together
    with the experiment id.  Runners with no retrievable source (C
    builtins, REPL lambdas) fall back to hashing whatever identity
    ``inspect`` can provide, which disables sharing but stays safe.
    """
    with span("cache.fingerprint", experiment=experiment_id):
        return _runner_fingerprint(experiment_id, runner)


def _runner_fingerprint(experiment_id: str,
                        runner: Callable[[], Any]) -> str:
    hasher = hashlib.sha256()
    hasher.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode())
    hasher.update(f"experiment:{experiment_id}\n".encode())

    module_name = getattr(runner, "__module__", None)
    try:
        start_path = Path(inspect.getsourcefile(runner) or "")
    except TypeError:
        start_path = Path("")

    if not (start_path.name and start_path.exists()):
        code = getattr(runner, "__code__", None)
        token = code.co_code if code is not None else repr(runner).encode()
        hasher.update(b"opaque-runner:")
        hasher.update(token if isinstance(token, bytes) else token.encode())
        return hasher.hexdigest()

    seen_paths: set[Path] = set()
    entries: list[str] = []
    queue: list[tuple[Path, str | None]] = [
        (start_path.resolve(), _package_of(module_name, start_path))]
    while queue:
        path, package = queue.pop()
        if path in seen_paths:
            continue
        seen_paths.add(path)
        digest, imports = _file_state(path, package)
        entries.append(f"{path.name}:{digest}")
        for name in sorted(imports):
            target = _find_source(name)
            if target is None:
                continue
            target = target.resolve()
            if target not in seen_paths:
                queue.append((target, _package_of(name, target)))
    for entry in sorted(entries):
        hasher.update(entry.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def ensure_dir(path: Path) -> Path:
    """Race-safe ``mkdir -p``: concurrent creators all succeed.

    ``Path.mkdir(parents=True, exist_ok=True)`` already tolerates the
    create/create race; what it does not tolerate is a non-directory
    squatting on the path, which we surface as a :class:`ReproError`
    instead of a bare ``OSError`` from deep inside a sweep.
    """
    try:
        path.mkdir(parents=True, exist_ok=True)
    except FileExistsError as exc:
        raise ReproError(
            f"cache path {path} exists but is not a directory") from exc
    except NotADirectoryError as exc:
        raise ReproError(
            f"a parent of cache path {path} is a regular file") from exc
    return path


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/store/quarantine counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    claims: int = 0
    claim_waits: int = 0
    claims_broken: int = 0


@dataclass(frozen=True)
class ClaimInfo:
    """Who holds (or held) an in-flight entry's lease."""

    pid: int
    host: str
    created_at: float  # wall_now() unix-scale stamp

    def age_s(self, now: float | None = None) -> float:
        return max(0.0, (wall_now() if now is None else now)
                   - self.created_at)

    def holder_alive(self) -> bool | None:
        """Liveness of the claiming process.

        ``True``/``False`` when the claim was taken on this host (pid
        probe-able with ``os.kill(pid, 0)``), ``None`` when it came
        from another machine and only the TTL can judge it.
        """
        if self.host != socket.gethostname():
            return None
        if self.pid <= 0:
            return False
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except (OSError, PermissionError):
            return True  # exists, just not ours to signal
        return True


class ResultCache:
    """Checksummed result store addressed by (experiment id, fingerprint)."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._quarantined = 0
        self._claims = 0
        self._claim_waits = 0
        self._claims_broken = 0

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path_for(self, experiment_id: str, fingerprint: str) -> Path:
        return self.objects_dir / f"{experiment_id}--{fingerprint[:24]}.rpc"

    # -- entry encoding -----------------------------------------------

    @staticmethod
    def encode_entry(entry: dict) -> bytes:
        """Serialise an entry dict into the checksummed container."""
        payload = pickle.dumps(entry)
        digest = hashlib.sha256(payload).digest()
        return ENTRY_MAGIC + digest + payload

    @staticmethod
    def decode_entry(blob: bytes) -> dict:
        """Verify and deserialise a container; raises ``ValueError``."""
        if not blob.startswith(ENTRY_MAGIC):
            raise ValueError("bad magic: not a cache entry")
        body = blob[len(ENTRY_MAGIC):]
        if len(body) < _DIGEST_BYTES:
            raise ValueError("truncated entry header")
        digest, payload = body[:_DIGEST_BYTES], body[_DIGEST_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError("checksum mismatch (torn or corrupt write)")
        entry = pickle.loads(payload)
        if not isinstance(entry, dict):
            raise ValueError("entry payload is not a dict")
        return entry

    # -- quarantine ---------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; never raises."""
        target = (self.quarantine_dir
                  / f"{path.name}.{os.getpid()}.{next(_tmp_counter)}")
        with span("cache.quarantine", entry=path.name):
            try:
                ensure_dir(self.quarantine_dir)
                os.replace(path, target)
            except (OSError, ReproError):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    return
        self._quarantined += 1
        add_counter("cache.quarantined")

    # -- public API ---------------------------------------------------

    def get(self, experiment_id: str,
            fingerprint: str) -> tuple[bool, Any]:
        """Return ``(hit, result)``.

        A missing entry is a miss; an unreadable entry is a miss; a
        corrupt (torn, bit-rotted, foreign, or wrong-fingerprint) entry
        is quarantined and reported as a miss.  No code path returns a
        result that failed its checksum.
        """
        path = self.path_for(experiment_id, fingerprint)
        with span("cache.read", experiment=experiment_id) as read_span:
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                self._misses += 1
                add_counter("cache.misses")
                return False, None
            except OSError:
                # unreadable (permissions, I/O error): ignore, don't crash
                self._misses += 1
                add_counter("cache.misses")
                return False, None
            try:
                entry = self.decode_entry(blob)
                if entry.get("fingerprint") != fingerprint:
                    raise ValueError("fingerprint mismatch")
            except Exception:
                self._quarantine(path)
                self._misses += 1
                add_counter("cache.misses")
                return False, None
            read_span.set(hit=True, bytes=len(blob))
            observe("cache.entry_bytes", len(blob), SIZE_BUCKETS,
                    op="read")
        try:
            # Touch-on-read keeps mtime ~= last access, which is what
            # the shared store's LRU eviction orders entries by.
            os.utime(path)
        except OSError:
            pass
        self._hits += 1
        add_counter("cache.hits")
        return True, entry["result"]

    def put(self, experiment_id: str, fingerprint: str,
            result: Any) -> bool:
        """Store atomically (write-then-rename); False if not storable."""
        path = self.path_for(experiment_id, fingerprint)
        entry = {
            "experiment_id": experiment_id,
            "fingerprint": fingerprint,
            "created_at": wall_now(),
            "result": result,
        }
        with span("cache.write", experiment=experiment_id) as write_span:
            try:
                blob = self.encode_entry(entry)
            except Exception:
                return False
            tmp = path.parent / (f".tmp-{experiment_id}-{os.getpid()}"
                                 f"-{next(_tmp_counter)}")
            try:
                ensure_dir(path.parent)
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            except OSError:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                return False
            write_span.set(bytes=len(blob))
            observe("cache.entry_bytes", len(blob), SIZE_BUCKETS,
                    op="write")
        self._stores += 1
        add_counter("cache.stores")
        return True

    # -- claims (in-flight entry leases) ------------------------------

    def claim_path(self, experiment_id: str, fingerprint: str) -> Path:
        return Path(str(self.path_for(experiment_id, fingerprint))
                    + CLAIM_SUFFIX)

    def claim(self, experiment_id: str, fingerprint: str) -> bool:
        """Try to lease the in-flight entry; True if this process won.

        The claim file is created with ``O_CREAT | O_EXCL`` so exactly
        one of any number of simultaneous claimants succeeds.  Failure
        to create for any other reason (read-only cache, I/O error) is
        reported as an acquired claim: claims are an optimisation, and
        a cache that cannot hold leases must never block computation.
        """
        path = self.claim_path(experiment_id, fingerprint)
        body = json.dumps({
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created_at": wall_now(),
        }).encode("utf-8")
        try:
            ensure_dir(path.parent)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                         0o644)
        except FileExistsError:
            return False
        except (OSError, ReproError):
            return True
        try:
            os.write(fd, body)
        except OSError:
            pass
        finally:
            os.close(fd)
        self._claims += 1
        add_counter("cache.claims")
        return True

    def claim_holder(self, experiment_id: str,
                     fingerprint: str) -> ClaimInfo | None:
        """Parse the current claim; ``None`` when the key is unclaimed.

        A claim file that cannot be parsed (torn write, foreign
        content) reports an ancient zero-stamp holder, which every
        staleness check treats as breakable.
        """
        return self._claim_info_at(
            self.claim_path(experiment_id, fingerprint))

    @staticmethod
    def claim_is_stale(info: ClaimInfo,
                       ttl_s: float = DEFAULT_CLAIM_TTL_S) -> bool:
        """True when a waiter may break this claim and take over."""
        if info.age_s() > ttl_s:
            return True
        return info.holder_alive() is False

    def release_claim(self, experiment_id: str,
                      fingerprint: str) -> None:
        """Drop this process's lease (missing file is fine)."""
        try:
            self.claim_path(experiment_id, fingerprint).unlink()
        except OSError:
            pass

    def break_claim(self, experiment_id: str, fingerprint: str) -> None:
        """Forcibly remove a stale claim so a waiter can take over."""
        try:
            self.claim_path(experiment_id, fingerprint).unlink()
        except OSError:
            return
        self._claims_broken += 1
        add_counter("cache.claims_broken")

    def _claim_info_at(self, path: Path) -> ClaimInfo | None:
        """Parse the claim file at ``path`` (same rules as claim_holder)."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return ClaimInfo(pid=int(payload["pid"]),
                             host=str(payload["host"]),
                             created_at=float(payload["created_at"]))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            if not path.exists():
                return None
            return ClaimInfo(pid=0, host="", created_at=0.0)

    def sweep_stale_claims(self,
                           ttl_s: float = DEFAULT_CLAIM_TTL_S) -> int:
        """Break every stale claim under the objects dir; returns count.

        Waiters already break a dead-pid claim the moment they contest
        it, but a claim with no active waiter -- a worker SIGKILLed
        mid-compute, a daemon that died with leases held -- would
        otherwise linger until the next contender shows up, shielding
        its entry from store pruning the whole time.  The daemon runs
        this sweep on startup recovery and the store manager before
        pruning.
        """
        if not self.objects_dir.is_dir():
            return 0
        broken = 0
        try:
            claim_paths = list(
                self.objects_dir.glob("*.rpc" + CLAIM_SUFFIX))
        except OSError:
            return 0
        for path in claim_paths:
            info = self._claim_info_at(path)
            if info is None or not self.claim_is_stale(info, ttl_s):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            broken += 1
            self._claims_broken += 1
            add_counter("cache.claims_broken")
        return broken

    def note_claim_wait(self) -> None:
        """Count one task that waited on a foreign claim."""
        self._claim_waits += 1
        add_counter("cache.claim_waits")

    def claim_count(self) -> int:
        """Live claim files under the objects directory."""
        if not self.objects_dir.is_dir():
            return 0
        try:
            return sum(1 for _ in
                       self.objects_dir.glob("*.rpc" + CLAIM_SUFFIX))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every cache object; returns the number removed."""
        removed = 0
        for directory in (self.objects_dir, self.quarantine_dir):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.rpc*"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.objects_dir.is_dir():
            return 0
        try:
            return sum(1 for _ in self.objects_dir.glob("*.rpc"))
        except OSError:
            return 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses,
                          stores=self._stores,
                          quarantined=self._quarantined,
                          claims=self._claims,
                          claim_waits=self._claim_waits,
                          claims_broken=self._claims_broken)
