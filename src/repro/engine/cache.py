"""Content-addressed on-disk result cache.

A cache entry is keyed by the experiment id plus a *source
fingerprint*: the SHA-256 over the source text of every ``repro.*``
module the experiment's runner transitively imports (discovered
statically from the import statements in each module, so function-local
imports count too).  Editing any module in that closure -- and only in
that closure -- changes the fingerprint and invalidates the entry, so
unchanged experiments return instantly while touched ones re-run.

Layout under the cache root::

    <cache_dir>/objects/<experiment_id>--<fingerprint[:24]>.pkl
    <cache_dir>/journal.jsonl        (written by the scheduler)

Entries are pickled so results round-trip exactly (numpy scalars,
tuples).  A corrupt or unreadable entry is treated as a miss and
removed; an unpicklable result is simply not cached.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import inspect
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

CACHE_SCHEMA_VERSION = "1"

_PACKAGE_PREFIX = "repro"


def _is_repro_module(name: str) -> bool:
    return name == _PACKAGE_PREFIX or name.startswith(_PACKAGE_PREFIX + ".")


def _imported_names(source: str, package: str | None) -> set[str]:
    """Module names imported anywhere in ``source`` (repro.* only).

    ``from repro.pdn import grid`` may name either an attribute or a
    submodule, so both ``repro.pdn`` and ``repro.pdn.grid`` are
    returned; non-module candidates are dropped during resolution.
    """
    names: set[str] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level and package:
                parts = package.split(".")
                if node.level - 1 <= len(parts):
                    base = parts[:len(parts) - (node.level - 1)]
                    module = ".".join(
                        base + ([node.module] if node.module else []))
                else:
                    continue
            elif node.level:
                continue
            else:
                module = node.module or ""
            if module:
                names.add(module)
                for alias in node.names:
                    names.add(f"{module}.{alias.name}")
    return {name for name in names if _is_repro_module(name)}


def _find_source(module_name: str) -> Path | None:
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    path = Path(spec.origin)
    return path if path.suffix == ".py" and path.exists() else None


# (path, mtime_ns, size) -> (digest, frozenset of imported repro names)
_FILE_STATE_CACHE: dict[tuple[str, int, int], tuple[str, frozenset]] = {}


def _file_state(path: Path, package: str | None) -> tuple[str, frozenset]:
    stat = path.stat()
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    cached = _FILE_STATE_CACHE.get(key)
    if cached is not None:
        return cached
    source = path.read_text(encoding="utf-8")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        imports = frozenset(_imported_names(source, package))
    except SyntaxError:
        imports = frozenset()
    state = (digest, imports)
    _FILE_STATE_CACHE[key] = state
    return state


def _package_of(module_name: str | None, path: Path | None) -> str | None:
    if module_name is None:
        return None
    if path is not None and path.name == "__init__.py":
        return module_name
    return module_name.rpartition(".")[0] or None


def runner_fingerprint(experiment_id: str,
                       runner: Callable[[], Any]) -> str:
    """Fingerprint of ``runner``'s transitive repro source closure.

    Starts from the file defining the runner (which may live outside
    the package, e.g. a test module), walks ``repro.*`` imports
    breadth-first, and hashes every reachable module's source together
    with the experiment id.  Runners with no retrievable source (C
    builtins, REPL lambdas) fall back to hashing whatever identity
    ``inspect`` can provide, which disables sharing but stays safe.
    """
    hasher = hashlib.sha256()
    hasher.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode())
    hasher.update(f"experiment:{experiment_id}\n".encode())

    module_name = getattr(runner, "__module__", None)
    try:
        start_path = Path(inspect.getsourcefile(runner) or "")
    except TypeError:
        start_path = Path("")

    if not (start_path.name and start_path.exists()):
        code = getattr(runner, "__code__", None)
        token = code.co_code if code is not None else repr(runner).encode()
        hasher.update(b"opaque-runner:")
        hasher.update(token if isinstance(token, bytes) else token.encode())
        return hasher.hexdigest()

    seen_paths: set[Path] = set()
    entries: list[str] = []
    queue: list[tuple[Path, str | None]] = [
        (start_path.resolve(), _package_of(module_name, start_path))]
    while queue:
        path, package = queue.pop()
        if path in seen_paths:
            continue
        seen_paths.add(path)
        digest, imports = _file_state(path, package)
        entries.append(f"{path.name}:{digest}")
        for name in sorted(imports):
            target = _find_source(name)
            if target is None:
                continue
            target = target.resolve()
            if target not in seen_paths:
                queue.append((target, _package_of(name, target)))
    for entry in sorted(entries):
        hasher.update(entry.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Pickle-backed result store addressed by (experiment id, fingerprint)."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._stores = 0

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, experiment_id: str, fingerprint: str) -> Path:
        return self.objects_dir / f"{experiment_id}--{fingerprint[:24]}.pkl"

    def get(self, experiment_id: str,
            fingerprint: str) -> tuple[bool, Any]:
        """Return ``(hit, result)``; a corrupt entry is evicted as a miss."""
        path = self.path_for(experiment_id, fingerprint)
        try:
            with path.open("rb") as stream:
                entry = pickle.load(stream)
            if entry["fingerprint"] != fingerprint:
                raise ValueError("fingerprint mismatch")
        except FileNotFoundError:
            self._misses += 1
            return False, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self._misses += 1
            return False, None
        self._hits += 1
        return True, entry["result"]

    def put(self, experiment_id: str, fingerprint: str,
            result: Any) -> bool:
        """Store atomically; returns False if the result is unpicklable."""
        path = self.path_for(experiment_id, fingerprint)
        entry = {
            "experiment_id": experiment_id,
            "fingerprint": fingerprint,
            "created_at": time.time(),
            "result": result,
        }
        try:
            payload = pickle.dumps(entry)
        except Exception:
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self._stores += 1
        return True

    def clear(self) -> int:
        """Delete every cache object; returns the number removed."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.objects_dir.is_dir():
            return 0
        return sum(1 for _ in self.objects_dir.glob("*.pkl"))

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses,
                          stores=self._stores)
