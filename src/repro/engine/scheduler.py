"""The experiment execution engine: scheduling, isolation, retries.

The scheduler executes any subset of the experiment registry with

* a **process pool** (``jobs`` worker processes, forked on platforms
  that support it so monkeypatched registries propagate), a
  per-experiment **timeout** that actually kills the worker, and
  **bounded retries** spaced by exponential backoff with deterministic
  jitter (:class:`~repro.reliability.backoff.BackoffPolicy`);
* **adaptive chunking** for large sweeps: when pending work exceeds
  roughly four tasks per worker, fresh tasks are grouped into one
  worker launch (:attr:`EngineConfig.chunk_size`; ``None`` adapts,
  an explicit value pins it) to amortise fork cost, with per-task
  outcome streaming so a crash mid-chunk only retries -- singly --
  the tasks the worker never finished.  Retries and fault-plan runs
  are never chunked;
* **failure isolation**: a crashing, raising, or hanging runner yields
  a failed/timeout :class:`~repro.engine.records.RunRecord` while the
  rest of the sweep completes;
* the **content-addressed cache** of :mod:`repro.engine.cache`, so
  experiments whose transitive source is unchanged return instantly
  without spawning a worker;
* **cross-process claims**: before launching a runner the scheduler
  leases the task's cache key (``<entry>.rpc.claim``); a concurrent
  sweep or service job that loses the race polls for the winner's
  stored result (``shared`` wait phase) instead of recomputing, with
  TTL-bounded staleness so a crashed claimant never wedges a key;
* **graceful shutdown**: SIGINT/SIGTERM (main thread only) switch the
  scheduler into drain mode -- no new launches, in-flight workers and
  chunks finish and store their results, never-launched tasks settle
  as ``cancelled`` records, and the journal is flushed on the normal
  exit path.  :attr:`SweepResult.interrupted` reports it and the CLI
  maps it to a distinct exit code;
* a JSONL **run journal** plus an aggregate
  :class:`~repro.engine.metrics.EngineMetrics` summary;
* an optional **fault-injection hook**: when
  :attr:`EngineConfig.fault_plan` is set, the scheduler consults the
  :class:`~repro.reliability.faults.FaultPlan` before every attempt
  (crash/hang/transient/slow faults run inside the worker) and after
  every store (corrupt-cache faults tear the on-disk entry), recording
  each applied fault on :attr:`SweepResult.fired_faults` so the chaos
  harness can prove absorption.

Two executors are provided: ``"process"`` (the default, full
isolation) and ``"inline"`` (same caching and record-keeping but
running in the calling process -- no timeout enforcement; used by the
benchmark fixtures and wherever fork overhead would dominate).

Timing discipline: **every duration in this module is a difference of
``time.monotonic()`` readings** -- the adjustable wall clock is never
subtracted, so ``wall_time_s`` and the per-task phase timings cannot
go negative under an NTP step or manual clock change.
Wall-clock ``started_at`` timestamps come from
:func:`repro.obs.wall_now`, which derives unix-scale stamps from the
monotonic clock against an anchor captured at import.

Observability: when a :class:`repro.obs.Trace` is active (the
``repro trace`` CLI installs one), the scheduler emits spans for each
task's lookup / run / store phase and accumulates the same phases on
every :class:`RunRecord` (``phases`` maps phase name to seconds; the
``queue`` and ``retry`` entries measure *waiting*, everything else is
active work summing to ``wall_time_s``).  Worker processes build their
own trace and ship it back over the result pipe, so solver spans from
inside an experiment land in the sweep trace with the worker's pid.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as signal_module
import threading
import time
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Sequence

from repro.engine.cache import (
    DEFAULT_CLAIM_TTL_S,
    ResultCache,
    runner_fingerprint,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.records import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunJournal,
    RunRecord,
    experiment_family,
)
from repro.errors import ReproError
from repro.obs import (
    CONTEXT_FIELDS,
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
    Trace,
    activate,
    add_counter,
    context_fields,
    current_metrics,
    current_trace,
    get_logger,
    observe,
    record_resource_delta,
    record_resource_metrics,
    record_span,
    reset_tracing,
    sample_resources,
    set_trace_context,
    span,
    trace_context,
    tracing_enabled,
    wall_now,
)
from repro.reliability.backoff import BackoffPolicy
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    FiredFault,
    apply_runner_fault,
    tear_cache_entry,
)

DEFAULT_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))

EXECUTOR_PROCESS = "process"
EXECUTOR_INLINE = "inline"

#: Phase names that measure waiting rather than work; every other
#: phase on a record is active time, and the active phases sum to the
#: record's ``wall_time_s``.  ``shared`` is time spent waiting on a
#: foreign cache claim (another process computing the same key).
WAIT_PHASES = ("queue", "retry", "shared")

#: record phase -> histogram metric it lands in when metrics are
#: active.  The ``run`` phase additionally carries a ``family`` label
#: so ``repro stats`` can break run latency down per artifact family.
_PHASE_METRICS = {
    "lookup": "engine.lookup_s",
    "run": "engine.run_s",
    "store": "engine.store_s",
    "queue": "engine.queue_wait_s",
    "retry": "engine.retry_wait_s",
    "shared": "engine.shared_wait_s",
}

#: Signals that trigger a graceful drain when the engine runs on the
#: main thread (worker threads -- e.g. inside the service daemon --
#: never install handlers; the daemon owns its own signal policy).
DRAIN_SIGNALS = (signal_module.SIGINT, signal_module.SIGTERM)

_log = get_logger("engine.scheduler")


def observe_record_metrics(metrics: MetricsRegistry,
                           record: RunRecord) -> None:
    """Land one finished record's phase timings in the sweep histograms."""
    family = experiment_family(record.experiment_id)
    for phase, value in record.phases.items():
        metric = _PHASE_METRICS.get(phase)
        if metric is None:
            continue
        if phase == "run":
            metrics.observe(metric, value, DURATION_BUCKETS,
                            family=family)
        else:
            metrics.observe(metric, value, DURATION_BUCKETS)
    metrics.observe("engine.attempts", record.attempts, COUNT_BUCKETS)


def default_jobs() -> int:
    """Default worker count: ``REPRO_WORKERS`` if set, else min(4, CPUs).

    The four-worker cap keeps CI machines and laptops responsive, but it
    is a *default*, not a limit: operators running large sweeps on big
    hosts lift it with the ``REPRO_WORKERS`` environment variable or the
    ``--workers`` CLI flag (which wins when both are given).
    """
    raw = os.environ.get("REPRO_WORKERS")
    if raw is not None and raw.strip():
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(
                f"REPRO_WORKERS must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ReproError(
                f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, min(4, os.cpu_count() or 1))


@dataclass(frozen=True)
class EngineConfig:
    """Tunables for one :class:`ExecutionEngine`."""

    jobs: int = 1
    timeout_s: float | None = 120.0
    retries: int = 0
    cache_enabled: bool = True
    cache_dir: Path = field(default_factory=lambda: DEFAULT_CACHE_DIR)
    journal_path: Path | None = None
    executor: str = EXECUTOR_PROCESS
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    fault_plan: FaultPlan | None = None
    #: Tasks per worker launch.  ``None`` adapts to the sweep size
    #: (chunks only form once pending work exceeds ~4 tasks per
    #: worker, so small sweeps keep one-process-per-task isolation);
    #: an explicit value pins it.  Retries and fault-plan runs always
    #: execute singly.
    chunk_size: int | None = None
    #: Lease in-flight cache entries so concurrent sweeps over the
    #: same cache directory never compute the same key twice: the
    #: claim loser polls for the winner's stored result instead of
    #: launching a worker.  Claims are advisory and TTL-bounded --
    #: a crashed claimant's lease goes stale and is broken.
    claim_results: bool = True
    claim_ttl_s: float = DEFAULT_CLAIM_TTL_S
    claim_poll_s: float = 0.05
    #: Install SIGINT/SIGTERM handlers (main thread only) that drain
    #: in-flight tasks, cancel pending ones, and flush the journal
    #: instead of tearing the pool down mid-chunk.
    handle_signals: bool = True
    #: Optional no-arg callable invoked whenever the sweep makes
    #: genuine progress (a task finishes, a cache hit lands).  The
    #: service daemon points this at the job's heartbeat so its
    #: watchdog can tell a slow sweep from a wedged one.  Exceptions
    #: from the callback are swallowed.
    progress: Any = None
    #: Correlation fields (``trace_id``/``job_id``/``tenant`` mapping)
    #: installed for the run's duration and shipped to worker
    #: processes, so spans and log records on both sides of the fork
    #: carry the submitting job's ids.  Merged over any context
    #: already active on the calling thread (explicit config wins).
    trace_context: Any = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.executor not in (EXECUTOR_PROCESS, EXECUTOR_INLINE):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.claim_ttl_s <= 0:
            raise ValueError(
                f"claim_ttl_s must be > 0, got {self.claim_ttl_s}")
        if self.claim_poll_s <= 0:
            raise ValueError(
                f"claim_poll_s must be > 0, got {self.claim_poll_s}")

    @property
    def effective_journal_path(self) -> Path | None:
        """Explicit journal path, else the cache's journal, else none."""
        if self.journal_path is not None:
            return Path(self.journal_path)
        if self.cache_enabled:
            return Path(self.cache_dir) / "journal.jsonl"
        return None


@dataclass(frozen=True)
class SweepResult:
    """Everything one engine run produced."""

    records: list[RunRecord]
    results: dict[str, Any]
    metrics: EngineMetrics
    fired_faults: tuple[FiredFault, ...] = ()
    #: True when a drain signal interrupted the sweep: in-flight tasks
    #: finished and were stored, pending ones carry ``cancelled``
    #: records, and the journal holds all of them.
    interrupted: bool = False

    @property
    def all_ok(self) -> bool:
        return self.metrics.all_ok


def _mp_context() -> multiprocessing.context.BaseContext:
    # fork (where available) lets workers inherit the parent's
    # already-imported -- possibly monkeypatched -- registry.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _worker_entry(experiment_id: str, conn,
                  fault: FaultSpec | None = None,
                  traced: bool = False,
                  context: dict | None = None) -> None:
    """Child-process body: run one experiment, ship back the outcome.

    With ``traced`` set, the worker records its own trace (a forked
    parent trace would be a dead copy) and ships the span/counter
    payload alongside the result so the parent can merge it.
    ``context`` is the parent's correlation-field snapshot
    (thread-local state does not survive fork from a non-main thread),
    re-installed so worker spans and log records carry the job's ids.
    """
    reset_tracing()  # a trace inherited over fork would swallow spans
    if context:
        set_trace_context(**context)
    child_trace = Trace(f"worker-{experiment_id}") if traced else None
    if child_trace is not None:
        activate(child_trace)
    payload = None
    try:
        apply_runner_fault(fault, allow_exit=True)
        from repro.analysis.experiments import EXPERIMENTS
        with span("worker.run", experiment=experiment_id):
            result = EXPERIMENTS[experiment_id].runner()
        if child_trace is not None:
            # The forked worker *is* the task, so its lifetime peaks
            # are the task's cost; the parent max-merges the RSS gauge
            # into the sweep-wide worker peak.
            record_resource_metrics(child_trace.metrics, scope="task")
            payload = child_trace.to_payload()
        conn.send(("ok", result, payload))
    except BaseException as exc:  # must cross the process boundary
        try:
            if child_trace is not None:
                payload = child_trace.to_payload()
            conn.send(("error", repr(exc), payload))
        except Exception:
            pass
    finally:
        conn.close()


def _worker_chunk_entry(experiment_ids: Sequence[str], conn,
                        traced: bool = False,
                        context: dict | None = None) -> None:
    """Child-process body for a chunk: run several experiments in turn.

    One outcome message is shipped per experiment as it finishes, so a
    crash mid-chunk costs only the unfinished tasks -- the parent
    retries exactly those, singly.  A trailing ``("done", payload)``
    carries the worker trace for the whole chunk.
    """
    reset_tracing()
    if context:
        set_trace_context(**context)
    child_trace = (Trace(f"worker-chunk-{experiment_ids[0]}")
                   if traced else None)
    if child_trace is not None:
        activate(child_trace)
    try:
        from repro.analysis.experiments import EXPERIMENTS
        for experiment_id in experiment_ids:
            start = time.monotonic()
            try:
                with span("worker.run", experiment=experiment_id,
                          chunked=True):
                    result = EXPERIMENTS[experiment_id].runner()
                conn.send(("task", experiment_id, STATUS_OK, result,
                           time.monotonic() - start))
            except Exception as exc:
                conn.send(("task", experiment_id, STATUS_FAILED,
                           repr(exc), time.monotonic() - start))
        payload = None
        if child_trace is not None:
            record_resource_metrics(child_trace.metrics, scope="task")
            payload = child_trace.to_payload()
        conn.send(("done", payload))
    except BaseException:  # must not escape the process boundary
        try:
            conn.send(("done", child_trace.to_payload()
                       if child_trace is not None else None))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Task:
    experiment_id: str
    fingerprint: str | None
    attempts: int = 0
    started_at: float = 0.0
    last_error: str | None = None
    ready_at: float = 0.0    # monotonic time the task became runnable
    not_before: float = 0.0  # monotonic time gating the next attempt
    claimed: bool = False            # this process holds the lease
    claim_wait_start: float = 0.0    # monotonic; 0 = not waiting
    claim_deadline: float = 0.0      # give up waiting and run anyway
    phases: dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, duration_s: float) -> None:
        if duration_s > 0.0:
            self.phases[name] = self.phases.get(name, 0.0) + duration_s

    @property
    def active_s(self) -> float:
        """Seconds of actual work (lookup/run/store; waits excluded)."""
        return sum(value for name, value in self.phases.items()
                   if name not in WAIT_PHASES)


@dataclass
class _Slot:
    task: _Task
    process: multiprocessing.process.BaseProcess
    conn: Any
    deadline: float | None
    launched: float


@dataclass
class _ChunkSlot:
    tasks: list[_Task]
    process: multiprocessing.process.BaseProcess
    conn: Any
    deadline: float | None
    launched: float


class ExecutionEngine:
    """Runs experiment subsets according to an :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.cache = (ResultCache(self.config.cache_dir)
                      if self.config.cache_enabled else None)
        journal_path = self.config.effective_journal_path
        self.journal = (RunJournal(journal_path)
                        if journal_path is not None else None)
        self._fired: list[FiredFault] = []
        self._interrupted = False
        self._aborted = False
        self._abort_reason = ""

    # -- public API ---------------------------------------------------

    def run(self, experiment_ids: Sequence[str] | None = None
            ) -> SweepResult:
        """Execute the given ids (default: the whole registry)."""
        from repro.analysis.experiments import EXPERIMENTS

        if experiment_ids is None:
            ids = list(EXPERIMENTS)
        else:
            ids = list(dict.fromkeys(experiment_ids))
            unknown = [i for i in ids if i not in EXPERIMENTS]
            if unknown:
                raise ReproError(
                    f"unknown experiment(s) {unknown}; known ids: "
                    f"{sorted(EXPERIMENTS)}")

        sweep_start = time.monotonic()
        self._fired = []
        self._interrupted = False
        self._aborted = False
        self._abort_reason = ""
        records: dict[str, RunRecord] = {}
        results: dict[str, Any] = {}
        metrics = current_metrics()
        sweep_sample = (sample_resources() if metrics is not None
                        else None)

        correlate = dict(context_fields())
        if self.config.trace_context:
            correlate.update(
                (key, str(value)) for key, value
                in dict(self.config.trace_context).items()
                if key in CONTEXT_FIELDS and value is not None)

        restore_handlers = self._install_signal_handlers()
        try:
            with ExitStack() as stack:
                if correlate:
                    stack.enter_context(trace_context(**correlate))
                stack.enter_context(
                    span("engine.sweep", experiments=len(ids),
                         jobs=self.config.jobs,
                         executor=self.config.executor))
                _log.info("sweep.start", experiments=len(ids),
                          jobs=self.config.jobs,
                          executor=self.config.executor)
                pending: deque[_Task] = deque()
                for experiment_id in ids:
                    record, result, task = self._try_cache(
                        EXPERIMENTS, experiment_id)
                    if record is not None:
                        records[experiment_id] = record
                        results[experiment_id] = result
                        self._beat()
                    else:
                        task.ready_at = time.monotonic()
                        pending.append(task)

                if pending:
                    if self.config.executor == EXECUTOR_INLINE:
                        self._run_inline(EXPERIMENTS, pending, records,
                                         results)
                    else:
                        self._run_processes(pending, records, results)
        finally:
            restore_handlers()

        with ExitStack() as stack:
            if correlate:
                stack.enter_context(trace_context(**correlate))
            _log.info("sweep.done", experiments=len(ids),
                      interrupted=self._interrupted,
                      wall_s=round(time.monotonic() - sweep_start, 6))
        ordered = [records[experiment_id] for experiment_id in ids]
        if metrics is not None:
            for record in ordered:
                observe_record_metrics(metrics, record)
            if self.cache is not None:
                stats = self.cache.stats
                metrics.set_gauge("cache.entries", len(self.cache))
                metrics.set_gauge("cache.hit_ratio",
                                  stats.hits / max(1, stats.hits
                                                   + stats.misses))
            record_resource_delta(metrics, sweep_sample, scope="sweep")
        sweep_metrics = EngineMetrics.from_records(
            ordered, time.monotonic() - sweep_start)
        if self.journal is not None:
            self.journal.append_many(ordered)
        return SweepResult(records=ordered, results=results,
                           metrics=sweep_metrics,
                           fired_faults=tuple(self._fired),
                           interrupted=self._interrupted)

    # -- graceful shutdown --------------------------------------------

    def _install_signal_handlers(self):
        """Arm the drain signals; returns the restore callback.

        Handlers only install on the main thread (CPython restricts
        ``signal.signal`` to it, and the service daemon runs engines on
        worker threads under its own signal policy).  The first signal
        requests a drain: no new launches, in-flight work finishes and
        is stored, pending tasks become ``cancelled`` records, and the
        journal is flushed on the normal exit path.
        """
        if (not self.config.handle_signals
                or threading.current_thread()
                is not threading.main_thread()):
            return lambda: None
        previous = []
        for sig in DRAIN_SIGNALS:
            try:
                previous.append(
                    (sig, signal_module.signal(sig, self._on_signal)))
            except (ValueError, OSError):
                pass
        def restore():
            for sig, old in previous:
                try:
                    signal_module.signal(sig, old)
                except (ValueError, OSError):
                    pass
        return restore

    def _on_signal(self, signum, frame) -> None:
        add_counter("engine.drain_signals")
        self._interrupted = True

    def abort(self, reason: str = "aborted") -> None:
        """Kill the sweep from another thread (watchdog enforcement).

        Unlike a drain signal, an abort does **not** let in-flight
        workers finish: the process pool is torn down at the next poll
        (bounded by the 0.5 s poll cap), in-flight tasks settle as
        ``failed`` records carrying the reason, and never-launched
        tasks settle as ``cancelled``.  The inline executor checks the
        flag between tasks -- it cannot interrupt a running one.
        """
        self._abort_reason = reason
        self._aborted = True
        add_counter("engine.aborts")
        _log.warning("engine.abort", reason=reason)

    def _beat(self) -> None:
        """Report genuine sweep progress to the configured callback."""
        progress = self.config.progress
        if progress is not None:
            try:
                progress()
            except Exception:
                pass

    def _abort_all(self, running: list, pending: deque[_Task],
                   records: dict[str, RunRecord]) -> None:
        """Tear down every slot and settle all remaining tasks."""
        for slot in running:
            self._kill(slot)
            tasks = (slot.tasks if isinstance(slot, _ChunkSlot)
                     else [slot.task])
            for task in tasks:
                task.last_error = f"aborted: {self._abort_reason}"
                records[task.experiment_id] = self._finalize(
                    task, STATUS_FAILED)
            try:
                slot.conn.close()
            except OSError:
                pass
        running.clear()
        while pending:
            task = pending.popleft()
            task.last_error = f"aborted: {self._abort_reason}"
            records[task.experiment_id] = self._finalize(
                task, STATUS_CANCELLED)

    def _cancel_pending(self, pending: deque[_Task],
                        records: dict[str, RunRecord]) -> None:
        """Settle never-launched tasks as ``cancelled`` after a drain."""
        while pending:
            task = pending.popleft()
            task.last_error = ("interrupted: drain signal received "
                               "before this task launched")
            records[task.experiment_id] = self._finalize(
                task, STATUS_CANCELLED)

    # -- cache front-end ----------------------------------------------

    def _try_cache(self, registry, experiment_id: str
                   ) -> tuple[RunRecord | None, Any, _Task]:
        started = wall_now()
        lookup_start = time.monotonic()
        fingerprint: str | None = None
        hit, result = False, None
        if self.cache is not None:
            with span("engine.lookup", experiment=experiment_id):
                fingerprint = runner_fingerprint(
                    experiment_id, registry[experiment_id].runner)
                hit, result = self.cache.get(experiment_id, fingerprint)
        lookup_s = time.monotonic() - lookup_start
        if hit:
            record = RunRecord(
                experiment_id=experiment_id,
                status=STATUS_OK,
                wall_time_s=lookup_s,
                cache_hit=True,
                attempts=0,
                started_at=started,
                phases={"lookup": lookup_s},
            )
            return record, result, _Task(experiment_id, fingerprint)
        task = _Task(experiment_id, fingerprint)
        if self.cache is not None:
            task.add_phase("lookup", lookup_s)
        return None, None, task

    def _retry_cache_hit(self, task: _Task,
                         records: dict[str, RunRecord],
                         results: dict[str, Any]) -> bool:
        """Re-consult the cache before relaunching a failed task.

        Between a failed attempt and its retry, a concurrent sweep over
        the same cache may have stored this entry; honouring it saves
        the relaunch.  The resulting record is a *cache hit with
        attempts > 0* -- which is why retry counts must come from
        per-record ``attempts - 1`` sums, never ``attempts -
        cache_misses`` arithmetic.
        """
        if self.cache is None or task.fingerprint is None:
            return False
        lookup_start = time.monotonic()
        with span("engine.lookup", experiment=task.experiment_id,
                  retry=True):
            hit, result = self.cache.get(task.experiment_id,
                                         task.fingerprint)
        task.add_phase("lookup", time.monotonic() - lookup_start)
        if not hit:
            return False
        self._release_claim(task)
        self._beat()
        results[task.experiment_id] = result
        records[task.experiment_id] = RunRecord(
            experiment_id=task.experiment_id,
            status=STATUS_OK,
            wall_time_s=task.active_s,
            cache_hit=True,
            attempts=task.attempts,
            started_at=task.started_at,
            phases=dict(task.phases),
        )
        return True

    # -- claims (cross-process in-flight dedup) -----------------------

    def _claims_enabled(self, task: _Task) -> bool:
        return (self.cache is not None and self.config.claim_results
                and task.fingerprint is not None)

    def _release_claim(self, task: _Task) -> None:
        if task.claimed and self.cache is not None \
                and task.fingerprint is not None:
            self.cache.release_claim(task.experiment_id,
                                     task.fingerprint)
        task.claimed = False

    def _settle_claim_wait(self, task: _Task) -> None:
        """Bank the time spent waiting on a foreign claim, if any.

        ``ready_at`` is advanced so the same interval is not counted a
        second time as queue wait by the launch accounting.
        """
        if task.claim_wait_start:
            task.add_phase("shared",
                           time.monotonic() - task.claim_wait_start)
            task.claim_wait_start = 0.0
            if task.ready_at:
                task.ready_at = time.monotonic()

    def _acquire_claim(self, task: _Task,
                       records: dict[str, RunRecord],
                       results: dict[str, Any]) -> str:
        """Lease ``task``'s cache key, or learn why not (non-blocking).

        Returns ``"run"`` (lease held or claims disabled -- launch the
        runner), ``"hit"`` (the foreign claimant stored the result
        while we waited; a cache-hit record was emitted), or ``"wait"``
        (a live foreign claim exists -- poll again in
        :attr:`EngineConfig.claim_poll_s`).  A stale claim (dead or
        TTL-expired holder) is broken and re-contested; a waiter that
        exceeds its own TTL-sized budget runs anyway, so claims can
        delay but never deadlock a sweep.
        """
        if not self._claims_enabled(task):
            return "run"
        while True:
            if task.claimed:
                return "run"
            # A waiter re-checks the store before contesting the
            # lease: the winner's protocol is put-then-release, so a
            # released claim usually means the result is sitting there.
            if task.claim_wait_start and self._shared_hit(
                    task, records, results):
                return "hit"
            if self.cache.claim(task.experiment_id, task.fingerprint):
                task.claimed = True
                if task.claim_wait_start and self._shared_hit(
                        task, records, results):
                    # put landed between our re-check and the claim
                    self._release_claim(task)
                    return "hit"
                self._settle_claim_wait(task)
                return "run"
            if not task.claim_wait_start and self._shared_hit(
                    task, records, results):
                return "hit"  # lost the race but the winner was faster
            holder = self.cache.claim_holder(task.experiment_id,
                                             task.fingerprint)
            now = time.monotonic()
            if holder is None:
                continue  # lease vanished between checks; re-contest
            if task.claim_wait_start == 0.0:
                task.claim_wait_start = now
                task.claim_deadline = now + self.config.claim_ttl_s
                self.cache.note_claim_wait()
            if self.cache.claim_is_stale(holder,
                                         self.config.claim_ttl_s):
                self.cache.break_claim(task.experiment_id,
                                       task.fingerprint)
                continue
            if now >= task.claim_deadline:
                # Waited a full TTL: compute anyway rather than trust
                # the foreign claimant any longer.
                self._settle_claim_wait(task)
                return "run"
            return "wait"

    def _shared_hit(self, task: _Task, records: dict[str, RunRecord],
                    results: dict[str, Any]) -> bool:
        """Serve ``task`` from an entry a foreign claimant stored."""
        with span("engine.lookup", experiment=task.experiment_id,
                  shared=True):
            hit, result = self.cache.get(task.experiment_id,
                                         task.fingerprint)
        if not hit:
            return False
        self._settle_claim_wait(task)
        self._beat()
        results[task.experiment_id] = result
        records[task.experiment_id] = RunRecord(
            experiment_id=task.experiment_id,
            status=STATUS_OK,
            wall_time_s=task.active_s,
            cache_hit=True,
            attempts=task.attempts,
            started_at=task.started_at or wall_now(),
            phases=dict(task.phases),
        )
        return True

    def _store(self, task: _Task, result: Any) -> None:
        if self.cache is None or task.fingerprint is None:
            return
        store_start = time.monotonic()
        with span("engine.store", experiment=task.experiment_id):
            self.cache.put(task.experiment_id, task.fingerprint, result)
        self._release_claim(task)
        task.add_phase("store", time.monotonic() - store_start)
        self._apply_cache_fault(task)

    # -- fault-injection hooks ----------------------------------------

    def _runner_fault(self, task: _Task) -> FaultSpec | None:
        """The fault (if any) to inject into this attempt's runner."""
        plan = self.config.fault_plan
        if plan is None:
            return None
        fault = plan.runner_fault(task.experiment_id, task.attempts)
        if fault is not None:
            self._fired.append(FiredFault(
                task.experiment_id, task.attempts, fault.kind))
        return fault

    def _apply_cache_fault(self, task: _Task) -> None:
        """Tear this experiment's stored entry if the plan says so."""
        plan = self.config.fault_plan
        if plan is None or self.cache is None \
                or task.fingerprint is None:
            return
        fault = plan.cache_fault(task.experiment_id)
        if fault is None:
            return
        path = self.cache.path_for(task.experiment_id, task.fingerprint)
        if tear_cache_entry(path):
            self._fired.append(FiredFault(
                task.experiment_id, task.attempts, fault.kind))

    def _schedule_retry(self, task: _Task,
                        pending: deque[_Task]) -> None:
        """Requeue with exponential backoff and deterministic jitter."""
        delay = self.config.backoff.delay_s(
            task.experiment_id, task.attempts)
        task.ready_at = time.monotonic()
        task.not_before = task.ready_at + delay
        add_counter("engine.retries")
        _log.warning("task.retry", experiment=task.experiment_id,
                     attempt=task.attempts, delay_s=round(delay, 6),
                     error=task.last_error)
        pending.append(task)

    # -- inline executor ----------------------------------------------

    def _run_inline(self, registry, pending: deque[_Task],
                    records: dict[str, RunRecord],
                    results: dict[str, Any]) -> None:
        max_attempts = 1 + self.config.retries
        metrics = current_metrics()
        while pending:
            task = pending.popleft()
            if self._aborted:
                task.last_error = f"aborted: {self._abort_reason}"
                records[task.experiment_id] = self._finalize(
                    task, STATUS_CANCELLED)
                continue
            if self._interrupted:
                task.last_error = ("interrupted: drain signal received "
                                   "before this task launched")
                records[task.experiment_id] = self._finalize(
                    task, STATUS_CANCELLED)
                continue
            claim_state = self._acquire_claim(task, records, results)
            while claim_state == "wait":
                time.sleep(self.config.claim_poll_s)
                if self._interrupted or self._aborted:
                    break
                claim_state = self._acquire_claim(task, records,
                                                  results)
            if claim_state == "hit":
                self._beat()
                continue
            if claim_state == "wait":  # interrupted mid-wait
                self._settle_claim_wait(task)
                task.last_error = ("interrupted: drain signal received "
                                   "while waiting on a foreign claim")
                records[task.experiment_id] = self._finalize(
                    task, STATUS_CANCELLED)
                continue
            task.started_at = wall_now()
            task_sample = (sample_resources() if metrics is not None
                           else None)
            while True:
                task.attempts += 1
                run_start = time.monotonic()
                try:
                    with span("engine.run",
                              experiment=task.experiment_id,
                              attempt=task.attempts):
                        apply_runner_fault(self._runner_fault(task),
                                           allow_exit=False)
                        result = registry[task.experiment_id].runner()
                except Exception as exc:
                    task.add_phase("run",
                                   time.monotonic() - run_start)
                    task.last_error = repr(exc)
                    if task.attempts < max_attempts:
                        delay = self.config.backoff.delay_s(
                            task.experiment_id, task.attempts)
                        if delay > 0:
                            time.sleep(delay)
                            task.add_phase("retry", delay)
                        add_counter("engine.retries")
                        if self._retry_cache_hit(task, records,
                                                 results):
                            break
                        continue
                    records[task.experiment_id] = self._finalize(
                        task, STATUS_FAILED)
                    break
                task.add_phase("run", time.monotonic() - run_start)
                self._store(task, result)
                results[task.experiment_id] = result
                records[task.experiment_id] = self._finalize(
                    task, STATUS_OK)
                break
            self._beat()
            if metrics is not None:
                record_resource_delta(metrics, task_sample,
                                      scope="task")

    # -- process-pool executor ----------------------------------------

    def _run_processes(self, pending: deque[_Task],
                       records: dict[str, RunRecord],
                       results: dict[str, Any]) -> None:
        ctx = _mp_context()
        max_attempts = 1 + self.config.retries
        running: list[_Slot | _ChunkSlot] = []

        while pending or running:
            if self._aborted:
                self._abort_all(running, pending, records)
                break
            if self._interrupted and not running:
                # drained: every in-flight worker has been collected
                self._cancel_pending(pending, records)
                break
            now = time.monotonic()
            chunk_target = self._chunk_target(len(pending))
            deferred: list[_Task] = []
            while (pending and not self._interrupted
                   and len(running) < self.config.jobs):
                task = pending.popleft()
                if task.not_before > now:
                    deferred.append(task)  # backoff window still open
                    continue
                if task.attempts > 0 and self._retry_cache_hit(
                        task, records, results):
                    continue
                claim_state = self._acquire_claim(task, records,
                                                  results)
                if claim_state == "hit":
                    continue
                if claim_state == "wait":
                    task.not_before = (time.monotonic()
                                       + self.config.claim_poll_s)
                    deferred.append(task)
                    continue
                if task.attempts == 0 and chunk_target > 1:
                    batch = [task]
                    while (len(batch) < chunk_target and pending
                           and pending[0].attempts == 0
                           and pending[0].not_before <= now):
                        candidate = pending.popleft()
                        state = self._acquire_claim(candidate, records,
                                                    results)
                        if state == "hit":
                            continue
                        if state == "wait":
                            candidate.not_before = (
                                time.monotonic()
                                + self.config.claim_poll_s)
                            deferred.append(candidate)
                            continue
                        batch.append(candidate)
                    if len(batch) > 1:
                        running.append(self._launch_chunk(ctx, batch))
                        continue
                running.append(self._launch(ctx, task))
            pending.extendleft(reversed(deferred))

            if not running:
                if self._interrupted:
                    continue  # loop back to the drain branch above
                if not pending:
                    break
                # every runnable task is waiting out its backoff or a
                # foreign claim's poll interval
                wake = min(task.not_before for task in pending)
                time.sleep(min(0.5, max(0.0,
                                        wake - time.monotonic())))
                continue

            timeout = self._poll_timeout(running, pending
                                         if len(running)
                                         < self.config.jobs else ())
            # Capped so a cross-thread abort() takes effect promptly
            # even when no per-task deadline is armed.
            timeout = 0.5 if timeout is None else min(timeout, 0.5)
            ready = set(_connection_wait(
                [slot.process.sentinel for slot in running],
                timeout=timeout))
            now = time.monotonic()

            still_running: list[_Slot | _ChunkSlot] = []
            for slot in running:
                timed_out = (slot.process.sentinel not in ready
                             and slot.process.is_alive()
                             and slot.deadline is not None
                             and now >= slot.deadline)
                done = (slot.process.sentinel in ready
                        or not slot.process.is_alive())
                if not (done or timed_out):
                    still_running.append(slot)
                    continue
                if timed_out:
                    self._kill(slot)
                if isinstance(slot, _ChunkSlot):
                    self._collect_chunk(slot, pending, records, results,
                                        max_attempts,
                                        timed_out=timed_out)
                else:
                    self._collect(slot, pending, records, results,
                                  max_attempts, timed_out=timed_out)
            running = still_running

    def _chunk_target(self, n_pending: int) -> int:
        """Fresh tasks to group per worker launch for this refill.

        Chunking amortises process start-up over large sweeps; it never
        engages (target 1) while each worker would get at most ~4
        tasks, under a fault plan (faults are injected per attempt and
        need per-task isolation), or when the operator pinned
        ``chunk_size``.
        """
        if self.config.fault_plan is not None:
            return 1
        if self.config.chunk_size is not None:
            return self.config.chunk_size
        return min(8, max(1, n_pending // (self.config.jobs * 4)))

    def _launch(self, ctx, task: _Task) -> _Slot:
        launched = time.monotonic()
        if task.attempts == 0:
            task.started_at = wall_now()
        if task.ready_at:
            # Split the wait since the task became runnable into the
            # deliberate backoff window (retry) and slot contention
            # (queue).
            waited = max(0.0, launched - task.ready_at)
            backoff_s = (min(waited,
                             max(0.0, task.not_before - task.ready_at))
                         if task.attempts > 0 else 0.0)
            task.add_phase("retry", backoff_s)
            task.add_phase("queue", waited - backoff_s)
        task.attempts += 1
        fault = self._runner_fault(task)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_entry,
            args=(task.experiment_id, child_conn, fault,
                  tracing_enabled(), context_fields() or None),
            name=f"repro-engine-{task.experiment_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (launched + self.config.timeout_s
                    if self.config.timeout_s is not None else None)
        return _Slot(task=task, process=process, conn=parent_conn,
                     deadline=deadline, launched=launched)

    def _launch_chunk(self, ctx, batch: list[_Task]) -> _ChunkSlot:
        launched = time.monotonic()
        for task in batch:
            task.started_at = wall_now()
            if task.ready_at:
                # Fresh tasks only (attempts == 0): the whole wait since
                # becoming runnable is slot contention.
                task.add_phase("queue", max(0.0, launched - task.ready_at))
            task.attempts += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_chunk_entry,
            args=([task.experiment_id for task in batch], child_conn,
                  tracing_enabled(), context_fields() or None),
            name=f"repro-engine-chunk-{batch[0].experiment_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # The per-experiment budget applies to each task in the chunk.
        deadline = (launched + self.config.timeout_s * len(batch)
                    if self.config.timeout_s is not None else None)
        add_counter("engine.chunks")
        observe("engine.chunk_size", len(batch), COUNT_BUCKETS)
        return _ChunkSlot(tasks=batch, process=process,
                          conn=parent_conn, deadline=deadline,
                          launched=launched)

    @staticmethod
    def _poll_timeout(running: list["_Slot | _ChunkSlot"],
                      waiting: Sequence[_Task] = ()) -> float | None:
        wakes = [slot.deadline for slot in running
                 if slot.deadline is not None]
        wakes += [task.not_before for task in waiting]
        if not wakes:
            return None
        return max(0.0, min(wakes) - time.monotonic()) + 0.01

    @staticmethod
    def _kill(slot: "_Slot | _ChunkSlot") -> None:
        slot.process.terminate()
        slot.process.join(timeout=5.0)
        if slot.process.is_alive():
            slot.process.kill()
            slot.process.join(timeout=5.0)

    def _collect(self, slot: _Slot, pending: deque[_Task],
                 records: dict[str, RunRecord],
                 results: dict[str, Any],
                 max_attempts: int, timed_out: bool) -> None:
        task = slot.task
        run_s = time.monotonic() - slot.launched
        task.add_phase("run", run_s)
        record_span("engine.run", slot.launched, run_s,
                    experiment=task.experiment_id,
                    attempt=task.attempts, worker_pid=slot.process.pid,
                    timed_out=timed_out)

        outcome: tuple | None = None
        if not timed_out:
            try:
                if slot.conn.poll(0):
                    outcome = slot.conn.recv()
            except (EOFError, OSError):
                outcome = None
        slot.process.join(timeout=5.0)
        slot.conn.close()

        if outcome is not None and len(outcome) > 2 and outcome[2]:
            trace = current_trace()
            if trace is not None:
                trace.merge_payload(outcome[2])

        if timed_out:
            add_counter("engine.timeouts")
            task.last_error = (
                f"timeout: exceeded {self.config.timeout_s:.1f} s")
            _log.warning("task.timeout",
                         experiment=task.experiment_id,
                         attempt=task.attempts,
                         timeout_s=self.config.timeout_s)
        elif outcome is not None and outcome[0] == "ok":
            self._store(task, outcome[1])
            results[task.experiment_id] = outcome[1]
            records[task.experiment_id] = self._finalize(
                task, STATUS_OK)
            self._beat()
            return
        elif outcome is not None:
            task.last_error = outcome[1]
        else:
            task.last_error = (
                f"worker died without a result "
                f"(exit code {slot.process.exitcode})")
            _log.warning("task.worker_died",
                         experiment=task.experiment_id,
                         attempt=task.attempts,
                         exit_code=slot.process.exitcode)

        if task.attempts < max_attempts:
            self._schedule_retry(task, pending)
            return
        status = STATUS_TIMEOUT if timed_out else STATUS_FAILED
        records[task.experiment_id] = self._finalize(task, status)

    def _collect_chunk(self, slot: _ChunkSlot, pending: deque[_Task],
                       records: dict[str, RunRecord],
                       results: dict[str, Any],
                       max_attempts: int, timed_out: bool) -> None:
        """Drain a chunk worker's per-task outcomes and settle each task.

        Tasks the worker finished are stored/recorded exactly as in the
        single-task path; tasks it never reached (crash, exit, or the
        chunk deadline) are retried individually, so one bad task in a
        chunk cannot take its neighbours' results down with it.
        """
        elapsed = time.monotonic() - slot.launched
        outcomes: dict[str, tuple[str, Any, float]] = {}
        payload = None
        try:
            while slot.conn.poll(0):
                message = slot.conn.recv()
                if message[0] == "task":
                    _, experiment_id, status, value, duration = message
                    outcomes[experiment_id] = (status, value, duration)
                elif message[0] == "done":
                    payload = message[1]
        except (EOFError, OSError):
            pass
        slot.process.join(timeout=5.0)
        slot.conn.close()

        if payload:
            trace = current_trace()
            if trace is not None:
                trace.merge_payload(payload)

        accounted = sum(duration for _, _, duration
                        in outcomes.values())
        unfinished = [task for task in slot.tasks
                      if task.experiment_id not in outcomes]
        # Telemetry only: split the unattributed tail of the chunk's
        # wall time evenly over the tasks that never reported.
        residual = (max(0.0, elapsed - accounted)
                    / max(1, len(unfinished)))

        for task in slot.tasks:
            outcome = outcomes.get(task.experiment_id)
            if outcome is not None:
                status, value, duration = outcome
                task.add_phase("run", duration)
                record_span("engine.run", slot.launched, duration,
                            experiment=task.experiment_id,
                            attempt=task.attempts,
                            worker_pid=slot.process.pid, chunked=True,
                            timed_out=False)
                if status == STATUS_OK:
                    self._store(task, value)
                    results[task.experiment_id] = value
                    records[task.experiment_id] = self._finalize(
                        task, STATUS_OK)
                    self._beat()
                    continue
                task.last_error = value
            else:
                task.add_phase("run", residual)
                record_span("engine.run", slot.launched, residual,
                            experiment=task.experiment_id,
                            attempt=task.attempts,
                            worker_pid=slot.process.pid, chunked=True,
                            timed_out=timed_out)
                if timed_out:
                    add_counter("engine.timeouts")
                    task.last_error = (
                        f"timeout: chunk of {len(slot.tasks)} exceeded "
                        f"{elapsed:.1f} s")
                else:
                    task.last_error = (
                        f"worker exited before a result "
                        f"(exit code {slot.process.exitcode})")
            if task.attempts < max_attempts:
                self._schedule_retry(task, pending)
            else:
                status_final = (STATUS_TIMEOUT
                                if timed_out and outcome is None
                                else STATUS_FAILED)
                records[task.experiment_id] = self._finalize(
                    task, status_final)

    def _finalize(self, task: _Task, status: str) -> RunRecord:
        self._release_claim(task)
        return RunRecord(
            experiment_id=task.experiment_id,
            status=status,
            wall_time_s=task.active_s,
            cache_hit=False,
            attempts=task.attempts,
            error=None if status == STATUS_OK else task.last_error,
            started_at=task.started_at,
            phases=dict(task.phases),
        )


def run_experiments(experiment_ids: Sequence[str] | None = None,
                    *, config: EngineConfig | None = None,
                    **overrides: Any) -> SweepResult:
    """One-call sweep: ``run_experiments(["E-T1"], jobs=4)``.

    Keyword overrides are applied on top of ``config`` (or the
    defaults), so callers rarely need to build an
    :class:`EngineConfig` by hand.
    """
    base = config or EngineConfig()
    if overrides:
        base = replace(base, **overrides)
    return ExecutionEngine(base).run(experiment_ids)
