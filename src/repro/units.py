"""Physical constants and unit helpers used throughout the library.

Internally the library works in SI units (meters, volts, amperes, watts,
seconds, kelvin, farads).  The paper, like most of the VLSI literature,
quotes quantities in mixed engineering units (nm, Angstrom, uA/um, nA/um,
fF, W/cm^2, ...), so this module provides explicit, named conversion
helpers rather than scattering magic powers of ten across the code base.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants
# ---------------------------------------------------------------------------

#: Boltzmann constant [J/K].
BOLTZMANN_K = 1.380649e-23

#: Elementary charge [C].
ELECTRON_CHARGE = 1.602176634e-19

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2 (thermal gate oxide).
EPSILON_SIO2 = 3.9

#: Absolute permittivity of SiO2 [F/m].
EPSILON_OX = EPSILON_SIO2 * EPSILON_0

#: Room temperature used by the ITRS and Eq. (4) of the paper [K].
ROOM_TEMPERATURE_K = 300.0

#: Zero Celsius in kelvin.
ZERO_CELSIUS_K = 273.15

#: Resistivity of copper interconnect, including barrier/scattering
#: degradation typical for the nodes considered [ohm*m].
COPPER_RESISTIVITY = 2.2e-8

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * 1e-9


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * 1e-6


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return value * 1e-3


def cm(value: float) -> float:
    """Convert centimetres to metres."""
    return value * 1e-2


def angstrom(value: float) -> float:
    """Convert Angstrom to metres (1 A = 0.1 nm)."""
    return value * 1e-10


def to_nm(value_m: float) -> float:
    """Convert metres to nanometres."""
    return value_m * 1e9


def to_um(value_m: float) -> float:
    """Convert metres to micrometres."""
    return value_m * 1e6


def to_angstrom(value_m: float) -> float:
    """Convert metres to Angstrom."""
    return value_m * 1e10


# ---------------------------------------------------------------------------
# Current densities (per unit transistor width)
# ---------------------------------------------------------------------------


def ua_per_um(value: float) -> float:
    """Convert microamps-per-micron to amps-per-metre."""
    return value * 1e-6 / 1e-6  # 1 uA/um == 1 A/m


def na_per_um(value: float) -> float:
    """Convert nanoamps-per-micron to amps-per-metre."""
    return value * 1e-3


def to_ua_per_um(value_a_per_m: float) -> float:
    """Convert amps-per-metre to microamps-per-micron."""
    return value_a_per_m


def to_na_per_um(value_a_per_m: float) -> float:
    """Convert amps-per-metre to nanoamps-per-micron."""
    return value_a_per_m * 1e3


# ---------------------------------------------------------------------------
# Capacitance
# ---------------------------------------------------------------------------


def fF(value: float) -> float:  # noqa: N802 - standard engineering symbol
    """Convert femtofarads to farads."""
    return value * 1e-15


def pF(value: float) -> float:  # noqa: N802
    """Convert picofarads to farads."""
    return value * 1e-12


def to_fF(value_f: float) -> float:  # noqa: N802
    """Convert farads to femtofarads."""
    return value_f * 1e15


# ---------------------------------------------------------------------------
# Time / frequency
# ---------------------------------------------------------------------------


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def to_ps(value_s: float) -> float:
    """Convert seconds to picoseconds."""
    return value_s * 1e12


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------


def celsius_to_kelvin(value_c: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return value_c + ZERO_CELSIUS_K


def kelvin_to_celsius(value_k: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return value_k - ZERO_CELSIUS_K


def thermal_voltage(temperature_k: float) -> float:
    """kT/q at the given temperature [V].

    At 300 K this is ~25.85 mV; the subthreshold swing of an ideal MOSFET
    is ln(10) * kT/q ~ 59.5 mV/decade, degraded by the body factor in
    real devices (the paper assumes 85 mV/decade at room temperature).
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    return BOLTZMANN_K * temperature_k / ELECTRON_CHARGE


# ---------------------------------------------------------------------------
# Power density
# ---------------------------------------------------------------------------


def w_per_cm2(value: float) -> float:
    """Convert W/cm^2 to W/m^2."""
    return value * 1e4


def to_w_per_cm2(value_w_per_m2: float) -> float:
    """Convert W/m^2 to W/cm^2."""
    return value_w_per_m2 * 1e-4


# ---------------------------------------------------------------------------
# Mobility
# ---------------------------------------------------------------------------


def cm2_per_vs(value: float) -> float:
    """Convert cm^2/(V*s) mobility to m^2/(V*s)."""
    return value * 1e-4


def to_cm2_per_vs(value_si: float) -> float:
    """Convert m^2/(V*s) mobility to cm^2/(V*s)."""
    return value_si * 1e4


# ---------------------------------------------------------------------------
# Misc helpers
# ---------------------------------------------------------------------------


def db(ratio: float) -> float:
    """Express a power ratio in decibels."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def decades(ratio: float) -> float:
    """Express a ratio in decades (log10)."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.log10(ratio)
