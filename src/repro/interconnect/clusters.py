"""Repeater clusters (Section 2.2, footnote 2).

"Repeater clusters constrain repeater placement to ease floorplanning
and simplify insertion of repeaters late in the design.  Resulting
power densities can exceed 100 W/cm^2, complicating power
distribution."

Two effects are modelled:

* **Placement quantisation.**  Snapping repeaters to a cluster grid of
  pitch ``g`` makes the realised spacing deviate from the Bakoglu
  optimum; the repeated-line delay is convex in the spacing
  (``t(h) = a/h + b h`` at fixed size), so the penalty follows in
  closed form from the optimal design.
* **Power concentration.**  All repeaters of the wires crossing a
  cluster burn their switching power inside the cluster's footprint;
  with hundreds of global wires per channel the local density far
  exceeds the chip average -- the paper's >100 W/cm^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.devices.params import device_for_node
from repro.errors import ModelParameterError
from repro.interconnect.repeaters import (
    GLOBAL_ACTIVITY,
    RepeaterDesign,
    optimal_repeater_design,
)
from repro.itrs import ITRS_2000

#: Repeater layout area per unit inverter of drive [m^2]: a unit
#: inverter footprint of ~40 Leff^2 at the 100 nm node, kept constant
#: in absolute terms for the big top-level drivers (their area is
#: dominated by device width, which the size factor captures).
_UNIT_REPEATER_AREA_M2 = 40 * (65e-9) ** 2

#: Cluster station depth along the wire direction [m]: the row of
#: repeaters plus local power hookup.
CLUSTER_DEPTH_M = 25e-6

#: Share of the segment's switching energy dissipated inside the
#: driving repeater (the rest is burned in the distributed wire
#: resistance; the two are comparable at the Bakoglu optimum).
DRIVER_DISSIPATION_SHARE = 0.5


def snapped_spacing_m(optimal_m: float, grid_m: float) -> float:
    """Realised spacing when repeaters snap to a cluster grid [m].

    The spacing is quantised to the nearest non-zero grid multiple.
    """
    if optimal_m <= 0 or grid_m <= 0:
        raise ModelParameterError("spacings must be positive")
    multiples = max(1, round(optimal_m / grid_m))
    return multiples * grid_m


def spacing_delay_penalty(design: RepeaterDesign,
                          spacing_m: float) -> float:
    """Fractional delay increase at a non-optimal spacing.

    At the optimum the two spacing-dependent delay terms (driver
    charging per segment ~ 1/h, distributed wire ~ h) are equal, so
    ``t(h)/t(h_opt) = (h_opt/h + h/h_opt) / 2`` for the spacing-
    sensitive part; the size-dependent constant part is spacing-
    independent and assumed half the total (p = 1), giving a convex,
    closed-form penalty.
    """
    if spacing_m <= 0:
        raise ModelParameterError("spacing must be positive")
    ratio = spacing_m / design.spacing_m
    variable = 0.5 * (ratio + 1.0 / ratio)
    return 0.5 * (variable - 1.0)


@dataclass(frozen=True)
class ClusterStation:
    """One repeater cluster crossed by a bundle of global wires."""

    node_nm: int
    design: RepeaterDesign
    #: Wires passing through the cluster.
    n_wires: int
    #: Cluster grid pitch (spacing between stations) [m].
    grid_m: float

    def __post_init__(self) -> None:
        if self.n_wires < 1:
            raise ModelParameterError("cluster needs at least one wire")
        if self.grid_m <= 0:
            raise ModelParameterError("grid pitch must be positive")

    @property
    def realised_spacing_m(self) -> float:
        """Snapped repeater spacing [m]."""
        return snapped_spacing_m(self.design.spacing_m, self.grid_m)

    @property
    def delay_penalty(self) -> float:
        """Fractional line-delay cost of the quantised spacing."""
        return spacing_delay_penalty(self.design,
                                     self.realised_spacing_m)

    @property
    def station_power_w(self) -> float:
        """Switching power burned inside the station [W].

        Per wire, one repeater stage: its own (1+p) input capacitance
        switches locally, and the driver dissipates its share of the
        wire segment's charging energy (the remainder is lost in the
        distributed wire resistance along the segment).
        """
        record = ITRS_2000.node(self.node_nm)
        frequency = record.clock_ghz * 1e9
        local_cap = (1.0 + 1.0) * self.design.size \
            * self.design.unit_cap_f
        segment_cap = self.design.wire.c_per_m * self.realised_spacing_m
        per_wire_cap = local_cap \
            + DRIVER_DISSIPATION_SHARE * segment_cap
        energy = per_wire_cap * record.vdd_v ** 2
        return GLOBAL_ACTIVITY * frequency * energy * self.n_wires

    @property
    def station_area_m2(self) -> float:
        """Cluster footprint [m^2]: the repeater row plus hookup depth.

        Width is set by the wire bundle at the global wire pitch (2x
        width for wire+space).
        """
        wire_pitch = 2.0 * units.um(self.design.wire.width_um)
        width = self.n_wires * wire_pitch
        repeater_area = (self.n_wires * self.design.size
                         * _UNIT_REPEATER_AREA_M2)
        return max(width * CLUSTER_DEPTH_M, repeater_area)

    @property
    def power_density_w_cm2(self) -> float:
        """Local power density inside the cluster [W/cm^2]."""
        return units.to_w_per_cm2(self.station_power_w
                                  / self.station_area_m2)

    def exceeds_chip_average(self) -> float:
        """Cluster density over the chip-average power density."""
        record = ITRS_2000.node(self.node_nm)
        return self.power_density_w_cm2 / record.power_density_w_cm2


def cluster_station(node_nm: int, n_wires: int = 256,
                    grid_m: float | None = None) -> ClusterStation:
    """Build a representative global-bus cluster at a node.

    The default grid pitch is 1.3x the optimal spacing (clusters are
    placed where the floorplan allows, not where Bakoglu wants them).
    """
    device = device_for_node(node_nm)
    design = optimal_repeater_design(node_nm, device=device)
    if grid_m is None:
        grid_m = 1.3 * design.spacing_m
    return ClusterStation(node_nm=node_nm, design=design,
                          n_wires=n_wires, grid_m=grid_m)
