"""Optimal repeater insertion and its scaling (Section 2.2, refs [9, 11]).

Bakoglu's classic result: breaking a distributed-RC line with inverters
of size ``k`` every ``h`` metres minimises delay at::

    h_opt = sqrt(2 r0 c0 (1 + p) / (R' C'))
    k_opt = sqrt(r0 C' / (R' c0))

where ``r0``/``c0`` are the unit inverter's output resistance and input
capacitance and ``p`` its parasitic ratio.  The repeated line then
propagates at constant velocity, which is what lets unscaled top-level
wiring meet ITRS cross-chip clock targets -- at the cost the paper
emphasises: repeater *count* explodes from ~1e4 in a large 180 nm MPU to
nearly 1e6 at 50 nm, and the switched wire+repeater capacitance burns
>50 W of signaling power.

Repeated-wire demand per node is a calibrated model input (documented
below), since it derives from the wire-length distribution analyses of
ref [9] rather than from first principles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.gate import GateDesign, GateKind, GateModel
from repro.devices.mosfet import DeviceParams
from repro.devices.params import device_for_node
from repro.errors import ModelParameterError
from repro.interconnect.wire import WireSpec, global_wire, semiglobal_wire
from repro.itrs import ITRS_2000

#: Repeater parasitic-to-input capacitance ratio (logical-effort p).
PARASITIC_RATIO = 1.0

#: Switching activity of global wiring (busy cross-chip buses).
GLOBAL_ACTIVITY = 0.10

#: Total repeated wire length demand per node [m]: (semi-global, global).
#: Calibrated to the wire-length-distribution results of ref [9]: the
#: demand grows steeply with integration (more blocks communicating over
#: distances that no longer scale), reproducing the ~1e4 (180 nm) to
#: ~1e6 (50 nm) repeater-count trajectory quoted by the paper.
REPEATED_LENGTH_BY_NODE_M: dict[int, tuple[float, float]] = {
    180: (25.0, 15.0),
    130: (55.0, 25.0),
    100: (120.0, 40.0),
    70: (260.0, 65.0),
    50: (560.0, 100.0),
    35: (1000.0, 150.0),
}


def _unit_inverter(device: DeviceParams) -> GateModel:
    return GateModel(device, GateDesign(kind=GateKind.INVERTER))


def driver_resistance_ohm(device: DeviceParams, size: float = 1.0) -> float:
    """Effective switching resistance of an inverter [ohm]: Vdd / Ion."""
    model = _unit_inverter(device)
    drive = model.drive_current_a() * size
    if drive <= 0:
        raise ModelParameterError("inverter has no drive current")
    return device.vdd_v / drive


@dataclass(frozen=True)
class RepeaterDesign:
    """Optimal repeater insertion for one wire tier at one node."""

    node_nm: int
    wire: WireSpec
    #: Repeater size in multiples of the unit inverter.
    size: float
    #: Repeater spacing [m].
    spacing_m: float
    #: Delay per unit length of the repeated line [s/m].
    delay_per_m: float
    #: Unit inverter input capacitance [F].
    unit_cap_f: float

    @property
    def velocity_m_per_s(self) -> float:
        """Signal velocity on the repeated line [m/s]."""
        return 1.0 / self.delay_per_m

    def repeater_cap_per_m(self) -> float:
        """Repeater input+parasitic capacitance per metre of line [F/m]."""
        per_repeater = (1.0 + PARASITIC_RATIO) * self.size * self.unit_cap_f
        return per_repeater / self.spacing_m

    def switched_cap_per_m(self) -> float:
        """Total switched capacitance per metre (wire + repeaters) [F/m]."""
        return self.wire.c_per_m + self.repeater_cap_per_m()

    def energy_per_m_per_transition_j(self, vdd_v: float) -> float:
        """Switching energy per metre per transition [J/m]."""
        return self.switched_cap_per_m() * vdd_v ** 2

    def cross_chip_cycles(self, chip_edge_m: float,
                          clock_hz: float) -> float:
        """Clock cycles needed to cross one chip edge."""
        return chip_edge_m * self.delay_per_m * clock_hz


def optimal_repeater_design(node_nm: int, wire: WireSpec | None = None,
                            device: DeviceParams | None = None
                            ) -> RepeaterDesign:
    """Compute Bakoglu-optimal repeaters for a node/tier."""
    if device is None:
        device = device_for_node(node_nm)
    if wire is None:
        wire = global_wire(node_nm)
    unit = _unit_inverter(device)
    r0 = driver_resistance_ohm(device)
    c0 = unit.input_cap_f
    spacing = math.sqrt(2.0 * r0 * c0 * (1.0 + PARASITIC_RATIO)
                        / (wire.r_per_m * wire.c_per_m))
    size = math.sqrt(r0 * wire.c_per_m / (wire.r_per_m * c0))
    # Delay of one optimally-repeated segment, per unit length
    # (Bakoglu): ~ 2.5 sqrt(r0 c0 R' C') with p = 1.
    segment_delay = (0.7 * (r0 / size) * (size * c0 * (1 + PARASITIC_RATIO)
                                          + wire.c_per_m * spacing)
                     + 0.4 * wire.r_per_m * wire.c_per_m * spacing ** 2
                     + 0.7 * wire.r_per_m * spacing * size * c0)
    return RepeaterDesign(
        node_nm=node_nm,
        wire=wire,
        size=size,
        spacing_m=spacing,
        delay_per_m=segment_delay / spacing,
        unit_cap_f=c0,
    )


@dataclass(frozen=True)
class RepeaterScalingPoint:
    """Per-node repeater count / power summary (the E-C2 experiment)."""

    node_nm: int
    semiglobal: RepeaterDesign
    global_tier: RepeaterDesign
    #: Total repeater count across both tiers.
    repeater_count: float
    #: Signaling power (wires + repeaters) at GLOBAL_ACTIVITY [W].
    signaling_power_w: float
    #: Clock cycles to cross the chip edge on the global tier.
    cross_chip_cycles: float


def repeater_scaling(node_nm: int,
                     activity: float = GLOBAL_ACTIVITY
                     ) -> RepeaterScalingPoint:
    """Evaluate the repeater count/power trajectory at one node."""
    if not 0.0 < activity <= 1.0:
        raise ModelParameterError("activity must lie in (0, 1]")
    record = ITRS_2000.node(node_nm)
    semi = optimal_repeater_design(node_nm, semiglobal_wire(node_nm))
    top = optimal_repeater_design(node_nm, global_wire(node_nm))
    semi_len, top_len = REPEATED_LENGTH_BY_NODE_M[node_nm]
    count = semi_len / semi.spacing_m + top_len / top.spacing_m
    frequency = record.clock_ghz * 1e9
    energy_per_transition = (
        semi.energy_per_m_per_transition_j(record.vdd_v) * semi_len
        + top.energy_per_m_per_transition_j(record.vdd_v) * top_len)
    power = activity * frequency * energy_per_transition
    edge_m = record.chip_edge_mm * 1e-3
    return RepeaterScalingPoint(
        node_nm=node_nm,
        semiglobal=semi,
        global_tier=top,
        repeater_count=count,
        signaling_power_w=power,
        cross_chip_cycles=top.cross_chip_cycles(edge_m, frequency),
    )
