"""Per-node RC wire models.

Two tiers matter for the paper's global-signaling analysis:

* the **top-level (global) tier**, which ref [9] keeps *unscaled* --
  fat, thick wires whose geometry stays constant across nodes so that
  cross-chip latency targets remain reachable;
* the **semi-global tier**, which scales with the technology (a fixed
  multiple of the node's minimum top-metal width) and carries the bulk
  of repeated block-to-block wiring.

Capacitance per unit length is nearly geometry-independent for
aspect-ratio-preserving scaling (~0.2-0.25 fF/um total including
coupling); resistance per unit length follows the cross-section.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ModelParameterError
from repro.itrs import ITRS_2000

#: Total capacitance per metre for global-class wires [F/m] (~0.25 fF/um).
GLOBAL_CAP_PER_M = 2.5e-10

#: Total capacitance per metre for semi-global wires [F/m] (~0.2 fF/um).
SEMIGLOBAL_CAP_PER_M = 2.0e-10

#: Fraction of total wire capacitance that couples to neighbours.
COUPLING_FRACTION = 0.5

#: Unscaled top-level geometry used across all nodes (ref [9]).
UNSCALED_GLOBAL_WIDTH_UM = 1.0
UNSCALED_GLOBAL_THICKNESS_UM = 2.0

#: Semi-global width as a multiple of the node's minimum top-metal width.
SEMIGLOBAL_WIDTH_FACTOR = 2.0


@dataclass(frozen=True)
class WireSpec:
    """Geometry and electrical properties of one wiring tier."""

    name: str
    width_um: float
    thickness_um: float
    cap_per_m: float
    resistivity_ohm_m: float = units.COPPER_RESISTIVITY

    def __post_init__(self) -> None:
        if min(self.width_um, self.thickness_um, self.cap_per_m,
               self.resistivity_ohm_m) <= 0:
            raise ModelParameterError(
                f"wire {self.name!r} has non-positive parameters"
            )

    @property
    def cross_section_m2(self) -> float:
        """Conductor cross-section [m^2]."""
        return units.um(self.width_um) * units.um(self.thickness_um)

    @property
    def r_per_m(self) -> float:
        """Resistance per unit length [ohm/m]."""
        return self.resistivity_ohm_m / self.cross_section_m2

    @property
    def c_per_m(self) -> float:
        """Capacitance per unit length [F/m]."""
        return self.cap_per_m

    @property
    def rc_per_m2(self) -> float:
        """Distributed RC product [s/m^2]."""
        return self.r_per_m * self.c_per_m

    def unrepeated_delay_s(self, length_m: float) -> float:
        """Distributed-RC (Elmore) delay of an unrepeated line [s]:
        0.38 R C l^2."""
        if length_m < 0:
            raise ModelParameterError("length cannot be negative")
        return 0.38 * self.rc_per_m2 * length_m ** 2

    def coupling_cap_per_m(self) -> float:
        """Neighbour-coupling portion of the capacitance [F/m]."""
        return COUPLING_FRACTION * self.cap_per_m


def global_wire(node_nm: int) -> WireSpec:
    """The unscaled top-level wire used for cross-chip signaling.

    Geometry is deliberately node-independent (ref [9]): keeping the top
    level fat is what lets ITRS global clock targets be met at all.  The
    node argument is validated against the roadmap for interface
    uniformity.
    """
    ITRS_2000.node(node_nm)  # raises UnknownNodeError for bad nodes
    return WireSpec(
        name=f"global_{node_nm}nm",
        width_um=UNSCALED_GLOBAL_WIDTH_UM,
        thickness_um=UNSCALED_GLOBAL_THICKNESS_UM,
        cap_per_m=GLOBAL_CAP_PER_M,
    )


def semiglobal_wire(node_nm: int) -> WireSpec:
    """The scaled semi-global tier carrying most repeated wiring."""
    record = ITRS_2000.node(node_nm)
    width = SEMIGLOBAL_WIDTH_FACTOR * record.top_metal_min_width_um
    return WireSpec(
        name=f"semiglobal_{node_nm}nm",
        width_um=width,
        thickness_um=width * record.top_metal_aspect_ratio,
        cap_per_m=SEMIGLOBAL_CAP_PER_M,
    )
