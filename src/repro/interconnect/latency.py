"""Cross-chip latency and global clock domains (Section 2.2).

"It appears likely that global signaling will use a slower clock than
localized logic" -- this module quantifies that: how many core cycles a
repeated global wire needs to cross the die, the largest distance
reachable in a single cycle, and the clock divider a synchronous global
domain needs.  Ref [9]'s claim that "using unscaled top level wiring,
ITRS projected global clock frequencies can be met" is checked by
comparing the repeated-wire velocity against the cross-chip distance
per (possibly divided) clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.interconnect.repeaters import optimal_repeater_design
from repro.interconnect.wire import global_wire
from repro.itrs import ITRS_2000

#: Fraction of a cycle usable for wire flight (the rest is flop
#: overhead, clock skew and driver/receiver latency).
CYCLE_UTILISATION = 0.8


@dataclass(frozen=True)
class GlobalLatency:
    """Cross-chip timing picture at one node."""

    node_nm: int
    #: Repeated-wire signal velocity [m/s].
    velocity_m_per_s: float
    #: Chip edge length [m].
    chip_edge_m: float
    #: Core clock [Hz].
    core_clock_hz: float
    #: Core cycles needed to cross one chip edge.
    edge_crossing_cycles: float
    #: Largest distance reachable within one (utilisation-derated)
    #: core cycle [m].
    single_cycle_reach_m: float
    #: Clock divider a synchronous full-chip global domain needs.
    global_clock_divider: int

    @property
    def global_clock_hz(self) -> float:
        """The divided global clock [Hz]."""
        return self.core_clock_hz / self.global_clock_divider

    @property
    def reach_fraction_of_edge(self) -> float:
        """Single-cycle reach as a fraction of the chip edge."""
        return self.single_cycle_reach_m / self.chip_edge_m

    @property
    def meets_itrs_global_clock(self) -> bool:
        """True when the divided global clock crosses the chip per cycle.

        This is ref [9]'s feasibility statement: with unscaled top-level
        wiring and repeaters, a (divided) global clock can still span
        the die synchronously.
        """
        flight_s = self.chip_edge_m / self.velocity_m_per_s
        return flight_s <= CYCLE_UTILISATION / self.global_clock_hz


def global_latency(node_nm: int) -> GlobalLatency:
    """Evaluate the cross-chip latency picture for a roadmap node."""
    record = ITRS_2000.node(node_nm)
    design = optimal_repeater_design(node_nm, global_wire(node_nm))
    velocity = design.velocity_m_per_s
    edge_m = record.chip_edge_mm * 1e-3
    clock_hz = record.clock_ghz * 1e9
    usable_s = CYCLE_UTILISATION / clock_hz
    reach = velocity * usable_s
    crossing_cycles = edge_m / velocity * clock_hz
    divider = max(1, math.ceil(crossing_cycles / CYCLE_UTILISATION))
    return GlobalLatency(
        node_nm=node_nm,
        velocity_m_per_s=velocity,
        chip_edge_m=edge_m,
        core_clock_hz=clock_hz,
        edge_crossing_cycles=crossing_cycles,
        single_cycle_reach_m=reach,
        global_clock_divider=divider,
    )


def latency_roadmap() -> list[GlobalLatency]:
    """Cross-chip latency across the roadmap."""
    return [global_latency(node_nm) for node_nm in ITRS_2000.node_sizes]


def pipeline_stages_for_route(node_nm: int, length_m: float) -> int:
    """Pipeline registers needed to cover a route at the core clock."""
    if length_m < 0:
        raise ModelParameterError("route length cannot be negative")
    if length_m == 0.0:
        return 0
    latency = global_latency(node_nm)
    return max(1, math.ceil(length_m / latency.single_cycle_reach_m))
