"""Alternative global signaling schemes (Section 2.2, refs [8, 12, 13]).

The paper recommends differential and/or low-swing signaling for global
communication: smaller voltage transitions cut both power and the power-
grid current transients, and differential receivers reject the coupled
noise that shielding alone cannot fully suppress (inductive coupling in
particular).  The Alpha 21264's differential low-swing buses, with the
swing limited to 10 % of Vdd, are the paper's existence proof.

Each :class:`SignalingScheme` reports, per metre of bus wire:

* switching energy per transition;
* routing track count per signal bit (shields included);
* peak supply-current transient per transition;
* worst-case received noise as a fraction of the receiver margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.params import device_for_node
from repro.errors import ModelParameterError
from repro.interconnect.noise import (
    capacitive_crosstalk_v,
    differential_residual_noise_v,
    shielded_coupling_fraction,
)
from repro.interconnect.wire import WireSpec, global_wire

#: The Alpha 21264 swing fraction quoted by the paper.
ALPHA_SWING_FRACTION = 0.10

#: Transition (rise) time of a driven global segment, as a fraction of a
#: clock period -- used only to convert energy into peak current.
_TRANSITION_TIME_S = 5e-11


@dataclass(frozen=True)
class SignalingScheme:
    """One signaling strategy on one wire tier."""

    name: str
    wire: WireSpec
    vdd_v: float
    #: Output swing [V].
    swing_v: float
    #: Physical wires per signal bit (pair = 2).
    wires_per_bit: float
    #: Shield tracks per signal bit (shared shields count fractionally).
    shields_per_bit: float
    #: True when the receiver is differential (common-mode rejecting).
    differential: bool

    def __post_init__(self) -> None:
        if not 0.0 < self.swing_v <= self.vdd_v:
            raise ModelParameterError(
                f"swing {self.swing_v} V must lie in (0, Vdd]"
            )
        if self.wires_per_bit < 1:
            raise ModelParameterError("need at least one wire per bit")

    @property
    def tracks_per_bit(self) -> float:
        """Routing tracks consumed per signal bit."""
        return self.wires_per_bit + self.shields_per_bit

    def energy_per_m_j(self) -> float:
        """Supply energy per transition per metre of bus [J/m].

        Charge C * swing is drawn from the Vdd rail, so the energy is
        C * Vdd * swing per wire that moves (one wire of a differential
        pair rises per transition while the other falls; both legs'
        rising edges draw from the rail on alternating transitions, so
        on average one leg charges per transition).
        """
        moving_wires = 1.0
        return (moving_wires * self.wire.c_per_m * self.vdd_v
                * self.swing_v)

    def peak_current_per_m_a(self) -> float:
        """Peak supply current per metre of bus during a transition [A/m]."""
        return self.wire.c_per_m * self.swing_v / _TRANSITION_TIME_S

    def received_noise_v(self, aggressor_swing_v: float | None = None
                         ) -> float:
        """Worst-case noise at the receiver [V].

        Capacitive coupling from a neighbouring wire of the same bus
        (which therefore swings by this scheme's own swing), attenuated
        by shields; differential receivers further reject the
        common-mode part.  Pass ``aggressor_swing_v`` explicitly to
        model a foreign full-swing aggressor.
        """
        if aggressor_swing_v is None:
            aggressor_swing_v = self.swing_v
        coupling = self.wire.coupling_cap_per_m() / self.wire.c_per_m
        coupling *= shielded_coupling_fraction(self.shields_per_bit)
        coupled = capacitive_crosstalk_v(aggressor_swing_v, coupling)
        if self.differential:
            return differential_residual_noise_v(coupled)
        return coupled

    def noise_margin_fraction(self) -> float:
        """Received noise over the receiver margin (swing / 2)."""
        return self.received_noise_v() / (self.swing_v / 2.0)


def full_swing_scheme(node_nm: int,
                      shields_per_bit: float = 1.0) -> SignalingScheme:
    """Conventional repeated full-swing CMOS signaling.

    One wire per bit; ``shields_per_bit`` accounts for the shared shield
    wires the paper notes are already common on long lines.
    """
    device = device_for_node(node_nm)
    return SignalingScheme(
        name="full-swing CMOS",
        wire=global_wire(node_nm),
        vdd_v=device.vdd_v,
        swing_v=device.vdd_v,
        wires_per_bit=1.0,
        shields_per_bit=shields_per_bit,
        differential=False,
    )


def low_swing_differential_scheme(
        node_nm: int,
        swing_fraction: float = ALPHA_SWING_FRACTION) -> SignalingScheme:
    """Differential low-swing signaling (the Alpha 21264 style).

    Two wires per bit, no shields: the pair is its own return path and
    the receiver rejects common-mode coupling.
    """
    if not 0.0 < swing_fraction <= 1.0:
        raise ModelParameterError("swing fraction must lie in (0, 1]")
    device = device_for_node(node_nm)
    return SignalingScheme(
        name="differential low-swing",
        wire=global_wire(node_nm),
        vdd_v=device.vdd_v,
        swing_v=swing_fraction * device.vdd_v,
        wires_per_bit=2.0,
        shields_per_bit=0.0,
        differential=True,
    )


@dataclass(frozen=True)
class SchemeComparison:
    """Head-to-head of two signaling schemes on the same bus."""

    baseline: SignalingScheme
    alternative: SignalingScheme

    @property
    def energy_saving(self) -> float:
        """Fractional per-bit energy saving of the alternative."""
        base = self.baseline.energy_per_m_j() * self.baseline.wires_per_bit
        alt = (self.alternative.energy_per_m_j()
               * self.alternative.wires_per_bit)
        return 1.0 - alt / base

    @property
    def transient_reduction(self) -> float:
        """Peak supply-current reduction factor of the alternative."""
        base = (self.baseline.peak_current_per_m_a()
                * self.baseline.wires_per_bit)
        alt = (self.alternative.peak_current_per_m_a()
               * self.alternative.wires_per_bit)
        return base / alt

    @property
    def area_ratio(self) -> float:
        """Routing-track ratio alternative / baseline.

        The paper notes the increase "may be less than the expected
        factor of 2 due to the use of shield wires" by the baseline.
        """
        return (self.alternative.tracks_per_bit
                / self.baseline.tracks_per_bit)

    @property
    def noise_improvement(self) -> float:
        """Noise-margin-fraction ratio baseline / alternative (> 1 means
        the alternative is more noise-immune)."""
        alt = self.alternative.noise_margin_fraction()
        if alt == 0:
            return float("inf")
        return self.baseline.noise_margin_fraction() / alt


def compare_schemes(node_nm: int,
                    swing_fraction: float = ALPHA_SWING_FRACTION
                    ) -> SchemeComparison:
    """Full-swing vs differential low-swing at one node."""
    return SchemeComparison(
        baseline=full_swing_scheme(node_nm),
        alternative=low_swing_differential_scheme(node_nm, swing_fraction),
    )
