"""Geometric wire capacitance (Sakurai-Tamaru) behind the constant-F/m
assumption.

The wire tiers in :mod:`repro.interconnect.wire` use the standard
~0.2-0.25 fF/um total capacitance.  This module derives that number
from geometry with Sakurai and Tamaru's empirical formulas for a line
over a ground plane with neighbours:

* area + fringe to the plane::

      C_ground / eps = 1.15 (w/h) + 2.80 (t/h)^0.222

* coupling to each neighbour at spacing s::

      C_couple / eps = 0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222
                       ) (s/h)^-1.34

(w = width, t = thickness, h = dielectric height, eps = dielectric
permittivity).  Valid within ~10 % for 0.3 <= w/h, s/h <= 10 and
0.3 <= t/h <= 10 -- the regime every tier here occupies.

The tests confirm that aspect-ratio-preserving scaling keeps the total
per-length capacitance nearly constant (the justification for the
constant used by the tiers) while the *coupling fraction* grows as
spacing shrinks -- the crosstalk trend behind Section 2.2's shielding
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ModelParameterError

#: Relative permittivity of the interlevel dielectric (oxide-class).
DIELECTRIC_K = 3.9


@dataclass(frozen=True)
class WireGeometry:
    """Cross-section of one wire in its dielectric environment."""

    width_um: float
    thickness_um: float
    #: Dielectric height to the plane below [um].
    height_um: float
    #: Edge-to-edge spacing to each neighbour [um].
    spacing_um: float
    dielectric_k: float = DIELECTRIC_K

    def __post_init__(self) -> None:
        if min(self.width_um, self.thickness_um, self.height_um,
               self.spacing_um, self.dielectric_k) <= 0:
            raise ModelParameterError(
                "wire geometry parameters must be positive"
            )

    @property
    def _eps(self) -> float:
        return self.dielectric_k * units.EPSILON_0

    def ground_cap_per_m(self) -> float:
        """Area + fringe capacitance to the plane [F/m]."""
        w_h = self.width_um / self.height_um
        t_h = self.thickness_um / self.height_um
        return self._eps * (1.15 * w_h + 2.80 * t_h ** 0.222)

    def coupling_cap_per_m(self) -> float:
        """Capacitance to ONE neighbour [F/m]."""
        w_h = self.width_um / self.height_um
        t_h = self.thickness_um / self.height_um
        s_h = self.spacing_um / self.height_um
        return self._eps * (0.03 * w_h + 0.83 * t_h
                            - 0.07 * t_h ** 0.222) * s_h ** -1.34

    def total_cap_per_m(self, n_neighbours: int = 2) -> float:
        """Total capacitance with ``n_neighbours`` coupled lines [F/m]."""
        if n_neighbours < 0:
            raise ModelParameterError(
                "neighbour count cannot be negative"
            )
        return (self.ground_cap_per_m()
                + n_neighbours * self.coupling_cap_per_m())

    def coupling_fraction(self, n_neighbours: int = 2) -> float:
        """Share of the total capacitance that couples to neighbours.

        This is the quantity behind the 0.5 coupling fraction the wire
        tiers assume and behind the crosstalk ratios in
        :mod:`repro.interconnect.noise`.
        """
        total = self.total_cap_per_m(n_neighbours)
        return n_neighbours * self.coupling_cap_per_m() / total

    def scaled(self, factor: float) -> "WireGeometry":
        """Shrink every dimension by ``factor`` (aspect-preserving)."""
        if factor <= 0:
            raise ModelParameterError("scale factor must be positive")
        return WireGeometry(
            width_um=self.width_um * factor,
            thickness_um=self.thickness_um * factor,
            height_um=self.height_um * factor,
            spacing_um=self.spacing_um * factor,
            dielectric_k=self.dielectric_k,
        )


def global_tier_geometry() -> WireGeometry:
    """The unscaled top-level wire of :func:`repro.interconnect.wire
    .global_wire`, in its dielectric context."""
    return WireGeometry(width_um=1.0, thickness_um=2.0, height_um=1.0,
                        spacing_um=1.0)


def validates_constant_cap_assumption(tolerance: float = 0.15) -> bool:
    """Check the tiers' constant-F/m assumption against the formulas.

    The geometric total for the global tier must land within
    ``tolerance`` of the 0.25 fF/um the tier model uses.
    """
    from repro.interconnect.wire import GLOBAL_CAP_PER_M
    geometric = global_tier_geometry().total_cap_per_m()
    return abs(geometric - GLOBAL_CAP_PER_M) / GLOBAL_CAP_PER_M \
        <= tolerance
