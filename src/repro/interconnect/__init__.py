"""Global interconnect models (Section 2.2 of the paper).

Per-node RC wire models for the scaled (semi-global) and unscaled
(top-level) wiring tiers, Bakoglu-style optimal repeater insertion with
the count/power scaling analysis of refs [9, 11], alternative signaling
schemes (low-swing, differential) with their energy/noise/area
trade-offs, and crosstalk / inductive-coupling estimates.
"""

from repro.interconnect.wire import WireSpec, global_wire, semiglobal_wire
from repro.interconnect.repeaters import (
    RepeaterDesign,
    RepeaterScalingPoint,
    optimal_repeater_design,
    repeater_scaling,
)
from repro.interconnect.signaling import (
    SignalingScheme,
    full_swing_scheme,
    low_swing_differential_scheme,
    compare_schemes,
)
from repro.interconnect.noise import (
    capacitive_crosstalk_v,
    differential_residual_noise_v,
    shielded_coupling_fraction,
)
from repro.interconnect.latency import (
    GlobalLatency,
    global_latency,
    latency_roadmap,
    pipeline_stages_for_route,
)
from repro.interconnect.clusters import (
    ClusterStation,
    cluster_station,
    snapped_spacing_m,
    spacing_delay_penalty,
)
from repro.interconnect.capacitance import (
    WireGeometry,
    global_tier_geometry,
)

__all__ = [
    "WireSpec",
    "global_wire",
    "semiglobal_wire",
    "RepeaterDesign",
    "RepeaterScalingPoint",
    "optimal_repeater_design",
    "repeater_scaling",
    "SignalingScheme",
    "full_swing_scheme",
    "low_swing_differential_scheme",
    "compare_schemes",
    "capacitive_crosstalk_v",
    "differential_residual_noise_v",
    "shielded_coupling_fraction",
    "GlobalLatency",
    "global_latency",
    "latency_roadmap",
    "pipeline_stages_for_route",
    "ClusterStation",
    "cluster_station",
    "snapped_spacing_m",
    "spacing_delay_penalty",
    "WireGeometry",
    "global_tier_geometry",
]
