"""Coupling-noise estimates for global signaling (Section 2.2, ref [13]).

Simple, explicit first-order models: capacitive crosstalk through the
coupling fraction of the wire capacitance; shields divert a fixed share
of the coupling field; a differential receiver rejects all but the
mismatch-limited residue of common-mode noise; and an inductive term for
wide buses switching simultaneously, which shielding attenuates far less
effectively than it attenuates capacitive coupling -- the paper's stated
reason low-swing differential signaling remains necessary.
"""

from __future__ import annotations

import math

from repro.errors import ModelParameterError

#: Fraction of capacitive coupling remaining per shield track.
SHIELD_LEAKAGE = 0.15

#: Fraction of *inductive* coupling remaining with shields: return paths
#: help, but long-range mutual inductance survives (ref [13]).
SHIELD_INDUCTIVE_LEAKAGE = 0.6

#: Differential pair mismatch: fraction of common-mode that converts to
#: differential noise at the receiver.
DIFFERENTIAL_MISMATCH = 0.05

#: Mutual inductance between adjacent global wires [H/m].
MUTUAL_INDUCTANCE_PER_M = 4.0e-7


def capacitive_crosstalk_v(aggressor_swing_v: float,
                           coupling_ratio: float) -> float:
    """Victim noise from one aggressor transition [V].

    ``coupling_ratio`` is Cc / Ctotal of the victim wire.
    """
    if aggressor_swing_v < 0:
        raise ModelParameterError("aggressor swing cannot be negative")
    if not 0.0 <= coupling_ratio <= 1.0:
        raise ModelParameterError("coupling ratio must lie in [0, 1]")
    return aggressor_swing_v * coupling_ratio


def shielded_coupling_fraction(shields_per_bit: float) -> float:
    """Residual capacitive coupling with ``shields_per_bit`` shields."""
    if shields_per_bit < 0:
        raise ModelParameterError("shield count cannot be negative")
    return SHIELD_LEAKAGE ** min(shields_per_bit, 2.0) \
        if shields_per_bit >= 1.0 else 1.0


def differential_residual_noise_v(common_mode_v: float) -> float:
    """Noise surviving a differential receiver [V]."""
    if common_mode_v < 0:
        raise ModelParameterError("noise cannot be negative")
    return DIFFERENTIAL_MISMATCH * common_mode_v


def inductive_noise_v(n_aggressors: int, di_dt_a_per_s: float,
                      coupled_length_m: float,
                      shielded: bool = False) -> float:
    """L di/dt noise induced on a victim by a switching bus [V].

    Mutual inductance falls off slowly with distance, so the noise grows
    with the number of simultaneously-switching aggressors roughly as
    sqrt(n) (partial cancellation of far aggressors) and shields only
    attenuate it by :data:`SHIELD_INDUCTIVE_LEAKAGE`.
    """
    if n_aggressors < 0:
        raise ModelParameterError("aggressor count cannot be negative")
    if coupled_length_m < 0:
        raise ModelParameterError("length cannot be negative")
    noise = (MUTUAL_INDUCTANCE_PER_M * coupled_length_m * di_dt_a_per_s
             * math.sqrt(float(n_aggressors)))
    if shielded:
        noise *= SHIELD_INDUCTIVE_LEAKAGE
    return noise
