"""Lumped thermal RC network of the die / spreader / heat-sink stack.

The DTM simulator needs thermal *dynamics*, not just the steady state of
Eq. (1): the die heats in milliseconds while the heat sink responds in
tens of seconds, which is exactly the separation of time scales that
makes sensor-driven throttling effective.

The stack is a chain of stages, each with a heat capacity and a thermal
resistance toward ambient-side; power enters at the junction (stage 0).
Integration is explicit Euler with an automatic sub-stepping rule that
keeps the step below a fraction of the fastest *stage* time constant
C_i / g_i, where g_i sums every conductance touching the stage (its
outward resistance plus, for interior stages, the upstream one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.itrs.packaging import AMBIENT_C

#: Explicit-Euler stability/accuracy margin: dt <= margin * min(C/g),
#: where g is each stage's total conductance (see _min_stage_time_s).
_EULER_MARGIN = 0.2


@dataclass(frozen=True)
class ThermalStage:
    """One stage of the stack: a heat capacity and its outward resistance."""

    name: str
    #: Heat capacity [J/K].
    capacity_j_per_k: float
    #: Resistance from this stage toward the next (or ambient) [C/W].
    resistance_c_per_w: float

    def __post_init__(self) -> None:
        if self.capacity_j_per_k <= 0 or self.resistance_c_per_w <= 0:
            raise ModelParameterError(
                f"thermal stage {self.name!r} needs positive R and C"
            )


class ThermalNetwork:
    """A chain of :class:`ThermalStage` between junction and ambient."""

    def __init__(self, stages: list[ThermalStage],
                 t_ambient_c: float = AMBIENT_C):
        if not stages:
            raise ModelParameterError("network needs at least one stage")
        self.stages = list(stages)
        self.t_ambient_c = t_ambient_c
        self.temperatures_c = [t_ambient_c] * len(stages)

    @property
    def theta_ja(self) -> float:
        """Total junction-to-ambient resistance [C/W]."""
        return sum(stage.resistance_c_per_w for stage in self.stages)

    @property
    def junction_c(self) -> float:
        """Current junction temperature [C]."""
        return self.temperatures_c[0]

    def reset(self, t_c: float | None = None) -> None:
        """Set every stage to ``t_c`` (default: ambient)."""
        value = self.t_ambient_c if t_c is None else t_c
        self.temperatures_c = [value] * len(self.stages)

    def steady_state_c(self, power_w: float) -> list[float]:
        """Steady-state temperature of every stage at constant power [C]."""
        if power_w < 0:
            raise ModelParameterError("power cannot be negative")
        temperatures = []
        downstream = self.theta_ja
        for stage in self.stages:
            temperatures.append(self.t_ambient_c + power_w * downstream)
            downstream -= stage.resistance_c_per_w
        return temperatures

    def settle(self, power_w: float) -> None:
        """Jump the network to its steady state at ``power_w``."""
        self.temperatures_c = self.steady_state_c(power_w)

    def _min_stage_time_s(self) -> float:
        """Fastest per-stage time constant C_i / g_i [s].

        The explicit-Euler update of stage ``i`` has the Jacobian
        diagonal ``-g_i / C_i`` with ``g_i`` the *sum* of the stage's
        conductances: ``1/R_i`` toward ambient-side plus, for interior
        stages, ``1/R_{i-1}`` from upstream.  Bounding the sub-step by
        ``min(R_i C_i)`` alone (the old rule) misses the upstream term,
        so a stack with a small upstream resistance could violate the
        stability bound and oscillate or diverge.
        """
        fastest = float("inf")
        for index, stage in enumerate(self.stages):
            conductance = 1.0 / stage.resistance_c_per_w
            if index > 0:
                conductance += \
                    1.0 / self.stages[index - 1].resistance_c_per_w
            fastest = min(fastest, stage.capacity_j_per_k / conductance)
        return fastest

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the network by ``dt_s`` with power injected at stage 0.

        Returns the junction temperature after the step [C].
        """
        if power_w < 0:
            raise ModelParameterError("power cannot be negative")
        if dt_s <= 0:
            raise ModelParameterError("time step must be positive")
        max_sub = _EULER_MARGIN * self._min_stage_time_s()
        n_sub = max(1, int(dt_s / max_sub) + 1)
        sub_dt = dt_s / n_sub
        n_stages = len(self.stages)
        for _ in range(n_sub):
            temps = self.temperatures_c
            flows_out = []
            for index, stage in enumerate(self.stages):
                downstream_t = (temps[index + 1] if index + 1 < n_stages
                                else self.t_ambient_c)
                flows_out.append((temps[index] - downstream_t)
                                 / stage.resistance_c_per_w)
            new_temps = []
            for index, stage in enumerate(self.stages):
                inflow = power_w if index == 0 else flows_out[index - 1]
                delta = (inflow - flows_out[index]) * sub_dt \
                    / stage.capacity_j_per_k
                new_temps.append(temps[index] + delta)
            self.temperatures_c = new_temps
        return self.junction_c


def default_thermal_network(theta_ja_total: float,
                            t_ambient_c: float = AMBIENT_C
                            ) -> ThermalNetwork:
    """Build a three-stage die/spreader/sink stack with total theta_ja.

    The resistance split (20/30/50 %) and heat capacities are typical of
    a desktop processor package: the die responds in ~10 ms, the
    spreader in ~1 s, the sink in ~100 s.
    """
    if theta_ja_total <= 0:
        raise ModelParameterError("theta_ja must be positive")
    return ThermalNetwork([
        ThermalStage("die", capacity_j_per_k=0.3,
                     resistance_c_per_w=0.20 * theta_ja_total),
        ThermalStage("spreader", capacity_j_per_k=40.0,
                     resistance_c_per_w=0.30 * theta_ja_total),
        ThermalStage("heat sink", capacity_j_per_k=400.0,
                     resistance_c_per_w=0.50 * theta_ja_total),
    ], t_ambient_c=t_ambient_c)
