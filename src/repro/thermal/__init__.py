"""Thermal and packaging models (Section 2.1 of the paper).

Eq. (1)'s junction-to-ambient thermal resistance model, a packaging /
cooling-solution catalog with the paper's cost cliffs, a lumped thermal
RC network of the die/spreader/heat-sink stack, the Pentium-4-style
on-die thermal sensor, and a dynamic thermal management (DTM) simulator
that closes the sensor -> clock-throttle feedback loop.
"""

from repro.thermal.package import (
    CoolingSolution,
    COOLING_CATALOG,
    EFFECTIVE_WORST_CASE_FRACTION,
    cheapest_cooling,
    cooling_cost_usd,
    junction_temperature_c,
    max_power_w,
    theta_ja,
    dtm_packaging_benefit,
)
from repro.thermal.rc_network import ThermalNetwork, ThermalStage, \
    default_thermal_network
from repro.thermal.sensor import ThermalSensor
from repro.thermal.dtm import DtmController, DtmResult, simulate_dtm
from repro.thermal.dvs import (
    DvsController,
    DvsResult,
    OperatingPoint,
    dvs_vs_throttling_throughput,
    simulate_dvs,
)
from repro.thermal.electrothermal import (
    leakage_amplification,
    runaway_theta,
    solve_operating_point,
)
from repro.thermal.workloads import (
    PowerTrace,
    power_virus_trace,
    realistic_app_trace,
    bursty_trace,
)

__all__ = [
    "CoolingSolution",
    "COOLING_CATALOG",
    "EFFECTIVE_WORST_CASE_FRACTION",
    "cheapest_cooling",
    "cooling_cost_usd",
    "junction_temperature_c",
    "max_power_w",
    "theta_ja",
    "dtm_packaging_benefit",
    "ThermalNetwork",
    "ThermalStage",
    "default_thermal_network",
    "ThermalSensor",
    "DtmController",
    "DtmResult",
    "simulate_dtm",
    "DvsController",
    "DvsResult",
    "OperatingPoint",
    "dvs_vs_throttling_throughput",
    "simulate_dvs",
    "leakage_amplification",
    "runaway_theta",
    "solve_operating_point",
    "PowerTrace",
    "power_virus_trace",
    "realistic_app_trace",
    "bursty_trace",
]
