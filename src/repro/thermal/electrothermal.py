"""Electrothermal feedback: leakage-temperature coupling and runaway.

The paper treats its two headline problems -- packaging-limited heat
removal (Section 2.1) and exponentially-growing subthreshold leakage
(Section 3) -- in separate sections, but on a real die they couple:
leakage grows steeply with junction temperature, the extra leakage
power raises the junction temperature further, and past a critical
package resistance the fixed point disappears entirely (thermal
runaway).  This module closes that loop:

* :func:`solve_operating_point` -- fixed-point solve of
  ``Tj = Ta + theta * (Pdyn + Pleak(Tj))`` by bisection on the
  monotone residual;
* :func:`runaway_theta` -- the critical junction-to-ambient resistance
  beyond which no stable operating point exists below the search
  ceiling;
* :func:`leakage_amplification` -- how much larger the settled leakage
  is than the naive room-temperature estimate, which is exactly the
  correction the Section 3.1 chip-leakage numbers need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    CalibrationError,
    InfeasibleConstraintError,
    ModelParameterError,
)
from repro.itrs.packaging import AMBIENT_C
from repro.obs import TEMPERATURE_BUCKETS, add_counter, observe, span
from repro.power.static import chip_static_power_w
from repro.reliability.guard import FALLBACK_RELAXATION, guarded_solve

#: Highest junction temperature considered physical / searchable [C].
T_SEARCH_MAX_C = 400.0


def chip_leakage_at_c(node_nm: int, junction_c: float) -> float:
    """Chip leakage power at a junction temperature [W]."""
    if junction_c < -55.0:
        raise ModelParameterError("junction temperature below -55 C")
    return chip_static_power_w(node_nm,
                               temperature_k=junction_c + 273.15)


@dataclass(frozen=True)
class OperatingPoint:
    """A settled electrothermal operating point."""

    node_nm: int
    theta_ja: float
    dynamic_power_w: float
    junction_c: float
    leakage_w: float

    @property
    def total_power_w(self) -> float:
        """Dynamic plus settled leakage [W]."""
        return self.dynamic_power_w + self.leakage_w

    @property
    def leakage_fraction(self) -> float:
        """Leakage share of the total power."""
        return self.leakage_w / self.total_power_w


def solve_operating_point(node_nm: int, theta_ja: float,
                          dynamic_power_w: float,
                          t_ambient_c: float = AMBIENT_C, *,
                          xtol: float = 1e-6,
                          max_iter: int = 100) -> OperatingPoint:
    """Find the stable junction temperature with leakage feedback.

    The residual ``f(T) = Ta + theta (Pdyn + Pleak(T)) - T`` is strictly
    decreasing in ``-T`` ... concretely: f(Ta) > 0 always, and a stable
    point exists iff f crosses zero below :data:`T_SEARCH_MAX_C`.
    Raises :class:`InfeasibleConstraintError` on thermal runaway, and a
    diagnostics-carrying :class:`~repro.errors.CalibrationError` when
    the guarded solve (Brent primary, damped-relaxation restart
    fallback) cannot converge within ``max_iter`` at ``xtol``.
    """
    if theta_ja <= 0:
        raise ModelParameterError("theta_ja must be positive")
    if dynamic_power_w < 0:
        raise ModelParameterError("dynamic power cannot be negative")

    def residual(junction_c: float) -> float:
        total = dynamic_power_w + chip_leakage_at_c(node_nm, junction_c)
        return t_ambient_c + theta_ja * total - junction_c

    if residual(T_SEARCH_MAX_C) > 0:
        raise InfeasibleConstraintError(
            f"thermal runaway: no operating point below "
            f"{T_SEARCH_MAX_C} C at theta_ja = {theta_ja} C/W with "
            f"{dynamic_power_w} W dynamic at {node_nm} nm"
        )
    with span("thermal.operating_point", node_nm=node_nm):
        junction = guarded_solve(
            residual, t_ambient_c, T_SEARCH_MAX_C,
            name=f"electrothermal@{node_nm}nm",
            xtol=xtol, max_iter=max_iter,
            fallback=FALLBACK_RELAXATION).root
        observe("thermal.junction_c", junction, TEMPERATURE_BUCKETS)
    return OperatingPoint(
        node_nm=node_nm,
        theta_ja=theta_ja,
        dynamic_power_w=dynamic_power_w,
        junction_c=junction,
        leakage_w=chip_leakage_at_c(node_nm, junction),
    )


def leakage_amplification(node_nm: int, theta_ja: float,
                          dynamic_power_w: float,
                          t_ambient_c: float = AMBIENT_C) -> float:
    """Settled leakage over the room-temperature (300 K) estimate.

    The Section 3.1 chip-leakage numbers quoted at 300 K understate the
    real burden by this factor once the die self-heats.
    """
    point = solve_operating_point(node_nm, theta_ja, dynamic_power_w,
                                  t_ambient_c)
    room = chip_static_power_w(node_nm, temperature_k=300.0)
    return point.leakage_w / room


def runaway_theta(node_nm: int, dynamic_power_w: float,
                  t_ambient_c: float = AMBIENT_C,
                  theta_max: float = 10.0) -> float:
    """Critical theta_ja beyond which thermal runaway occurs [C/W].

    Bisection on the existence of a stable operating point.  A value
    comfortably above the packaging requirement means the design has
    electrothermal margin; a value near it means the leakage feedback
    is eating the thermal budget.
    """
    if dynamic_power_w < 0:
        raise ModelParameterError("dynamic power cannot be negative")

    def stable(theta: float) -> bool:
        add_counter("thermal.stability_probes")
        try:
            solve_operating_point(node_nm, theta, dynamic_power_w,
                                  t_ambient_c)
            return True
        except (InfeasibleConstraintError, CalibrationError):
            # near the tangent bifurcation the fixed point is marginal;
            # a non-converging solve is conservatively "unstable"
            return False

    if not stable(1e-3):
        raise InfeasibleConstraintError(
            f"{dynamic_power_w} W at {node_nm} nm runs away even with "
            "a near-ideal package"
        )
    if stable(theta_max):
        return theta_max
    low, high = 1e-3, theta_max
    for _ in range(60):
        mid = 0.5 * (low + high)
        if stable(mid):
            low = mid
        else:
            high = mid
    return low
