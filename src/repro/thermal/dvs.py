"""Dynamic voltage scaling as a thermal-management lever (Section 2.1).

"Transmeta's approach dynamically varies the supply voltage when the
CPU is not heavily loaded."  Against Pentium-4-style clock duty-cycling,
DVS wins on the throughput/power curve: at a scaled supply v (and the
frequency the logic then sustains), power falls roughly as v^3 while
throughput falls only as the frequency -- so shedding a given number of
watts costs less performance than gating the clock.

The controller steps through a table of (voltage, relative frequency)
operating points when the thermal sensor trips, and back up when it
releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.thermal.dtm import DtmResult
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.sensor import ThermalSensor
from repro.thermal.workloads import PowerTrace


@dataclass(frozen=True)
class OperatingPoint:
    """One DVS table entry."""

    #: Supply relative to nominal.
    vdd_ratio: float
    #: Sustainable clock relative to nominal at that supply.
    freq_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.vdd_ratio <= 1.0:
            raise ModelParameterError("vdd_ratio must lie in (0, 1]")
        if not 0.0 < self.freq_ratio <= 1.0:
            raise ModelParameterError("freq_ratio must lie in (0, 1]")

    @property
    def power_ratio(self) -> float:
        """Dynamic power relative to nominal: f * V^2."""
        return self.freq_ratio * self.vdd_ratio ** 2

    @property
    def throughput_ratio(self) -> float:
        """Delivered compute relative to nominal (frequency-bound)."""
        return self.freq_ratio


#: A typical four-step DVS ladder: frequency tracks the supply linearly
#: in the near-nominal regime (alpha-power exponent ~1 at these
#: overdrives), giving the classic ~cubic power-frequency relation.
DEFAULT_LADDER: tuple[OperatingPoint, ...] = (
    OperatingPoint(vdd_ratio=1.00, freq_ratio=1.00),
    OperatingPoint(vdd_ratio=0.90, freq_ratio=0.87),
    OperatingPoint(vdd_ratio=0.80, freq_ratio=0.73),
    OperatingPoint(vdd_ratio=0.70, freq_ratio=0.58),
)


@dataclass
class DvsController:
    """Sensor-driven voltage/frequency stepping."""

    sensor: ThermalSensor
    ladder: tuple[OperatingPoint, ...] = DEFAULT_LADDER
    _level: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ModelParameterError("ladder cannot be empty")
        powers = [point.power_ratio for point in self.ladder]
        if any(a < b for a, b in zip(powers, powers[1:])):
            raise ModelParameterError(
                "ladder must be ordered from fastest to slowest"
            )

    @property
    def level(self) -> int:
        """Current ladder index (0 = nominal)."""
        return self._level

    def modulate(self, demanded_power_w: float,
                 junction_c: float) -> tuple[float, float]:
        """One control step: returns (delivered power, throughput ratio).

        Trips step one rung down the ladder; releases step one rung up.
        """
        tripped = self.sensor.sample(junction_c)
        if tripped and self._level + 1 < len(self.ladder):
            self._level += 1
        elif not tripped and self._level > 0:
            self._level -= 1
        point = self.ladder[self._level]
        return demanded_power_w * point.power_ratio, \
            point.throughput_ratio


@dataclass(frozen=True)
class DvsResult:
    """Outcome of one DVS simulation run."""

    junction_c: tuple[float, ...]
    delivered_w: tuple[float, ...]
    throughput_ratio: tuple[float, ...]
    dt_s: float

    @property
    def max_junction_c(self) -> float:
        """Hottest junction temperature reached [C]."""
        return max(self.junction_c)

    @property
    def throughput_fraction(self) -> float:
        """Mean delivered throughput relative to nominal."""
        return sum(self.throughput_ratio) / len(self.throughput_ratio)

    @property
    def scaled_fraction(self) -> float:
        """Fraction of samples spent below the nominal operating point."""
        return sum(1 for ratio in self.throughput_ratio if ratio < 1.0) \
            / len(self.throughput_ratio)


def simulate_dvs(trace: PowerTrace, network: ThermalNetwork,
                 controller: DvsController,
                 preheat_power_w: float | None = None) -> DvsResult:
    """Run a power trace through the stack under DVS control."""
    if preheat_power_w is None:
        preheat_power_w = 0.5 * trace.peak_w
    network.settle(preheat_power_w)
    junction: list[float] = []
    delivered: list[float] = []
    throughput: list[float] = []
    for demand_w in trace.samples_w:
        power, ratio = controller.modulate(demand_w, network.junction_c)
        network.step(power, trace.dt_s)
        junction.append(network.junction_c)
        delivered.append(power)
        throughput.append(ratio)
    return DvsResult(
        junction_c=tuple(junction),
        delivered_w=tuple(delivered),
        throughput_ratio=tuple(throughput),
        dt_s=trace.dt_s,
    )


def dvs_vs_throttling_throughput(dvs: DvsResult,
                                 throttling: DtmResult) -> float:
    """Throughput advantage of DVS over duty-cycle throttling.

    Positive values mean DVS delivered more compute under the same
    thermal envelope -- the Transmeta argument.
    """
    return dvs.throughput_fraction - throttling.throughput_fraction
