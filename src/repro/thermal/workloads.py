"""Synthetic power traces for the DTM simulator (Section 2.1).

The paper's packaging argument rests on the gap between two workloads:

* the **theoretical worst case** -- a synthetic "power virus" code
  sequence that keeps every unit busy, "not realized in practice";
* **power-hungry real applications**, whose sustained power is about
  75 % of the virus (refs [7, 8]).

These generators produce deterministic, seedable sampled power traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.thermal.package import EFFECTIVE_WORST_CASE_FRACTION


@dataclass(frozen=True)
class PowerTrace:
    """A sampled chip-power demand trace."""

    #: Sample period [s].
    dt_s: float
    #: Power demand per sample [W].
    samples_w: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise ModelParameterError("sample period must be positive")
        if not self.samples_w:
            raise ModelParameterError("trace has no samples")
        if min(self.samples_w) < 0:
            raise ModelParameterError("power samples cannot be negative")

    @property
    def duration_s(self) -> float:
        """Total trace duration [s]."""
        return self.dt_s * len(self.samples_w)

    @property
    def peak_w(self) -> float:
        """Largest sample [W]."""
        return max(self.samples_w)

    @property
    def mean_w(self) -> float:
        """Average demand [W]."""
        return sum(self.samples_w) / len(self.samples_w)


def power_virus_trace(p_max_w: float, duration_s: float,
                      dt_s: float = 0.01) -> PowerTrace:
    """Theoretical worst case: flat-out maximum power."""
    if p_max_w <= 0 or duration_s <= 0:
        raise ModelParameterError("power and duration must be positive")
    n_samples = max(1, round(duration_s / dt_s))
    return PowerTrace(dt_s=dt_s, samples_w=(p_max_w,) * n_samples)


def realistic_app_trace(p_max_w: float, duration_s: float,
                        dt_s: float = 0.01, seed: int = 0,
                        sustained_fraction: float =
                        EFFECTIVE_WORST_CASE_FRACTION) -> PowerTrace:
    """A power-hungry real application.

    Sustains ~``sustained_fraction`` of the virus power with correlated
    fluctuations and occasional short excursions toward the maximum
    (individual hot loops), so the *sustained* thermal load matches the
    paper's 75 % effective worst case while instantaneous demand can
    still touch p_max.
    """
    if not 0.0 < sustained_fraction <= 1.0:
        raise ModelParameterError("sustained fraction must lie in (0, 1]")
    rng = random.Random(seed)
    n_samples = max(1, round(duration_s / dt_s))
    level = sustained_fraction * p_max_w
    samples = []
    current = level
    for index in range(n_samples):
        # AR(1) fluctuation around the sustained level.
        current += 0.2 * (level - current) + rng.gauss(0.0, 0.03 * p_max_w)
        value = current
        # Short full-power burst roughly every 2 seconds of trace.
        if rng.random() < dt_s / 2.0:
            value = p_max_w
        samples.append(min(max(value, 0.2 * p_max_w), p_max_w))
    return PowerTrace(dt_s=dt_s, samples_w=tuple(samples))


def bursty_trace(p_max_w: float, duration_s: float, dt_s: float = 0.01,
                 seed: int = 0, duty: float = 0.5,
                 burst_s: float = 1.0) -> PowerTrace:
    """Alternating compute/idle phases (duty-cycled load)."""
    if not 0.0 < duty <= 1.0:
        raise ModelParameterError("duty must lie in (0, 1]")
    if burst_s <= 0:
        raise ModelParameterError("burst length must be positive")
    rng = random.Random(seed)
    n_samples = max(1, round(duration_s / dt_s))
    samples = []
    time_in_phase = 0.0
    busy = True
    phase_len = burst_s * duty
    for _ in range(n_samples):
        samples.append(p_max_w if busy else 0.15 * p_max_w)
        time_in_phase += dt_s
        if time_in_phase >= phase_len:
            time_in_phase = 0.0
            busy = not busy
            base = burst_s * (duty if busy else (1.0 - duty))
            phase_len = base * (0.7 + 0.6 * rng.random())
    return PowerTrace(dt_s=dt_s, samples_w=tuple(samples))
