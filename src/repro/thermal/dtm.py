"""Dynamic thermal management simulator (Section 2.1, refs [6, 7]).

Closes the loop the paper describes: an on-die diode sensor samples the
junction temperature; when it trips, the clock is throttled (Pentium-4
style duty-cycle reduction), cutting power and throughput until the die
cools back through the hysteresis band.

The headline experiment (E-C1): a package sized for only the *effective*
worst case (75 % of the power virus) still keeps the junction at its
limit when a virus runs -- DTM converts the shortfall into a bounded
throughput loss instead of a thermal violation -- while realistic
applications run essentially unthrottled.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.sensor import ThermalSensor
from repro.thermal.workloads import PowerTrace

#: Fraction of demanded power that survives throttling (P4-style 50 %
#: clock duty modulation; leakage and clocking overhead keep it > duty).
DEFAULT_THROTTLE_FACTOR = 0.5


@dataclass
class DtmController:
    """Sensor-driven clock throttle."""

    sensor: ThermalSensor
    throttle_factor: float = DEFAULT_THROTTLE_FACTOR

    def __post_init__(self) -> None:
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ModelParameterError(
                "throttle factor must lie in (0, 1]"
            )

    def modulate(self, demanded_power_w: float,
                 junction_c: float) -> tuple[float, bool]:
        """One control step: returns (delivered power, throttled?)."""
        throttled = self.sensor.sample(junction_c)
        if throttled:
            return demanded_power_w * self.throttle_factor, True
        return demanded_power_w, False


@dataclass(frozen=True)
class DtmResult:
    """Outcome of one DTM simulation run."""

    #: Junction temperature per sample [C].
    junction_c: tuple[float, ...]
    #: Delivered power per sample [W].
    delivered_w: tuple[float, ...]
    #: Throttle flag per sample.
    throttled: tuple[bool, ...]
    dt_s: float
    #: Throttle factor the controller actually applied (1.0 when the
    #: run was unmanaged); throttled demand is reconstructed with it.
    throttle_factor: float = DEFAULT_THROTTLE_FACTOR

    @property
    def max_junction_c(self) -> float:
        """Hottest junction temperature reached [C]."""
        return max(self.junction_c)

    @property
    def throttled_fraction(self) -> float:
        """Fraction of samples spent throttled."""
        return sum(self.throttled) / len(self.throttled)

    @property
    def throughput_fraction(self) -> float:
        """Delivered / demanded compute, using power as the proxy.

        Throttling scales clock (and hence both power and throughput) by
        the same duty factor, so delivered-over-demanded power measures
        the performance cost of DTM.
        """
        demanded = [delivered if not flag
                    else delivered / self.throttle_factor
                    for delivered, flag
                    in zip(self.delivered_w, self.throttled)]
        total_demand = sum(demanded)
        if total_demand == 0:
            return 1.0
        return sum(self.delivered_w) / total_demand


def simulate_dtm(trace: PowerTrace, network: ThermalNetwork,
                 controller: DtmController | None = None,
                 preheat_power_w: float | None = None) -> DtmResult:
    """Run a power trace through the thermal stack with (or without) DTM.

    ``controller=None`` simulates an unmanaged chip (no throttling).
    ``preheat_power_w`` settles the stack at a steady baseline load
    before the trace starts (half the trace peak by default), so short
    traces exercise the thermally-loaded regime instead of a cold heat
    sink, without presuming the trace itself has already been running.

    The caller's objects are never mutated: the simulation runs on a
    copy of ``network`` and (when managed) a copy of ``controller``
    whose sensor starts from a clean comparator/RNG state, so
    back-to-back calls on the same objects are reproducible.
    """
    if preheat_power_w is None:
        preheat_power_w = 0.5 * trace.peak_w
    network = copy.deepcopy(network)
    if controller is not None:
        controller = copy.deepcopy(controller)
        controller.sensor.reset()
    network.settle(preheat_power_w)
    junction: list[float] = []
    delivered: list[float] = []
    throttled: list[bool] = []
    for demand_w in trace.samples_w:
        if controller is None:
            power, flag = demand_w, False
        else:
            power, flag = controller.modulate(demand_w, network.junction_c)
        network.step(power, trace.dt_s)
        junction.append(network.junction_c)
        delivered.append(power)
        throttled.append(flag)
    return DtmResult(
        junction_c=tuple(junction),
        delivered_w=tuple(delivered),
        throttled=tuple(throttled),
        dt_s=trace.dt_s,
        throttle_factor=(1.0 if controller is None
                         else controller.throttle_factor),
    )
