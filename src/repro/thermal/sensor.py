"""On-die thermal sensor (Section 2.1, ref [7]).

The Pentium 4 thermal monitor: a diode with a fixed forward current whose
voltage falls ~2 mV/K, a reference source, and a current comparator that
trips when the die exceeds a set temperature.  We model the diode
transfer curve, additive measurement noise, and comparator hysteresis
(trip and release thresholds) -- the hysteresis is what prevents
throttle chatter in the DTM loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ModelParameterError

#: Diode forward-voltage temperature coefficient [V/C].
DIODE_TEMPCO_V_PER_C = -2.0e-3

#: Diode forward voltage at 25 C with the reference bias [V].
DIODE_V25_V = 0.65


def diode_voltage_v(temperature_c: float) -> float:
    """Forward voltage of the sense diode at a die temperature [V]."""
    return DIODE_V25_V + DIODE_TEMPCO_V_PER_C * (temperature_c - 25.0)


def diode_temperature_c(voltage_v: float) -> float:
    """Inverse transfer: temperature for a measured diode voltage [C]."""
    return 25.0 + (voltage_v - DIODE_V25_V) / DIODE_TEMPCO_V_PER_C


@dataclass
class ThermalSensor:
    """Diode + comparator with hysteresis.

    ``trip_c`` is the over-temperature threshold; the comparator releases
    only when the die falls below ``trip_c - hysteresis_c``.
    """

    trip_c: float
    hysteresis_c: float = 2.0
    #: 1-sigma measurement noise [C].
    noise_sigma_c: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _tripped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.hysteresis_c < 0 or self.noise_sigma_c < 0:
            raise ModelParameterError(
                "hysteresis and noise must be non-negative"
            )
        self._rng = random.Random(self.seed)

    @property
    def tripped(self) -> bool:
        """Current comparator state."""
        return self._tripped

    def measure_c(self, true_temperature_c: float) -> float:
        """Noisy temperature readout via the diode transfer curve [C]."""
        noisy_v = (diode_voltage_v(true_temperature_c)
                   + self._rng.gauss(0.0, abs(DIODE_TEMPCO_V_PER_C)
                                     * self.noise_sigma_c))
        return diode_temperature_c(noisy_v)

    def sample(self, true_temperature_c: float) -> bool:
        """Update the comparator from one reading; returns trip state."""
        measured = self.measure_c(true_temperature_c)
        if self._tripped:
            if measured < self.trip_c - self.hysteresis_c:
                self._tripped = False
        else:
            if measured >= self.trip_c:
                self._tripped = True
        return self._tripped

    def reset(self) -> None:
        """Clear comparator state and reseed the noise source."""
        self._tripped = False
        self._rng = random.Random(self.seed)
