"""Eq. (1) and the packaging-cost analysis of Section 2.1.

    theta_ja = (Tchip - Tambient) / Pchip                          (1)

The paper's quantitative anchors, which this module reproduces:

* theta_ja of 0.6-1.0 C/W for 2001 desktop/workstation processors,
  with an ITRS target of 0.25 C/W;
* a rise from 65 W to 75 W *triples* cooling cost (heat-pipe cliff);
* vapor-compression refrigeration costs ~$1 per watt cooled;
* dynamic thermal management lets packages be sized for the *effective*
  worst case, ~75 % of the theoretical worst case, which buys a 33 %
  higher allowable theta_ja (1 / 0.75 = 1.33).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.itrs.packaging import AMBIENT_C, REFRIGERATION_COST_PER_W

#: Effective worst-case power as a fraction of theoretical worst case,
#: from running power-hungry real applications (refs [7, 8]).
EFFECTIVE_WORST_CASE_FRACTION = 0.75


def theta_ja(t_chip_c: float, t_ambient_c: float, p_chip_w: float) -> float:
    """Junction-to-ambient thermal resistance, Eq. (1) [C/W]."""
    if p_chip_w <= 0:
        raise ModelParameterError("chip power must be positive")
    if t_chip_c <= t_ambient_c:
        raise ModelParameterError(
            f"junction temperature {t_chip_c} C must exceed ambient "
            f"{t_ambient_c} C for heat to flow outward"
        )
    return (t_chip_c - t_ambient_c) / p_chip_w


def junction_temperature_c(theta_ja_c_per_w: float, p_chip_w: float,
                           t_ambient_c: float = AMBIENT_C) -> float:
    """On-die temperature for a given package and power [C]."""
    if theta_ja_c_per_w <= 0:
        raise ModelParameterError("theta_ja must be positive")
    if p_chip_w < 0:
        raise ModelParameterError("power cannot be negative")
    return t_ambient_c + theta_ja_c_per_w * p_chip_w


def max_power_w(theta_ja_c_per_w: float, tj_max_c: float,
                t_ambient_c: float = AMBIENT_C) -> float:
    """Largest power a package can dissipate within the Tj limit [W]."""
    if theta_ja_c_per_w <= 0:
        raise ModelParameterError("theta_ja must be positive")
    if tj_max_c <= t_ambient_c:
        raise ModelParameterError("junction limit must exceed ambient")
    return (tj_max_c - t_ambient_c) / theta_ja_c_per_w


@dataclass(frozen=True)
class CoolingSolution:
    """One rung of the cooling-technology ladder."""

    name: str
    theta_ja_c_per_w: float
    cost_usd: float

    def can_cool(self, p_chip_w: float, tj_max_c: float,
                 t_ambient_c: float = AMBIENT_C) -> bool:
        """True when this solution keeps the junction within its limit."""
        return junction_temperature_c(self.theta_ja_c_per_w, p_chip_w,
                                      t_ambient_c) <= tj_max_c


#: The cooling ladder, calibrated so that (at Tj = 85 C, Ta = 45 C)
#: 65 W fits the standard fan+sink while 75 W requires the 3x-costlier
#: heat-pipe solution -- the paper's Intel anecdote.
COOLING_CATALOG: tuple[CoolingSolution, ...] = (
    CoolingSolution("passive heat sink", theta_ja_c_per_w=0.90,
                    cost_usd=6.0),
    CoolingSolution("fan + heat sink", theta_ja_c_per_w=0.60,
                    cost_usd=15.0),
    CoolingSolution("heat pipe + fan", theta_ja_c_per_w=0.45,
                    cost_usd=45.0),
    CoolingSolution("advanced heat pipe cluster", theta_ja_c_per_w=0.33,
                    cost_usd=120.0),
    CoolingSolution("liquid cooling", theta_ja_c_per_w=0.25,
                    cost_usd=300.0),
)


def cheapest_cooling(p_chip_w: float, tj_max_c: float,
                     t_ambient_c: float = AMBIENT_C) -> CoolingSolution:
    """Cheapest catalog solution that keeps the junction in spec.

    Beyond the catalog, vapor-compression refrigeration is synthesised
    at $1 per watt cooled with an effective theta_ja low enough for the
    request (the paper's cost reference point).
    """
    feasible = [solution for solution in COOLING_CATALOG
                if solution.can_cool(p_chip_w, tj_max_c, t_ambient_c)]
    if feasible:
        return min(feasible, key=lambda solution: solution.cost_usd)
    required = theta_ja(tj_max_c, t_ambient_c, p_chip_w)
    # Compressor hardware has a base cost on top of the paper's ~$1 per
    # watt cooled, keeping the ladder monotone past the catalog.
    base_cost = max(solution.cost_usd for solution in COOLING_CATALOG)
    return CoolingSolution(
        name="vapor-compression refrigeration",
        theta_ja_c_per_w=required,
        cost_usd=base_cost + REFRIGERATION_COST_PER_W * p_chip_w,
    )


def cooling_cost_usd(p_chip_w: float, tj_max_c: float,
                     t_ambient_c: float = AMBIENT_C) -> float:
    """Cost of the cheapest adequate cooling solution [$]."""
    return cheapest_cooling(p_chip_w, tj_max_c, t_ambient_c).cost_usd


@dataclass(frozen=True)
class DtmBenefit:
    """Packaging benefit of dynamic thermal management at one design."""

    theoretical_worst_w: float
    effective_worst_w: float
    theta_without_dtm: float
    theta_with_dtm: float
    cost_without_dtm_usd: float
    cost_with_dtm_usd: float

    @property
    def theta_relief(self) -> float:
        """Fractional theta_ja increase DTM allows (paper: ~33 %)."""
        return self.theta_with_dtm / self.theta_without_dtm - 1.0

    @property
    def cost_saving_usd(self) -> float:
        """Cooling-cost saving from sizing for the effective worst case."""
        return self.cost_without_dtm_usd - self.cost_with_dtm_usd


def dtm_packaging_benefit(theoretical_worst_w: float, tj_max_c: float,
                          t_ambient_c: float = AMBIENT_C,
                          effective_fraction: float =
                          EFFECTIVE_WORST_CASE_FRACTION) -> DtmBenefit:
    """Quantify Section 2.1's DTM argument for one design point."""
    if not 0.0 < effective_fraction <= 1.0:
        raise ModelParameterError(
            "effective fraction must lie in (0, 1]"
        )
    effective = effective_fraction * theoretical_worst_w
    return DtmBenefit(
        theoretical_worst_w=theoretical_worst_w,
        effective_worst_w=effective,
        theta_without_dtm=theta_ja(tj_max_c, t_ambient_c,
                                   theoretical_worst_w),
        theta_with_dtm=theta_ja(tj_max_c, t_ambient_c, effective),
        cost_without_dtm_usd=cooling_cost_usd(theoretical_worst_w,
                                              tj_max_c, t_ambient_c),
        cost_with_dtm_usd=cooling_cost_usd(effective, tj_max_c,
                                           t_ambient_c),
    )
