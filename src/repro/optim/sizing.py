"""Post-synthesis transistor re-sizing (Section 3.3, ref [21]).

Down-sizing gates that have slack saves power, but only *sublinearly* in
the size reduction: the interconnect capacitance on each net does not
shrink with the gate, so the switched capacitance has a wire floor.  The
paper contrasts this with lowering the supply of those gates instead,
which cuts power *quadratically* -- the motivation for preferring
multi-Vdd assignment before re-sizing in the combined flow.

``downsize_netlist`` implements the greedy slack-driven down-sizer;
``resizing_vs_vdd_comparison`` reproduces the sublinear-vs-quadratic
argument on identical netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ModelParameterError
from repro.netlist.graph import Netlist
from repro.netlist.power import NetlistPower, netlist_power, \
    total_gate_width_um
from repro.optim.cvs import CvsResult, assign_cvs
from repro.optim.incremental import IncrementalTimer

#: Multiplicative shrink applied per accepted down-sizing step.
DEFAULT_STEP = 0.8

#: Smallest allowed re-sizing factor (library granularity floor).
DEFAULT_MIN_FACTOR = 0.35


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a down-sizing pass."""

    n_gates: int
    n_resized: int
    power_before: NetlistPower
    power_after: NetlistPower
    width_before_um: float
    width_after_um: float

    @property
    def dynamic_saving(self) -> float:
        """Fractional dynamic-power reduction."""
        before = self.power_before.total_dynamic_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_after.total_dynamic_w / before

    @property
    def static_saving(self) -> float:
        """Fractional leakage reduction (narrower devices leak less)."""
        before = self.power_before.static_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_after.static_w / before

    @property
    def width_saving(self) -> float:
        """Fractional total-width (area) reduction."""
        if self.width_before_um == 0:
            return 0.0
        return 1.0 - self.width_after_um / self.width_before_um

    @property
    def sublinearity(self) -> float:
        """Dynamic-power saving per unit width saving (< 1 is sublinear).

        The wire-capacitance floor makes this ratio fall below one: a
        30 % width cut yields well under 30 % power.
        """
        if self.width_saving == 0:
            return 0.0
        return self.dynamic_saving / self.width_saving


def downsize_netlist(netlist: Netlist, step: float = DEFAULT_STEP,
                     min_factor: float = DEFAULT_MIN_FACTOR,
                     activity: float = 0.1,
                     temperature_k: float = 300.0) -> SizingResult:
    """Greedily shrink off-critical gates until no shrink fits timing.

    Gates are visited repeatedly; each visit multiplies ``size_factor``
    by ``step`` and keeps the shrink only if every endpoint still meets
    the clock.  A shrunk gate slows itself but unloads its fanins, so
    both are re-timed.
    """
    if not 0.0 < step < 1.0:
        raise ModelParameterError("step must lie in (0, 1)")
    if not 0.0 < min_factor < 1.0:
        raise ModelParameterError("min_factor must lie in (0, 1)")

    power_before = netlist_power(netlist, activity, temperature_k)
    width_before = total_gate_width_um(netlist)
    timer = IncrementalTimer(netlist)
    if not timer.meets_timing():
        raise ModelParameterError("netlist misses timing before re-sizing")

    resized: set[str] = set()
    progress = True
    while progress:
        progress = False
        for name in netlist.topo_order():
            instance = netlist.instances[name]
            if instance.size_factor * step < min_factor:
                continue
            previous = instance.size_factor
            instance.size_factor = previous * step
            changed = [name] + [f for f in instance.fanins
                                if f in netlist.instances]
            if timer.try_change(changed):
                resized.add(name)
                progress = True
            else:
                instance.size_factor = previous

    return SizingResult(
        n_gates=len(netlist),
        n_resized=len(resized),
        power_before=power_before,
        power_after=netlist_power(netlist, activity, temperature_k),
        width_before_um=width_before,
        width_after_um=total_gate_width_um(netlist),
    )


@dataclass(frozen=True)
class ResizingVsVddResult:
    """Head-to-head of down-sizing vs multi-Vdd on identical netlists."""

    sizing: SizingResult
    cvs: CvsResult

    @property
    def vdd_advantage(self) -> float:
        """CVS dynamic saving minus re-sizing dynamic saving."""
        return self.cvs.dynamic_saving - self.sizing.dynamic_saving


def resizing_vs_vdd_comparison(
    netlist_factory: Callable[[], Netlist],
    activity: float = 0.1,
    temperature_k: float = 300.0,
) -> ResizingVsVddResult:
    """Apply re-sizing and CVS to two fresh copies of the same design.

    ``netlist_factory`` must return identical netlists on each call
    (e.g. ``lambda: random_netlist(100, seed=7)``).
    """
    sizing = downsize_netlist(netlist_factory(), activity=activity,
                              temperature_k=temperature_k)
    cvs = assign_cvs(netlist_factory(), activity=activity,
                     temperature_k=temperature_k)
    return ResizingVsVddResult(sizing=sizing, cvs=cvs)
