"""Incremental timing engine for the optimization flows.

The greedy assignment loops (CVS, dual-Vth, re-sizing) mutate one gate at
a time and must know whether the netlist still meets its clock.  A full
STA per trial is O(V + E); this engine re-evaluates only the changed
gates and their downstream cone, rejecting a change as soon as any
endpoint misses the period.

Correctness argument: a gate mutation changes (a) its own delay, (b) the
delay of its fanins when its input capacitance changes (re-sizing).  The
caller lists every gate whose delay may have changed; arrivals are then
recomputed in topological order over the affected cone.  Endpoint
arrivals are compared against the clock period directly, so no stale
required-time data is ever consulted.
"""

from __future__ import annotations

import heapq

from repro.errors import NetlistError
from repro.netlist.graph import Netlist

#: Timing comparison tolerance [s].
_EPS_S = 1e-15


class IncrementalTimer:
    """Maintains arrival times for a netlist under local mutations."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._topo = netlist.topo_order()
        self._index = {name: i for i, name in enumerate(self._topo)}
        self._endpoints = set(netlist.primary_outputs)
        self._primary_inputs = frozenset(netlist.primary_inputs)
        self.delay_s: dict[str, float] = {}
        self.arrival_s: dict[str, float] = {}
        self.full_refresh()

    def full_refresh(self) -> None:
        """Recompute all delays and arrivals from scratch."""
        for name in self._topo:
            self.delay_s[name] = self.netlist.gate_delay_s(name)
            self.arrival_s[name] = (self._fanin_arrival(name)
                                    + self.delay_s[name])

    def _fanin_arrival(self, name: str,
                       overlay: dict[str, float] | None = None) -> float:
        """Latest fanin arrival of ``name`` (0.0 for primary inputs).

        A fanin that is neither a primary input nor a timed instance is
        an undriven or misnamed net; full STA rejects those at
        construction, and silently treating one as arriving at t=0
        would optimistically pass timing -- so raise instead.
        """
        instance = self.netlist.instances[name]
        latest = 0.0
        for fanin in instance.fanins:
            if overlay is not None and fanin in overlay:
                latest = max(latest, overlay[fanin])
                continue
            arrival = self.arrival_s.get(fanin)
            if arrival is None:
                if fanin in self._primary_inputs:
                    continue  # PI terminals arrive at t = 0
                raise NetlistError(
                    f"instance {name!r}: fanin {fanin!r} is neither a "
                    f"primary input nor a timed instance (undriven or "
                    f"misnamed net)")
            latest = max(latest, arrival)
        return latest

    @property
    def critical_delay_s(self) -> float:
        """Longest endpoint arrival [s]."""
        return max(self.arrival_s[name] for name in self._endpoints)

    def meets_timing(self, period_s: float | None = None) -> bool:
        """True when every endpoint settles within the period."""
        period = (self.netlist.clock_period_s if period_s is None
                  else period_s)
        return self.critical_delay_s <= period + _EPS_S

    def try_change(self, changed: list[str],
                   period_s: float | None = None) -> bool:
        """Validate a mutation the caller has already applied.

        ``changed`` lists every instance whose *delay* may have changed
        (the mutated gate, plus its fanins when its input capacitance
        changed).  Returns True and commits the new arrivals when all
        endpoints still meet the period; returns False and restores the
        previous timing state otherwise -- in which case the caller must
        revert its netlist mutation.
        """
        period = (self.netlist.clock_period_s if period_s is None
                  else period_s)
        for name in changed:
            if name not in self._index:
                raise NetlistError(f"unknown instance {name!r}")

        new_delay: dict[str, float] = {}
        new_arrival: dict[str, float] = {}
        heap = []
        queued = set()
        for name in changed:
            new_delay[name] = self.netlist.gate_delay_s(name)
            heapq.heappush(heap, (self._index[name], name))
            queued.add(name)

        ok = True
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            fanin_arrival = self._fanin_arrival(name,
                                                overlay=new_arrival)
            delay = new_delay.get(name, self.delay_s[name])
            arrival = fanin_arrival + delay
            if name in self._endpoints and arrival > period + _EPS_S:
                ok = False
                break
            if abs(arrival - self.arrival_s[name]) <= _EPS_S \
                    and name not in new_delay:
                continue  # no downstream effect from this node
            if abs(arrival - self.arrival_s[name]) <= _EPS_S \
                    and name in new_delay:
                new_arrival[name] = arrival
                continue  # delay changed but arrival identical: prune
            new_arrival[name] = arrival
            for sink in self.netlist.fanouts(name):
                if sink not in queued:
                    heapq.heappush(heap, (self._index[sink], sink))
                    queued.add(sink)

        if not ok:
            return False
        self.delay_s.update(new_delay)
        self.arrival_s.update(new_arrival)
        return True

    def refresh_gates(self, names: list[str]) -> None:
        """Recompute and commit delays/arrivals after a reverted change.

        After the caller reverts a rejected mutation the cached state is
        already consistent (nothing was committed), so this is only
        needed when the caller makes a change it does not want validated.
        """
        for name in names:
            self.delay_s[name] = self.netlist.gate_delay_s(name)
        # Propagate unconditionally.
        start = min(self._index[name] for name in names)
        for name in self._topo[start:]:
            self.arrival_s[name] = (self._fanin_arrival(name)
                                    + self.delay_s[name])
