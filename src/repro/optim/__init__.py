"""Power-optimization flows (Sections 2.4, 3.2, 3.3).

Implements the algorithms the paper builds its savings estimates on:
clustered voltage scaling (CVS) for multi-Vdd assignment, sensitivity-
based dual-Vth assignment, post-synthesis transistor re-sizing, and the
combined multi-Vdd + multi-Vth + re-sizing flow of Conclusion 3 -- all on
top of an incremental timing engine so assignments are verified against
the clock constraint as they are made.
"""

from repro.optim.incremental import IncrementalTimer
from repro.optim.cvs import CvsResult, assign_cvs
from repro.optim.dual_vth import DualVthResult, assign_dual_vth
from repro.optim.sizing import (
    SizingResult,
    downsize_netlist,
    resizing_vs_vdd_comparison,
)
from repro.optim.combined import CombinedResult, combined_flow
from repro.optim.upsize import UpsizeResult, fix_timing
from repro.optim.placement import PlacementOverhead, placement_overhead

__all__ = [
    "IncrementalTimer",
    "CvsResult",
    "assign_cvs",
    "DualVthResult",
    "assign_dual_vth",
    "SizingResult",
    "downsize_netlist",
    "resizing_vs_vdd_comparison",
    "CombinedResult",
    "combined_flow",
    "UpsizeResult",
    "fix_timing",
    "PlacementOverhead",
    "placement_overhead",
]
