"""Multi-Vdd placement area overhead (Section 2.4, ref [18]).

"In [18], area overhead due to constrained cell placement, level
converters, and added power grid routing was found to be 15%."

Row-based CVS layout: every standard-cell row carries a single supply,
so the Vdd,l and Vdd,h populations are packed into dedicated rows,
interleaved region-by-region to keep wire lengths down.  Three overhead
sources are modelled analytically (expected values, so small synthetic
designs behave like their full-size counterparts rather than like
bin-packing noise):

* **fragmentation** -- each domain leaves an expected half-row of waste
  per placement region (the partially-filled boundary row);
* **level converters** -- folded into level-converting flip-flops at a
  fraction of a unit-cell width each;
* **dual power rails** -- Vdd,l rows still route the Vdd,h rail for the
  converters and well biasing, costing a fraction of the row height.

The output is the fractional cell-area overhead versus the same design
packed single-supply, landing near ref [18]'s ~15 % on the CVS claims
netlists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ModelParameterError
from repro.netlist.graph import Netlist
from repro.netlist.power import total_gate_width_um

#: Standard-cell rows in the placed block.
DEFAULT_N_ROWS = 48

#: Level-converter area in unit-inverter widths (folded into a
#: level-converting flop, so only the increment counts).
LC_AREA_UNITS = 0.5

#: Extra row-height fraction of a dual-rail (Vdd,l) row.
DUAL_RAIL_HEIGHT_OVERHEAD = 0.08

#: Placement regions per domain: interleaving Vdd,l/Vdd,h regions for
#: wire length multiplies the fragmentation boundaries.
DEFAULT_REGIONS = 4


@dataclass(frozen=True)
class PlacementOverhead:
    """Area ledger of a row-based multi-Vdd placement."""

    total_width_units: float
    low_vdd_width_units: float
    n_level_converters: int
    n_rows: int
    fragmentation_units: float
    lc_area_units: float
    dual_rail_penalty_units: float

    @property
    def overhead_units(self) -> float:
        """Total extra row capacity consumed [unit widths]."""
        return (self.fragmentation_units + self.lc_area_units
                + self.dual_rail_penalty_units)

    @property
    def area_overhead(self) -> float:
        """Fractional area overhead vs the single-supply packing."""
        if self.total_width_units == 0:
            return 0.0
        return self.overhead_units / self.total_width_units

    @property
    def low_vdd_row_fraction(self) -> float:
        """Share of rows dedicated to the low supply."""
        if self.total_width_units == 0:
            return 0.0
        return self.low_vdd_width_units / self.total_width_units


def _unit_width_um(netlist: Netlist) -> float:
    any_instance = next(iter(netlist.instances.values()))
    from repro.circuits.gate import GateModel
    unit = GateModel(any_instance.cell.device)
    return units.to_um(unit.wn_m + unit.wp_m)


def placement_overhead(netlist: Netlist,
                       n_rows: int = DEFAULT_N_ROWS,
                       regions: int = DEFAULT_REGIONS
                       ) -> PlacementOverhead:
    """Evaluate the multi-Vdd placement overhead of an assigned netlist.

    Call after :func:`repro.optim.cvs.assign_cvs`; an unassigned
    netlist reports zero overhead (single supply, no converters, no
    dual rails).
    """
    if n_rows < 1:
        raise ModelParameterError("need at least one row")
    if regions < 1:
        raise ModelParameterError("need at least one placement region")

    unit_um = _unit_width_um(netlist)
    total_units = total_gate_width_um(netlist) / unit_um
    row_capacity = total_units / n_rows

    low_units = 0.0
    n_converters = 0
    for instance in netlist.instances.values():
        model = instance.model()
        width_units = units.to_um(model.wn_m + model.wp_m) / unit_um
        if instance.vdd_v is not None \
                and instance.vdd_v < netlist.nominal_vdd_v - 1e-9:
            low_units += width_units
        if instance.level_converter:
            n_converters += 1

    multi_vdd = low_units > 0.0
    if multi_vdd:
        # Two domains, each with `regions` boundary rows at an expected
        # half-row of waste; minus the half row the single-supply
        # packing wastes anyway.
        fragmentation = (2.0 * regions - 1.0) * 0.5 * row_capacity
        rows_low = low_units / row_capacity + 0.5 * regions
        dual_rail = rows_low * row_capacity * DUAL_RAIL_HEIGHT_OVERHEAD
    else:
        fragmentation = 0.0
        dual_rail = 0.0

    return PlacementOverhead(
        total_width_units=total_units,
        low_vdd_width_units=low_units,
        n_level_converters=n_converters,
        n_rows=n_rows,
        fragmentation_units=fragmentation,
        lc_area_units=n_converters * LC_AREA_UNITS,
        dual_rail_penalty_units=dual_rail,
    )
