"""The combined multi-Vdd + multi-Vth + re-sizing flow (Conclusion 3).

"Non-critical gates are first assigned to a reduced Vdd, followed by
sizing and Vth selection to reduce power most efficiently."

The flow therefore runs, on one netlist:

1. **CVS** multi-Vdd assignment (quadratic dynamic savings first);
2. **down-sizing** of whatever slack remains (sublinear, so second);
3. **dual-Vth** assignment to claw back leakage.

The paper also argues that running re-sizing *before* multi-Vdd is
sub-optimal ("more paths approach criticality; this makes the
application of multi-Vdd approaches less advantageous"); the
``ordering_study`` helper quantifies that by running both orders on
identical netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.netlist.graph import Netlist
from repro.netlist.power import NetlistPower, netlist_power
from repro.optim.cvs import CvsResult, assign_cvs
from repro.optim.dual_vth import DualVthResult, assign_dual_vth
from repro.optim.sizing import SizingResult, downsize_netlist


@dataclass(frozen=True)
class CombinedResult:
    """Stage-by-stage outcome of the combined flow."""

    power_initial: NetlistPower
    cvs: CvsResult
    sizing: SizingResult
    dual_vth: DualVthResult
    power_final: NetlistPower

    @property
    def total_dynamic_saving(self) -> float:
        """End-to-end dynamic-power reduction (incl. LC overhead)."""
        before = self.power_initial.total_dynamic_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_final.total_dynamic_w / before

    @property
    def total_static_saving(self) -> float:
        """End-to-end leakage reduction."""
        before = self.power_initial.static_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_final.static_w / before

    @property
    def total_saving(self) -> float:
        """End-to-end total power reduction."""
        before = self.power_initial.total_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_final.total_w / before


def combined_flow(netlist: Netlist, vdd_ratio: float = 0.65,
                  vth_offset_v: float = 0.100, activity: float = 0.1,
                  temperature_k: float = 300.0) -> CombinedResult:
    """Run the Conclusion-3 flow on ``netlist`` in place.

    The dual-Vth stage runs against the netlist's *existing* clock (no
    re-baselining), since CVS and sizing have already consumed the slack
    the paper's flow intends to spend on supply reduction first.
    """
    power_initial = netlist_power(netlist, activity, temperature_k)
    cvs_result = assign_cvs(netlist, vdd_ratio=vdd_ratio,
                            activity=activity,
                            temperature_k=temperature_k)
    sizing_result = downsize_netlist(netlist, activity=activity,
                                     temperature_k=temperature_k)
    dual_result = assign_dual_vth(netlist, vth_offset_v=vth_offset_v,
                                  temperature_k=temperature_k,
                                  rebase_clock=False)
    power_final = netlist_power(netlist, activity, temperature_k)
    return CombinedResult(
        power_initial=power_initial,
        cvs=cvs_result,
        sizing=sizing_result,
        dual_vth=dual_result,
        power_final=power_final,
    )


@dataclass(frozen=True)
class OrderingStudy:
    """CVS-first vs sizing-first comparison (Section 3.3's argument)."""

    #: CVS result when CVS runs first.
    cvs_first: CvsResult
    #: CVS result when down-sizing has already consumed the slack.
    cvs_after_sizing: CvsResult

    @property
    def low_vdd_fraction_drop(self) -> float:
        """How much of the Vdd,l population re-sizing-first destroys."""
        return (self.cvs_first.low_vdd_fraction
                - self.cvs_after_sizing.low_vdd_fraction)


def ordering_study(netlist_factory: Callable[[], Netlist],
                   vdd_ratio: float = 0.65, activity: float = 0.1,
                   temperature_k: float = 300.0) -> OrderingStudy:
    """Quantify why multi-Vdd should precede re-sizing.

    ``netlist_factory`` must return identical netlists on each call.
    """
    cvs_first = assign_cvs(netlist_factory(), vdd_ratio=vdd_ratio,
                           activity=activity, temperature_k=temperature_k)

    resized = netlist_factory()
    downsize_netlist(resized, activity=activity,
                     temperature_k=temperature_k)
    cvs_after = assign_cvs(resized, vdd_ratio=vdd_ratio, activity=activity,
                           temperature_k=temperature_k)
    return OrderingStudy(cvs_first=cvs_first, cvs_after_sizing=cvs_after)
