"""Timing repair by critical-path up-sizing.

The inverse of :mod:`repro.optim.sizing`: when a netlist misses its
clock (after a clock tightening, a Vdd experiment, or an aggressive
Vth assignment), grow the drive of gates on violating paths until the
period holds or no further up-sizing helps.

Strategy: repeatedly trace the current critical path, up-size its
slowest-improvable gate by a fixed step (validated incrementally), and
stop when every endpoint meets the clock or a full pass over the
critical path yields no improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.netlist.graph import Netlist
from repro.netlist.sta import compute_sta
from repro.optim.incremental import IncrementalTimer

#: Multiplicative growth per accepted up-sizing step.
DEFAULT_STEP = 1.25

#: Largest allowed re-sizing factor.
DEFAULT_MAX_FACTOR = 6.0


@dataclass(frozen=True)
class UpsizeResult:
    """Outcome of a timing-repair pass."""

    met_timing: bool
    n_upsized: int
    critical_before_s: float
    critical_after_s: float
    width_growth: float

    @property
    def speedup(self) -> float:
        """Fractional critical-path improvement."""
        return 1.0 - self.critical_after_s / self.critical_before_s


def fix_timing(netlist: Netlist, step: float = DEFAULT_STEP,
               max_factor: float = DEFAULT_MAX_FACTOR,
               max_passes: int = 200) -> UpsizeResult:
    """Up-size along critical paths until the clock holds (or stuck).

    Returns an :class:`UpsizeResult`; check ``met_timing`` -- a failing
    result leaves the netlist improved but still violating (the caller
    may relax the clock or restructure instead).
    """
    if step <= 1.0:
        raise ModelParameterError("step must exceed 1.0")
    if max_factor <= 1.0:
        raise ModelParameterError("max_factor must exceed 1.0")

    from repro.netlist.power import total_gate_width_um
    width_before = total_gate_width_um(netlist)
    timer = IncrementalTimer(netlist)
    critical_before = timer.critical_delay_s
    period = netlist.clock_period_s
    upsized: set[str] = set()

    for _ in range(max_passes):
        if timer.meets_timing():
            break
        report = compute_sta(netlist)
        improved = False
        # Walk the critical path from the endpoint backwards: late
        # stages see the full downstream load and usually benefit most.
        for name in reversed(report.critical_path):
            instance = netlist.instances[name]
            if instance.size_factor * step > max_factor:
                continue
            previous_factor = instance.size_factor
            previous_critical = timer.critical_delay_s
            instance.size_factor = previous_factor * step
            changed = [name] + [f for f in instance.fanins
                                if f in netlist.instances]
            # Accept any change that tightens the critical delay, even
            # if the period is still missed.
            timer.try_change(changed, period_s=float("inf"))
            if timer.critical_delay_s < previous_critical - 1e-18:
                upsized.add(name)
                improved = True
                break
            instance.size_factor = previous_factor
            timer.try_change(changed, period_s=float("inf"))
        if not improved:
            break

    return UpsizeResult(
        met_timing=timer.meets_timing(),
        n_upsized=len(upsized),
        critical_before_s=critical_before,
        critical_after_s=timer.critical_delay_s,
        width_growth=total_gate_width_um(netlist) / width_before - 1.0,
    )
