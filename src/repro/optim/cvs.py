"""Clustered voltage scaling (Section 2.4, refs [18-20]).

CVS partitions a netlist between two supplies so that non-critical gates
run at Vdd,l and only critical gates keep Vdd,h, with the structural rule
that a Vdd,l gate never drives a Vdd,h gate directly -- level conversion
happens only at the (flop) boundary.  We therefore sweep the netlist in
reverse topological order: a gate is a candidate once *all* of its
fanouts already run at Vdd,l (a fanout-free gate must be an endpoint,
and a mixed endpoint/fanout gate still needs every gate fanout low),
and the assignment is kept only if the clock period still holds.

The paper's calibration points, which the benchmarks check:

* Vdd,l ~ 0.6-0.7 x Vdd,h maximises savings (we default to 0.65);
* ~75 % of gates tolerate Vdd,l on slack-rich designs;
* overall dynamic-power reduction of 45-50 % including 8-10 %
  level-conversion overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.netlist.graph import Netlist
from repro.netlist.power import NetlistPower, netlist_power
from repro.optim.incremental import IncrementalTimer

#: Default low-supply ratio (paper: "Vdd,l should be around 0.6 to 0.7
#: times Vdd,h to maximize power savings").
DEFAULT_VDD_RATIO = 0.65


@dataclass(frozen=True)
class CvsResult:
    """Outcome of a CVS pass."""

    vdd_high_v: float
    vdd_low_v: float
    n_gates: int
    n_low_vdd: int
    n_level_converters: int
    power_before: NetlistPower
    power_after: NetlistPower

    @property
    def low_vdd_fraction(self) -> float:
        """Fraction of gates assigned to Vdd,l."""
        return self.n_low_vdd / self.n_gates

    @property
    def dynamic_saving(self) -> float:
        """Fractional dynamic-power reduction including LC overhead."""
        before = self.power_before.total_dynamic_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_after.total_dynamic_w / before

    @property
    def static_saving(self) -> float:
        """Fractional leakage reduction (Vdd,l also shrinks Ioff)."""
        before = self.power_before.static_w
        if before == 0:
            return 0.0
        return 1.0 - self.power_after.static_w / before


def assign_cvs(netlist: Netlist, vdd_ratio: float = DEFAULT_VDD_RATIO,
               activity: float = 0.1,
               temperature_k: float = 300.0) -> CvsResult:
    """Run CVS on ``netlist`` in place and report the savings.

    Gates keep their threshold and size; only the supply map and level
    converter flags change.  Timing is validated incrementally against
    the netlist's clock period.
    """
    if not 0.0 < vdd_ratio < 1.0:
        raise ModelParameterError(
            f"vdd_ratio must lie in (0, 1), got {vdd_ratio}"
        )
    vdd_high = netlist.nominal_vdd_v
    vdd_low = vdd_ratio * vdd_high

    power_before = netlist_power(netlist, activity, temperature_k)
    timer = IncrementalTimer(netlist)
    if not timer.meets_timing():
        raise ModelParameterError(
            "netlist misses timing before CVS; nothing can be lowered"
        )

    endpoints = set(netlist.primary_outputs)
    n_low = 0
    for name in reversed(netlist.topo_order()):
        instance = netlist.instances[name]
        fanouts = netlist.fanouts(name)
        # Structural eligibility.  Every fanout sink must already *run*
        # at Vdd,l -- judged by effective supply, not by whether an
        # override is merely present, so a sink explicitly pinned at
        # Vdd,h (or reverted by a failed timing probe) blocks its
        # drivers.  Sinks are always instances in this graph model
        # (primary outputs are instances, never bare terminals), so the
        # supply lookup is total.  A gate with no fanouts must be an
        # endpoint (finalize() guarantees this); a *mixed*
        # endpoint/fanout gate still needs all its fanouts low -- its
        # flop boundary converts, its gate fanouts do not.
        eligible = all(
            netlist.instances[sink].effective_vdd(vdd_high)
            <= vdd_low + 1e-9
            for sink in fanouts
        ) and (bool(fanouts) or name in endpoints)
        if not eligible:
            continue
        # A failed probe restores the supply the gate *had*, not the
        # nominal default -- on a repeated pass (deeper ratio) the gate
        # may already hold a previous Vdd,l, and snapping it back to
        # Vdd,h would retroactively break the structural rule for the
        # drivers lowered beneath it.
        previous_vdd = instance.vdd_v
        previous_lc = instance.level_converter
        instance.vdd_v = vdd_low
        instance.level_converter = netlist.needs_level_converter(name)
        if timer.try_change([name]):
            n_low += 1
        else:
            instance.vdd_v = previous_vdd
            instance.level_converter = previous_lc

    n_lc = netlist.refresh_level_converters()
    power_after = netlist_power(netlist, activity, temperature_k)
    return CvsResult(
        vdd_high_v=vdd_high,
        vdd_low_v=vdd_low,
        n_gates=len(netlist),
        n_low_vdd=n_low,
        n_level_converters=n_lc,
        power_before=power_before,
        power_after=power_after,
    )
