"""Dual-Vth assignment (Section 3.2.2, refs [22, 39]).

Starting from an all-low-Vth implementation (fastest, leakiest), gates
with timing slack are moved to the high threshold.  Candidates are
ranked by leakage-saving per unit delay cost and validated incrementally
against the clock, mirroring the sensitivity-based algorithms the paper
cites.  "Typical results show leakage power reductions of 40-80 % with
minimal penalty in critical path delay compared to all low-Vth
implementations."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.netlist.graph import Netlist
from repro.optim.incremental import IncrementalTimer

#: Default high-to-low threshold offset [V] (the 100 mV of Fig. 2).
DEFAULT_VTH_OFFSET_V = 0.100


@dataclass(frozen=True)
class DualVthResult:
    """Outcome of a dual-Vth assignment pass."""

    vth_high_v: float
    vth_low_v: float
    n_gates: int
    n_high_vth: int
    leakage_before_w: float
    leakage_after_w: float
    critical_before_s: float
    critical_after_s: float

    @property
    def high_vth_fraction(self) -> float:
        """Fraction of gates moved to the high threshold."""
        return self.n_high_vth / self.n_gates

    @property
    def leakage_saving(self) -> float:
        """Fractional leakage reduction vs the all-low-Vth baseline."""
        if self.leakage_before_w == 0:
            return 0.0
        return 1.0 - self.leakage_after_w / self.leakage_before_w

    @property
    def delay_penalty(self) -> float:
        """Fractional critical-path slowdown vs the all-low-Vth baseline."""
        return self.critical_after_s / self.critical_before_s - 1.0


def _netlist_leakage_w(netlist: Netlist, temperature_k: float) -> float:
    total = 0.0
    for name, instance in netlist.instances.items():
        vdd = instance.effective_vdd(netlist.nominal_vdd_v)
        total += instance.model().static_power_w(
            vdd_v=vdd, temperature_k=temperature_k)
    return total


def assign_dual_vth(netlist: Netlist,
                    vth_offset_v: float = DEFAULT_VTH_OFFSET_V,
                    clock_margin: float = 1.02,
                    temperature_k: float = 300.0,
                    rebase_clock: bool = True) -> DualVthResult:
    """Run dual-Vth assignment on ``netlist`` in place.

    The netlist is first re-based to an all-low-Vth implementation.
    With ``rebase_clock`` (the default, matching the paper's scenario of
    an aggressively-timed all-LVT design), the clock is tightened to
    ``clock_margin`` times the all-LVT critical delay before high
    thresholds are assigned wherever that clock still holds; otherwise
    the netlist's existing clock period is used unchanged (as in the
    combined flow, where earlier stages already consumed the slack).
    """
    if vth_offset_v <= 0:
        raise ModelParameterError("Vth offset must be positive")
    if clock_margin < 1.0:
        raise ModelParameterError("clock margin cannot be below 1.0")

    devices = {instance.cell.device.vth_v
               for instance in netlist.instances.values()}
    vth_high = max(devices)
    vth_low = vth_high - vth_offset_v

    # All-low-Vth baseline.
    for instance in netlist.instances.values():
        instance.vth_v = vth_low
    timer = IncrementalTimer(netlist)
    critical_before = timer.critical_delay_s
    if rebase_clock:
        netlist.clock_period_s = critical_before * clock_margin
        netlist.frequency_hz = 1.0 / netlist.clock_period_s
    leakage_before = _netlist_leakage_w(netlist, temperature_k)

    # Rank candidates by leakage saving per delay cost.
    def sensitivity(name: str) -> float:
        instance = netlist.instances[name]
        vdd = instance.effective_vdd(netlist.nominal_vdd_v)
        model = instance.model()
        leak_low = model.static_power_w(vdd_v=vdd,
                                        temperature_k=temperature_k)
        leak_high = model.static_power_w(vdd_v=vdd, vth_v=vth_high,
                                         temperature_k=temperature_k)
        load = netlist.load_f(name)
        delay_low = model.delay_s(load, vdd_v=vdd)
        delay_high = model.delay_s(load, vdd_v=vdd, vth_v=vth_high)
        cost = max(delay_high - delay_low, 1e-18)
        return (leak_low - leak_high) / cost

    candidates = sorted(netlist.topo_order(), key=sensitivity, reverse=True)

    n_high = 0
    for name in candidates:
        instance = netlist.instances[name]
        instance.vth_v = vth_high
        if timer.try_change([name]):
            n_high += 1
        else:
            instance.vth_v = vth_low

    return DualVthResult(
        vth_high_v=vth_high,
        vth_low_v=vth_low,
        n_gates=len(netlist),
        n_high_vth=n_high,
        leakage_before_w=leakage_before,
        leakage_after_w=_netlist_leakage_w(netlist, temperature_k),
        critical_before_s=critical_before,
        critical_after_s=timer.critical_delay_s,
    )
