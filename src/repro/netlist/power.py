"""Whole-netlist power accounting.

Dynamic power sums alpha * f * C * Vdd^2 over every net at its driver's
supply (the energy to charge a net is set by the *driver's* rail), plus
level-converter overhead, which is tracked separately so the 8-10 %
conversion-power bookkeeping of Section 2.4 can be reported.  Static
power sums each instance's leakage at its assigned supply and threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.netlist.graph import Netlist


@dataclass(frozen=True)
class NetlistPower:
    """Power breakdown of one netlist configuration."""

    dynamic_w: float
    level_converter_w: float
    static_w: float

    @property
    def total_dynamic_w(self) -> float:
        """Switching power including converter overhead [W]."""
        return self.dynamic_w + self.level_converter_w

    @property
    def total_w(self) -> float:
        """All power [W]."""
        return self.total_dynamic_w + self.static_w

    @property
    def lc_fraction(self) -> float:
        """Converter power as a fraction of total dynamic power."""
        if self.total_dynamic_w == 0:
            return 0.0
        return self.level_converter_w / self.total_dynamic_w


def netlist_power(netlist: Netlist,
                  activity: float | dict[str, float] = 0.1,
                  temperature_k: float = 300.0) -> NetlistPower:
    """Compute the power breakdown at a given switching activity.

    ``activity`` is either one factor applied to every net, or a
    per-net map (e.g. from :mod:`repro.netlist.logic` simulation or
    :mod:`repro.netlist.activity` estimation); nets missing from the
    map default to 0.1.
    """
    frequency = netlist.frequency_hz

    if isinstance(activity, dict):
        def activity_of(name: str) -> float:
            return activity.get(name, 0.1)
    else:
        def activity_of(name: str) -> float:
            return activity

    dynamic = 0.0
    converters = 0.0
    static = 0.0
    for name, instance in netlist.instances.items():
        vdd = instance.effective_vdd(netlist.nominal_vdd_v)
        model = instance.model()
        load = netlist.load_f(name)
        alpha = activity_of(name)
        if instance.level_converter:
            lc_cap = netlist.lc_cap_f(instance)
            load -= lc_cap
            # The converter itself switches at the *high* rail.
            converters += (alpha * frequency * lc_cap
                           * netlist.nominal_vdd_v ** 2)
        dynamic += alpha * frequency * (load + model.parasitic_cap_f) \
            * vdd ** 2
        static += model.static_power_w(vdd_v=vdd,
                                       temperature_k=temperature_k)
    return NetlistPower(dynamic_w=dynamic, level_converter_w=converters,
                        static_w=static)


def total_gate_width_um(netlist: Netlist) -> float:
    """Total transistor width in the netlist [um] (area proxy)."""
    total = 0.0
    for instance in netlist.instances.values():
        model = instance.model()
        total += units.to_um(model.wn_m + model.wp_m)
    return total
