"""Probabilistic switching-activity estimation (static counterpart of
:mod:`repro.netlist.logic`).

Classic signal-probability / transition-density propagation (Najm):

* signal probabilities propagate through gate functions assuming
  spatially independent inputs (INV: ``1-p``; NAND: ``1 - prod(p)``;
  NOR: ``prod(1-p)``);
* transition densities propagate through Boolean differences:
  ``D(out) = sum_i P(df/dx_i) D(x_i)``.

Reconvergent fanout makes the independence assumption optimistic or
pessimistic net-by-net, but the netlist-level aggregate tracks the
logic simulator well (see ``tests/test_netlist_activity.py``), giving
a vectorless way to populate the power model's activity map.
"""

from __future__ import annotations

import math

from repro.circuits.gate import GateKind
from repro.errors import NetlistError
from repro.netlist.graph import Netlist


def _gate_probability(kind: GateKind, pins: list[float]) -> float:
    if kind is GateKind.INVERTER:
        return 1.0 - pins[0]
    if kind is GateKind.NAND:
        return 1.0 - math.prod(pins)
    if kind is GateKind.NOR:
        return math.prod(1.0 - p for p in pins)
    raise NetlistError(f"unknown gate kind {kind!r}")


def _boolean_difference_probability(kind: GateKind, pins: list[float],
                                    index: int) -> float:
    """P(df/dx_i = 1): probability the output is sensitised to pin i."""
    others = pins[:index] + pins[index + 1:]
    if kind is GateKind.INVERTER:
        return 1.0
    if kind is GateKind.NAND:
        # Sensitised when every other input is 1.
        return math.prod(others)
    if kind is GateKind.NOR:
        # Sensitised when every other input is 0.
        return math.prod(1.0 - p for p in others)
    raise NetlistError(f"unknown gate kind {kind!r}")


def signal_probabilities(netlist: Netlist,
                         input_probability: float = 0.5
                         ) -> dict[str, float]:
    """Probability each net is logic 1, inputs independent."""
    if not 0.0 <= input_probability <= 1.0:
        raise NetlistError("input probability must lie in [0, 1]")
    probabilities: dict[str, float] = {
        name: input_probability for name in netlist.primary_inputs}
    for name in netlist.topo_order():
        instance = netlist.instances[name]
        pins = [probabilities[f] for f in instance.fanins]
        probabilities[name] = _gate_probability(
            instance.cell.design.kind, pins)
    return probabilities


def transition_densities(netlist: Netlist,
                         input_density: float = 0.5,
                         input_probability: float = 0.5
                         ) -> dict[str, float]:
    """Expected transitions per vector for every net (Najm propagation).

    ``input_density`` is the per-vector toggle probability of each
    primary input (the ``flip_probability`` of
    :func:`repro.netlist.logic.random_vectors`).
    """
    if input_density < 0:
        raise NetlistError("input density cannot be negative")
    probabilities = signal_probabilities(netlist, input_probability)
    densities: dict[str, float] = {
        name: input_density for name in netlist.primary_inputs}
    for name in netlist.topo_order():
        instance = netlist.instances[name]
        pins = [probabilities[f] for f in instance.fanins]
        kind = instance.cell.design.kind
        density = 0.0
        for index, fanin in enumerate(instance.fanins):
            sensitised = _boolean_difference_probability(kind, pins,
                                                         index)
            density += sensitised * densities[fanin]
        densities[name] = density
    return {name: densities[name] for name in netlist.topo_order()}


def estimated_activity_map(netlist: Netlist,
                           input_density: float = 0.5
                           ) -> dict[str, float]:
    """Per-gate activity map for the power model (capped at 1)."""
    return {name: min(density, 1.0)
            for name, density in
            transition_densities(netlist, input_density).items()}
