"""Gate-level netlist substrate.

The paper's multi-Vdd (Section 2.4), dual-Vth (Section 3.2.2) and
re-sizing (Section 3.3) discussions are statements about gate-level
netlists and their path-slack distributions.  This subpackage provides a
combinational DAG with per-instance supply/threshold/size assignment
state, a static timing analyzer, whole-netlist power accounting, and a
synthetic netlist generator calibrated to the slack profile the paper
cites ("over half of all timing paths commonly use less than half the
clock cycle").
"""

from repro.netlist.graph import Instance, Netlist
from repro.netlist.sta import TimingReport, compute_sta
from repro.netlist.power import NetlistPower, netlist_power
from repro.netlist.generate import random_netlist
from repro.netlist.logic import (
    SimulationResult,
    evaluate_netlist,
    measured_activity,
    random_vectors,
    simulate,
)
from repro.netlist.datapath import (
    AdderPorts,
    adder_inputs,
    build_ripple_adder,
    read_sum,
)
from repro.netlist.activity import (
    estimated_activity_map,
    signal_probabilities,
    transition_densities,
)
from repro.netlist.io import (
    dumps_netlist,
    loads_netlist,
    read_netlist,
    save_netlist,
)

__all__ = [
    "Instance",
    "Netlist",
    "TimingReport",
    "compute_sta",
    "NetlistPower",
    "netlist_power",
    "random_netlist",
    "SimulationResult",
    "evaluate_netlist",
    "measured_activity",
    "random_vectors",
    "simulate",
    "AdderPorts",
    "adder_inputs",
    "build_ripple_adder",
    "read_sum",
    "estimated_activity_map",
    "signal_probabilities",
    "transition_densities",
    "dumps_netlist",
    "loads_netlist",
    "read_netlist",
    "save_netlist",
]
