"""Static timing analysis over a :class:`~repro.netlist.graph.Netlist`.

Single-corner, topological arrival/required propagation.  Primary inputs
arrive at t = 0; every primary output must settle within the clock
period.  Slack is reported at each instance output.

The propagation runs on topo-order index arrays: names are resolved to
dense integer positions once, gate delays come from the bulk
:meth:`~repro.netlist.graph.Netlist.gate_delays` evaluation (one model
construction per instance instead of one per fanout edge), and both
passes walk plain integer adjacency lists.  On multi-thousand-gate
netlists this removes the dict-probe overhead that used to dominate the
optimization flows' inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.obs import COUNT_BUCKETS, add_counter, observe, span

_INFINITY = float("inf")


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA pass."""

    clock_period_s: float
    #: Arrival time at each instance output [s].
    arrival_s: dict[str, float]
    #: Required time at each instance output [s].
    required_s: dict[str, float]
    #: Slack at each instance output [s].
    slack_s: dict[str, float]
    #: Names along (one) critical path, driver first.
    critical_path: tuple[str, ...]
    #: Primary-output endpoints, in declaration order.
    endpoints: tuple[str, ...]

    @property
    def worst_slack_s(self) -> float:
        """Minimum slack over all instances [s]."""
        return min(self.slack_s.values())

    @property
    def critical_delay_s(self) -> float:
        """Longest endpoint arrival time [s]."""
        return max(self.arrival_s.values())

    def meets_timing(self, tolerance_s: float = 0.0) -> bool:
        """True when no slack is worse than ``-tolerance_s``."""
        return self.worst_slack_s >= -tolerance_s

    def path_utilisation(self) -> dict[str, float]:
        """Endpoint arrival as a fraction of the clock period.

        The paper cites MPU slack profiles in which "over half of all
        timing paths commonly use less than half the clock cycle"; this
        is the statistic that claim is about.  Only primary-output
        endpoints count -- a timing *path* terminates at an endpoint,
        and including internal-node arrivals (which are early by
        construction) would dilute the profile toward zero.
        """
        return {name: self.arrival_s[name] / self.clock_period_s
                for name in self.endpoints}


def compute_sta(netlist: Netlist,
                clock_period_s: float | None = None) -> TimingReport:
    """Run a full STA pass and return a :class:`TimingReport`."""
    period = (netlist.clock_period_s if clock_period_s is None
              else clock_period_s)
    if period <= 0:
        raise NetlistError("clock period must be positive")
    with span("sta.compute", instances=len(netlist.instances)):
        add_counter("sta.passes")
        add_counter("sta.instances", len(netlist.instances))
        observe("sta.netlist_instances", len(netlist.instances),
                COUNT_BUCKETS)
        return _compute_sta(netlist, period)


def _compute_sta(netlist: Netlist, period: float) -> TimingReport:
    order = netlist.topo_order()
    n = len(order)
    index = {name: position for position, name in enumerate(order)}
    delay_by_name = netlist.gate_delays()
    delays = [delay_by_name[name] for name in order]

    # Dense adjacency: instance fanins only.  PI fanins arrive at 0 and
    # the strict > below means they can never become the worst fanin,
    # so they drop out of the propagation entirely.
    fanin_indices = [
        [index[fanin] for fanin in netlist.instances[name].fanins
         if fanin in index]
        for name in order
    ]

    arrival = [0.0] * n
    worst_fanin = [-1] * n
    for position in range(n):
        best_arrival = 0.0
        best_fanin = -1
        for fanin in fanin_indices[position]:
            fanin_arrival = arrival[fanin]
            if fanin_arrival > best_arrival:
                best_arrival = fanin_arrival
                best_fanin = fanin
        arrival[position] = best_arrival + delays[position]
        worst_fanin[position] = best_fanin

    endpoint_set = set(netlist.primary_outputs)
    is_endpoint = [name in endpoint_set for name in order]
    fanout_indices = [
        [index[sink] for sink in netlist.fanouts(name)]
        for name in order
    ]

    required = [_INFINITY] * n
    for position in range(n - 1, -1, -1):
        bound = period if is_endpoint[position] else _INFINITY
        for sink in fanout_indices[position]:
            through = required[sink] - delays[sink]
            if through < bound:
                bound = through
        if bound == _INFINITY:
            raise NetlistError(
                f"instance {order[position]!r} reaches no endpoint; "
                f"call Netlist.finalize() first"
            )
        required[position] = bound

    # Trace one critical path from the worst endpoint backwards.
    worst_end = max((position for position in range(n)
                     if is_endpoint[position]),
                    key=lambda position: arrival[position])
    path = [worst_end]
    cursor = worst_fanin[worst_end]
    while cursor >= 0:
        path.append(cursor)
        cursor = worst_fanin[cursor]
    path.reverse()

    return TimingReport(
        clock_period_s=period,
        arrival_s=dict(zip(order, arrival)),
        required_s=dict(zip(order, required)),
        slack_s={name: required[position] - arrival[position]
                 for position, name in enumerate(order)},
        critical_path=tuple(order[position] for position in path),
        endpoints=tuple(netlist.primary_outputs),
    )
