"""Static timing analysis over a :class:`~repro.netlist.graph.Netlist`.

Single-corner, topological arrival/required propagation.  Primary inputs
arrive at t = 0; every primary output must settle within the clock
period.  Slack is reported at each instance output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.obs import COUNT_BUCKETS, add_counter, observe, span

_INFINITY = float("inf")


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA pass."""

    clock_period_s: float
    #: Arrival time at each instance output [s].
    arrival_s: dict[str, float]
    #: Required time at each instance output [s].
    required_s: dict[str, float]
    #: Slack at each instance output [s].
    slack_s: dict[str, float]
    #: Names along (one) critical path, driver first.
    critical_path: tuple[str, ...]

    @property
    def worst_slack_s(self) -> float:
        """Minimum slack over all instances [s]."""
        return min(self.slack_s.values())

    @property
    def critical_delay_s(self) -> float:
        """Longest endpoint arrival time [s]."""
        return max(self.arrival_s.values())

    def meets_timing(self, tolerance_s: float = 0.0) -> bool:
        """True when no slack is worse than ``-tolerance_s``."""
        return self.worst_slack_s >= -tolerance_s

    def path_utilisation(self) -> dict[str, float]:
        """Endpoint arrival as a fraction of the clock period.

        The paper cites MPU slack profiles in which "over half of all
        timing paths commonly use less than half the clock cycle"; this
        is the statistic that claim is about.
        """
        return {name: self.arrival_s[name] / self.clock_period_s
                for name in self.arrival_s}


def compute_sta(netlist: Netlist,
                clock_period_s: float | None = None) -> TimingReport:
    """Run a full STA pass and return a :class:`TimingReport`."""
    period = (netlist.clock_period_s if clock_period_s is None
              else clock_period_s)
    if period <= 0:
        raise NetlistError("clock period must be positive")
    with span("sta.compute", instances=len(netlist.instances)):
        add_counter("sta.passes")
        add_counter("sta.instances", len(netlist.instances))
        observe("sta.netlist_instances", len(netlist.instances),
                COUNT_BUCKETS)
        return _compute_sta(netlist, period)


def _compute_sta(netlist: Netlist, period: float) -> TimingReport:
    order = netlist.topo_order()
    delays = {name: netlist.gate_delay_s(name) for name in order}

    arrival: dict[str, float] = {}
    worst_fanin: dict[str, str | None] = {}
    for name in order:
        instance = netlist.instances[name]
        best_arrival = 0.0
        best_fanin: str | None = None
        for fanin in instance.fanins:
            fanin_arrival = arrival.get(fanin, 0.0)  # PIs arrive at 0
            if fanin_arrival > best_arrival:
                best_arrival = fanin_arrival
                best_fanin = fanin if fanin in netlist.instances else None
        arrival[name] = best_arrival + delays[name]
        worst_fanin[name] = best_fanin

    required: dict[str, float] = {name: _INFINITY for name in order}
    endpoints = set(netlist.primary_outputs)
    for name in reversed(order):
        if name in endpoints:
            required[name] = min(required[name], period)
        for sink in netlist.fanouts(name):
            required[name] = min(required[name],
                                 required[sink] - delays[sink])
        if required[name] == _INFINITY:
            raise NetlistError(
                f"instance {name!r} reaches no endpoint; call "
                f"Netlist.finalize() first"
            )

    slack = {name: required[name] - arrival[name] for name in order}

    # Trace one critical path from the worst endpoint backwards.
    worst_end = max(endpoints, key=lambda name: arrival[name])
    path = [worst_end]
    cursor: str | None = worst_end
    while cursor is not None:
        cursor = worst_fanin[cursor]
        if cursor is not None:
            path.append(cursor)
    path.reverse()

    return TimingReport(
        clock_period_s=period,
        arrival_s=arrival,
        required_s=required,
        slack_s=slack,
        critical_path=tuple(path),
    )
