"""Combinational gate-level netlist with assignment state.

An :class:`Instance` binds a library :class:`~repro.circuits.library.Cell`
to a position in the DAG and carries the mutable optimization state the
paper's flows manipulate: supply domain (multi-Vdd), threshold override
(multi-Vth), re-sizing factor, and a level-converter flag for
low-to-high Vdd boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.circuits.gate import GateDesign, GateModel
from repro.circuits.library import Cell
from repro.errors import NetlistError
from repro.itrs import ITRS_2000

#: Level-converter energy slope: converter capacitance in unit-inverter
#: input caps is ``LC_ENERGY_SLOPE * Vdd_h / Vdd_l`` -- converting a
#: wider supply gap needs a stronger (larger) cascode structure.  At
#: the paper's preferred 0.65 ratio this gives the usual ~2 gate caps.
LC_ENERGY_SLOPE = 1.3

#: Level-converter delay: the driving gate's delay is multiplied by
#: ``1 + LC_DELAY_SLOPE * (Vdd_h / Vdd_l - 1)``; deep conversions are
#: disproportionately slow, which is what pushes the optimal Vdd,l to
#: the paper's 0.6-0.7 x Vdd,h window.
LC_DELAY_SLOPE = 1.0


def lc_cap_factor(vdd_ratio: float) -> float:
    """Converter capacitance in unit input caps for a Vdd,l/Vdd,h ratio."""
    if vdd_ratio <= 0:
        raise NetlistError("supply ratio must be positive")
    return LC_ENERGY_SLOPE / vdd_ratio


def lc_delay_factor(vdd_ratio: float) -> float:
    """Delay multiplier of a converting driver for a Vdd,l/Vdd,h ratio."""
    if vdd_ratio <= 0:
        raise NetlistError("supply ratio must be positive")
    return 1.0 + LC_DELAY_SLOPE * (1.0 / vdd_ratio - 1.0)

#: Endpoint (flip-flop data pin) load, as a multiple of a unit-inverter
#: input capacitance.
FLOP_LOAD_FACTOR = 3.0


@dataclass
class Instance:
    """One gate instance and its optimization state."""

    name: str
    cell: Cell
    fanins: tuple[str, ...]
    #: Supply override [V]; None means the nominal node supply.
    vdd_v: float | None = None
    #: Threshold override [V]; None means the cell's device threshold.
    vth_v: float | None = None
    #: Post-synthesis re-sizing multiplier on the cell's drive strength.
    size_factor: float = 1.0
    #: True when this instance drives a higher-Vdd sink via a converter.
    level_converter: bool = False

    def effective_design(self) -> GateDesign:
        """Cell design with the re-sizing factor applied."""
        if self.size_factor == 1.0:
            return self.cell.design
        return self.cell.design.scaled(self.size_factor)

    def model(self) -> GateModel:
        """Gate model reflecting current Vth/size assignment."""
        device = self.cell.device
        if self.vth_v is not None:
            device = device.with_vth(self.vth_v)
        return GateModel(device, self.effective_design())

    def effective_vdd(self, nominal_vdd_v: float) -> float:
        """Supply this instance runs at [V]."""
        return self.vdd_v if self.vdd_v is not None else nominal_vdd_v


class Netlist:
    """A combinational DAG of gate instances.

    Primary inputs are named terminals; instances reference fanins by
    name (either PI names or other instance names).  Instances must be
    added in topological order (fanins before users), which keeps
    construction O(V + E) and guarantees acyclicity by construction.
    """

    def __init__(self, node_nm: int, clock_period_s: float,
                 wire_cap_per_net_f: float | None = None):
        if clock_period_s <= 0:
            raise NetlistError("clock period must be positive")
        record = ITRS_2000.node(node_nm)
        self.node_nm = node_nm
        self.nominal_vdd_v = record.vdd_v
        self.clock_period_s = clock_period_s
        self.frequency_hz = 1.0 / clock_period_s
        if wire_cap_per_net_f is None:
            wire_cap_per_net_f = units.fF(record.avg_wire_length_um
                                          * record.wire_cap_ff_per_um)
        self.wire_cap_per_net_f = wire_cap_per_net_f
        self.primary_inputs: list[str] = []
        self.instances: dict[str, Instance] = {}
        self.primary_outputs: list[str] = []
        self._output_set: set[str] = set()
        self._fanouts: dict[str, list[str]] = {}

    # --- construction ------------------------------------------------------

    def add_input(self, name: str) -> None:
        """Declare a primary input terminal."""
        if name in self.instances or name in self._fanouts:
            raise NetlistError(f"name {name!r} already used")
        self.primary_inputs.append(name)
        self._fanouts[name] = []

    def add_instance(self, name: str, cell: Cell,
                     fanins: tuple[str, ...]) -> Instance:
        """Add a gate instance; all fanins must already exist."""
        if name in self._fanouts:
            raise NetlistError(f"name {name!r} already used")
        if len(fanins) != cell.design.n_inputs:
            raise NetlistError(
                f"instance {name!r}: cell {cell.name!r} has "
                f"{cell.design.n_inputs} inputs, got {len(fanins)} fanins"
            )
        for fanin in fanins:
            if fanin not in self._fanouts:
                raise NetlistError(
                    f"instance {name!r} references unknown fanin {fanin!r}"
                )
        instance = Instance(name=name, cell=cell, fanins=fanins)
        self.instances[name] = instance
        self._fanouts[name] = []
        for fanin in fanins:
            self._fanouts[fanin].append(name)
        return instance

    def mark_output(self, name: str) -> None:
        """Declare an instance output as a primary output (endpoint)."""
        if name not in self.instances:
            raise NetlistError(f"unknown instance {name!r}")
        if name not in self._output_set:
            self.primary_outputs.append(name)
            self._output_set.add(name)

    def finalize(self) -> None:
        """Mark fanout-free instances as primary outputs and validate."""
        for name in self.instances:
            if not self._fanouts[name]:
                self.mark_output(name)
        if not self.primary_outputs:
            raise NetlistError("netlist has no endpoints")

    # --- queries -----------------------------------------------------------

    def fanouts(self, name: str) -> tuple[str, ...]:
        """Instances driven by ``name``."""
        return tuple(self._fanouts[name])

    def topo_order(self) -> tuple[str, ...]:
        """Instance names in topological order (construction order)."""
        return tuple(self.instances)

    def is_primary_input(self, name: str) -> bool:
        """True when ``name`` is a PI terminal."""
        return name in set(self.primary_inputs)

    def load_f(self, name: str) -> float:
        """Capacitive load on an instance's output net [F].

        Sink pin capacitances (with their re-sizing factors) plus the
        per-net wire capacitance, plus the level-converter input when one
        is present.
        """
        load = self.wire_cap_per_net_f
        for sink_name in self._fanouts[name]:
            sink = self.instances[sink_name]
            load += sink.model().input_cap_f
        if name in self.instances and name in self._output_set:
            load += FLOP_LOAD_FACTOR * self._unit_input_cap()
        instance = self.instances.get(name)
        if instance is not None and instance.level_converter:
            load += self.lc_cap_f(instance)
        return load

    def lc_cap_f(self, instance: Instance) -> float:
        """Level-converter input capacitance for an instance [F]."""
        ratio = instance.effective_vdd(self.nominal_vdd_v) \
            / self.nominal_vdd_v
        return lc_cap_factor(ratio) * self._unit_input_cap()

    def _unit_input_cap(self) -> float:
        any_instance = next(iter(self.instances.values()))
        unit = GateModel(any_instance.cell.device)
        return unit.input_cap_f

    def gate_delay_s(self, name: str) -> float:
        """Delay of one instance into its current load [s]."""
        instance = self.instances[name]
        vdd = instance.effective_vdd(self.nominal_vdd_v)
        delay = instance.model().delay_s(self.load_f(name), vdd_v=vdd)
        if instance.level_converter:
            delay *= lc_delay_factor(vdd / self.nominal_vdd_v)
        return delay

    def gate_delays(self) -> dict[str, float]:
        """Delay of every instance into its current load, in bulk [s].

        Identical arithmetic to calling :meth:`gate_delay_s` per name --
        sink pin capacitances accumulate onto the wire capacitance in
        fanout order -- but each instance's gate model and input
        capacitance are evaluated once instead of once per fanout edge,
        which is what makes full-netlist timing passes scale.
        """
        if not self.instances:
            return {}
        models = {name: instance.model()
                  for name, instance in self.instances.items()}
        input_caps = {name: model.input_cap_f
                      for name, model in models.items()}
        unit_cap = self._unit_input_cap()
        delays: dict[str, float] = {}
        for name, instance in self.instances.items():
            load = self.wire_cap_per_net_f
            for sink_name in self._fanouts[name]:
                load += input_caps[sink_name]
            if name in self._output_set:
                load += FLOP_LOAD_FACTOR * unit_cap
            if instance.level_converter:
                load += self.lc_cap_f(instance)
            vdd = instance.effective_vdd(self.nominal_vdd_v)
            delay = models[name].delay_s(load, vdd_v=vdd)
            if instance.level_converter:
                delay *= lc_delay_factor(vdd / self.nominal_vdd_v)
            delays[name] = delay
        return delays

    def needs_level_converter(self, name: str) -> bool:
        """True when ``name`` drives any sink at a higher supply."""
        instance = self.instances[name]
        vdd = instance.effective_vdd(self.nominal_vdd_v)
        for sink_name in self._fanouts[name]:
            sink_vdd = self.instances[sink_name].effective_vdd(
                self.nominal_vdd_v)
            if sink_vdd > vdd + 1e-9:
                return True
        # Endpoints at reduced supply also convert back up to the
        # (full-swing) flop boundary.
        return name in self._output_set and \
            vdd < self.nominal_vdd_v - 1e-9

    def refresh_level_converters(self) -> int:
        """Set every instance's LC flag from the current Vdd map.

        Returns the number of converters in use.
        """
        count = 0
        for name, instance in self.instances.items():
            instance.level_converter = self.needs_level_converter(name)
            count += instance.level_converter
        return count

    # --- statistics ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Instance counts by topology."""
        result: dict[str, int] = {}
        for instance in self.instances.values():
            key = instance.cell.design.kind.value
            result[key] = result.get(key, 0) + 1
        return result

    def __len__(self) -> int:
        return len(self.instances)
