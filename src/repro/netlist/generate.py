"""Synthetic netlist generator with a calibrated path-slack profile.

The paper's multi-Vdd and dual-Vth savings hinge on the slack
distribution of real MPU netlists: "existing media processor designs
that use CVS report that ~75 % of all gates can tolerate Vdd,l" and
"path slack distributions for high-end MPUs show that over half of all
timing paths commonly use less than half the clock cycle" [21, 22].

We reproduce that profile with a layered random DAG whose endpoints are
spread across logic depths: a few full-depth critical cones plus many
shallow cones.  ``depth_skew`` shapes the endpoint-depth distribution
(depth ~ max_depth * u^depth_skew for uniform u), so larger skews give
more short paths and more slack.
"""

from __future__ import annotations

import random

from repro.circuits.gate import GateKind
from repro.circuits.library import CellLibrary, build_library
from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.itrs import ITRS_2000

#: Topology mix of generated gates: (kind, n_inputs, weight).
_GATE_MIX = (
    (GateKind.INVERTER, 1, 0.35),
    (GateKind.NAND, 2, 0.45),
    (GateKind.NOR, 2, 0.20),
)


def _pick_kind(rng: random.Random) -> tuple[GateKind, int]:
    roll = rng.random()
    cumulative = 0.0
    for kind, n_inputs, weight in _GATE_MIX:
        cumulative += weight
        if roll <= cumulative:
            return kind, n_inputs
    kind, n_inputs, _ = _GATE_MIX[-1]
    return kind, n_inputs


def random_netlist(node_nm: int, n_gates: int = 400, n_inputs: int = 32,
                   max_depth: int = 18, depth_skew: float = 1.6,
                   clock_margin: float = 1.05, seed: int = 0,
                   library: CellLibrary | None = None) -> Netlist:
    """Generate a layered combinational netlist.

    Parameters
    ----------
    node_nm:
        Roadmap node the gates are implemented in.
    n_gates:
        Number of gate instances.
    n_inputs:
        Number of primary inputs.
    max_depth:
        Number of logic levels of the deepest cone.
    depth_skew:
        Endpoint-depth skew; 1.0 spreads endpoints uniformly over depth,
        larger values concentrate them at shallow depths (more slack).
    clock_margin:
        Clock period as a multiple of the generated critical delay.
    seed:
        RNG seed; generation is fully deterministic given the seed.
    library:
        Cell library to draw from (default: ``build_library(node_nm)``).
    """
    if n_gates < max_depth:
        raise NetlistError("need at least one gate per level")
    if max_depth < 2:
        raise NetlistError("max_depth must be at least 2")
    if clock_margin < 1.0:
        raise NetlistError("clock_margin below 1.0 cannot meet timing")
    rng = random.Random(seed)
    if library is None:
        library = build_library(node_nm)

    # Mid-ladder drive strengths so gates can be resized both ways.
    def pick_cell(kind: GateKind):
        candidates = library.cells_of_kind(kind, vth_class="svt")
        mid = [cell for cell in candidates
               if 1.0 <= cell.design.size <= 4.0]
        return rng.choice(mid if mid else candidates)

    # Provisional period; replaced after generation.
    record = ITRS_2000.node(node_nm)
    netlist = Netlist(node_nm, clock_period_s=1.0 / (record.clock_ghz * 1e9))

    for index in range(n_inputs):
        netlist.add_input(f"pi{index}")

    # Assign each gate a level; guarantee each level is populated so the
    # deepest cone really has max_depth stages.
    levels = list(range(1, max_depth + 1))
    for _ in range(n_gates - max_depth):
        depth = 1 + int(max_depth * (rng.random() ** depth_skew))
        levels.append(min(depth, max_depth))
    levels.sort()

    by_level: dict[int, list[str]] = {0: list(netlist.primary_inputs)}
    for index, level in enumerate(levels):
        name = f"g{index}"
        kind, n_pins = _pick_kind(rng)
        cell = pick_cell(kind)
        fanins = []
        for _ in range(n_pins):
            # Mostly the previous level (forms long chains), sometimes a
            # shallower signal for reconvergence.
            if rng.random() < 0.75:
                source_level = level - 1
            else:
                source_level = rng.randrange(0, level)
            while source_level > 0 and source_level not in by_level:
                source_level -= 1
            fanins.append(rng.choice(by_level.get(source_level,
                                                  netlist.primary_inputs)))
        netlist.add_instance(name, cell, tuple(fanins))
        by_level.setdefault(level, []).append(name)

    netlist.finalize()

    # Set the clock from the actual critical delay.
    from repro.netlist.sta import compute_sta  # local import: no cycle
    report = compute_sta(netlist, clock_period_s=1.0)
    netlist.clock_period_s = report.critical_delay_s * clock_margin
    netlist.frequency_hz = 1.0 / netlist.clock_period_s
    return netlist
