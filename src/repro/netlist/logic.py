"""Gate-level logic simulation and measured switching activity.

The paper's power numbers hinge on switching activity factors ("logic
with switching activities on the order of 0.01 to 0.1", Fig. 1;
"high activity circuitry such as datapaths", Section 4).  This module
grounds those factors in actual vectors:

* a **zero-delay** simulator settles each input vector instantly and
  counts functional toggles -- the alpha each net really exhibits;
* a **unit-delay** event simulator propagates waves through the levels,
  counting the *glitch* transitions arithmetic logic produces on top of
  the functional ones -- the mechanism behind the CMOS glitch factor
  used in the MCML comparison (:mod:`repro.circuits.mcml`).

Activities are reported per net as transitions per applied vector; the
whole-netlist power accounting accepts the resulting map directly
(:func:`repro.netlist.power.netlist_power`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuits.gate import GateKind
from repro.errors import NetlistError
from repro.netlist.graph import Netlist


def evaluate_gate(kind: GateKind, inputs: tuple[bool, ...]) -> bool:
    """Boolean function of one gate."""
    if kind is GateKind.INVERTER:
        if len(inputs) != 1:
            raise NetlistError("inverter takes exactly one input")
        return not inputs[0]
    if not inputs:
        raise NetlistError("multi-input gate needs inputs")
    if kind is GateKind.NAND:
        return not all(inputs)
    if kind is GateKind.NOR:
        return not any(inputs)
    raise NetlistError(f"unknown gate kind {kind!r}")


def random_vectors(netlist: Netlist, n_vectors: int,
                   seed: int = 0,
                   flip_probability: float = 0.5) -> list[dict[str, bool]]:
    """Generate a correlated random input-vector sequence.

    Each vector flips every primary input independently with
    ``flip_probability`` relative to the previous vector, so input
    activity itself is controllable (0.5 gives uncorrelated vectors).
    """
    if n_vectors < 1:
        raise NetlistError("need at least one vector")
    if not 0.0 <= flip_probability <= 1.0:
        raise NetlistError("flip probability must lie in [0, 1]")
    rng = random.Random(seed)
    current = {name: rng.random() < 0.5
               for name in netlist.primary_inputs}
    vectors = [dict(current)]
    for _ in range(n_vectors - 1):
        for name in netlist.primary_inputs:
            if rng.random() < flip_probability:
                current[name] = not current[name]
        vectors.append(dict(current))
    return vectors


def evaluate_netlist(netlist: Netlist,
                     inputs: dict[str, bool]) -> dict[str, bool]:
    """Zero-delay evaluation of every net for one input vector.

    ``inputs`` must assign every primary input; the returned map also
    contains every gate output.
    """
    missing = set(netlist.primary_inputs) - set(inputs)
    if missing:
        raise NetlistError(f"vector missing inputs {sorted(missing)}")
    values: dict[str, bool] = dict(inputs)
    for name in netlist.topo_order():
        instance = netlist.instances[name]
        pins = tuple(values[fanin] for fanin in instance.fanins)
        values[name] = evaluate_gate(instance.cell.design.kind, pins)
    return values


_settle = evaluate_netlist


@dataclass(frozen=True)
class SimulationResult:
    """Per-net toggle statistics for a vector sequence."""

    n_vectors: int
    #: Functional (zero-delay) toggles per net.
    functional_toggles: dict[str, int]
    #: Total transitions including glitches (unit-delay) per net.
    total_transitions: dict[str, int]

    def activity(self, name: str) -> float:
        """Functional transitions per applied vector for a net."""
        return self.functional_toggles[name] / max(self.n_vectors - 1, 1)

    def activity_map(self) -> dict[str, float]:
        """Functional activity for every gate output."""
        return {name: self.activity(name)
                for name in self.functional_toggles}

    def glitch_factor(self, name: str) -> float:
        """Total-over-functional transition ratio for a net (>= 1)."""
        functional = self.functional_toggles[name]
        if functional == 0:
            return 1.0
        return self.total_transitions[name] / functional

    def mean_activity(self) -> float:
        """Average functional activity across gate outputs."""
        values = self.activity_map().values()
        return sum(values) / len(self.functional_toggles)

    def mean_glitch_factor(self) -> float:
        """Transition-weighted glitch multiplier across the netlist.

        This is the quantity the MCML comparison's
        ``CMOS_GLITCH_FACTOR`` abstracts.
        """
        functional = sum(self.functional_toggles.values())
        if functional == 0:
            return 1.0
        return sum(self.total_transitions.values()) / functional


def _unit_delay_transitions(netlist: Netlist,
                            before: dict[str, bool],
                            after_inputs: dict[str, bool],
                            counters: dict[str, int]) -> dict[str, bool]:
    """Propagate one input change with unit gate delays, counting every
    intermediate transition, and return the settled values."""
    values = dict(before)
    changed = {name for name in netlist.primary_inputs
               if values[name] != after_inputs[name]}
    for name in changed:
        values[name] = after_inputs[name]
    # Wave-by-wave propagation: at each unit-delay step every gate with
    # a changed fanin re-evaluates simultaneously.
    max_waves = len(netlist) + 1
    for _ in range(max_waves):
        if not changed:
            break
        affected: dict[str, bool] = {}
        for name in sorted(changed):
            for sink in netlist.fanouts(name):
                if sink in affected:
                    continue
                instance = netlist.instances[sink]
                pins = tuple(values[f] for f in instance.fanins)
                affected[sink] = evaluate_gate(
                    instance.cell.design.kind, pins)
        changed = set()
        for name, new_value in affected.items():
            if values[name] != new_value:
                values[name] = new_value
                counters[name] = counters.get(name, 0) + 1
                changed.add(name)
    return values


def simulate(netlist: Netlist,
             vectors: list[dict[str, bool]]) -> SimulationResult:
    """Run both simulators over a vector sequence.

    ``vectors`` must each assign every primary input.
    """
    if len(vectors) < 2:
        raise NetlistError("need at least two vectors to count toggles")
    for vector in vectors:
        missing = set(netlist.primary_inputs) - set(vector)
        if missing:
            raise NetlistError(f"vector missing inputs {sorted(missing)}")

    gate_names = list(netlist.topo_order())
    functional = {name: 0 for name in gate_names}
    total = {name: 0 for name in gate_names}

    settled = _settle(netlist, vectors[0])
    for vector in vectors[1:]:
        next_settled = _settle(netlist, vector)
        for name in gate_names:
            if settled[name] != next_settled[name]:
                functional[name] += 1
        unit_values = _unit_delay_transitions(netlist, settled, vector,
                                              total)
        # The unit-delay simulator must settle to the functional values.
        for name in gate_names:
            if unit_values[name] != next_settled[name]:
                raise NetlistError(
                    f"unit-delay simulation failed to settle at {name!r}"
                )
        settled = next_settled

    return SimulationResult(
        n_vectors=len(vectors),
        functional_toggles=functional,
        total_transitions=total,
    )


def measured_activity(netlist: Netlist, n_vectors: int = 200,
                      seed: int = 0,
                      flip_probability: float = 0.5
                      ) -> SimulationResult:
    """Convenience wrapper: random vectors -> simulation result."""
    vectors = random_vectors(netlist, n_vectors, seed, flip_probability)
    return simulate(netlist, vectors)
