"""Structured datapath generator: a NAND-only ripple-carry adder.

The random generator (:mod:`repro.netlist.generate`) produces
statistically realistic netlists; this module produces a *functionally
meaningful* one -- an N-bit ripple-carry adder built from 2-input NANDs
-- which serves three purposes:

* it gives the logic simulator an arithmetic ground truth
  (``sum == a + b + cin``) to be verified against;
* its carry chain is the canonical glitch generator, grounding the
  datapath glitch multiplier the MCML comparison charges CMOS for
  (Section 4, ref [42]);
* it gives the optimization flows a circuit whose critical path (the
  carry ripple) and slack structure (early sum bits) are *known*, not
  sampled.

Construction per bit (9 NANDs): ``x = NAND(a, b)``; the XOR of a and b
via the 4-NAND idiom; the sum as the XOR of that with the carry; and
``cout = NAND(x, NAND(a XOR b, cin))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gate import GateKind
from repro.circuits.library import CellLibrary, build_library
from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.netlist.logic import evaluate_netlist
from repro.itrs import ITRS_2000

#: Gates per full-adder bit.
GATES_PER_BIT = 9


@dataclass(frozen=True)
class AdderPorts:
    """Named ports of a generated ripple-carry adder."""

    a: tuple[str, ...]
    b: tuple[str, ...]
    cin: str
    sum: tuple[str, ...]
    cout: str

    @property
    def width(self) -> int:
        """Operand width in bits."""
        return len(self.a)


def _xor4(netlist: Netlist, cell, prefix: str, a: str,
          b: str) -> tuple[str, str]:
    """4-NAND XOR; returns (xor_output, nand(a,b) by-product)."""
    x = f"{prefix}_x"
    netlist.add_instance(x, cell, (a, b))
    s1 = f"{prefix}_s1"
    netlist.add_instance(s1, cell, (a, x))
    s2 = f"{prefix}_s2"
    netlist.add_instance(s2, cell, (b, x))
    out = f"{prefix}_y"
    netlist.add_instance(out, cell, (s1, s2))
    return out, x


def build_ripple_adder(node_nm: int, width: int = 8,
                       clock_margin: float = 1.10,
                       library: CellLibrary | None = None,
                       drive_index: int = 4
                       ) -> tuple[Netlist, AdderPorts]:
    """Build an N-bit ripple-carry adder netlist.

    Returns the netlist and its port map; the clock is set to
    ``clock_margin`` times the adder's own critical (carry) path.
    """
    if width < 1:
        raise NetlistError("adder needs at least one bit")
    if clock_margin < 1.0:
        raise NetlistError("clock_margin below 1.0 cannot meet timing")
    if library is None:
        library = build_library(node_nm)
    nands = library.cells_of_kind(GateKind.NAND, vth_class="svt")
    if not 0 <= drive_index < len(nands):
        raise NetlistError(
            f"drive_index must lie in [0, {len(nands)})"
        )
    cell = nands[drive_index]

    record = ITRS_2000.node(node_nm)
    netlist = Netlist(node_nm,
                      clock_period_s=1.0 / (record.clock_ghz * 1e9))

    a_ports = tuple(f"a{i}" for i in range(width))
    b_ports = tuple(f"b{i}" for i in range(width))
    for name in (*a_ports, *b_ports, "cin"):
        netlist.add_input(name)

    carry = "cin"
    sums = []
    for i in range(width):
        prefix = f"fa{i}"
        axb, nand_ab = _xor4(netlist, cell, f"{prefix}_p", a_ports[i],
                             b_ports[i])
        sum_bit, nand_pc = _xor4(netlist, cell, f"{prefix}_s", axb,
                                 carry)
        cout = f"{prefix}_c"
        netlist.add_instance(cout, cell, (nand_ab, nand_pc))
        sums.append(sum_bit)
        carry = cout

    for name in (*sums, carry):
        netlist.mark_output(name)
    netlist.finalize()

    from repro.netlist.sta import compute_sta  # local import, no cycle
    report = compute_sta(netlist, clock_period_s=1.0)
    netlist.clock_period_s = report.critical_delay_s * clock_margin
    netlist.frequency_hz = 1.0 / netlist.clock_period_s

    ports = AdderPorts(a=a_ports, b=b_ports, cin="cin",
                       sum=tuple(sums), cout=carry)
    return netlist, ports


def adder_inputs(ports: AdderPorts, a: int, b: int,
                 cin: int = 0) -> dict[str, bool]:
    """Encode two integers (and a carry-in) as an input vector."""
    width = ports.width
    if not 0 <= a < 2 ** width or not 0 <= b < 2 ** width:
        raise NetlistError(f"operands must fit in {width} bits")
    if cin not in (0, 1):
        raise NetlistError("cin must be 0 or 1")
    vector: dict[str, bool] = {ports.cin: bool(cin)}
    for i in range(width):
        vector[ports.a[i]] = bool((a >> i) & 1)
        vector[ports.b[i]] = bool((b >> i) & 1)
    return vector


def read_sum(netlist: Netlist, ports: AdderPorts,
             vector: dict[str, bool]) -> int:
    """Evaluate the adder on a vector and decode the integer result."""
    values = evaluate_netlist(netlist, vector)
    result = 0
    for i, name in enumerate(ports.sum):
        result |= int(values[name]) << i
    result |= int(values[ports.cout]) << ports.width
    return result
