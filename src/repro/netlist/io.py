"""Plain-text netlist serialisation (the ``.rnl`` format).

A minimal structural format so designs survive a session and golden
netlists can live under version control::

    # rnl v1
    node 100
    clock 8.48e-10
    input a
    input b
    gate g0 nand2_x2 a b
    gate g1 inv_x1.414 g0
    output g1
    attr g0 vdd 0.78
    attr g1 vth 0.12
    attr g1 size 0.8

Cell references are resolved against the node's default library
(:func:`repro.circuits.library.build_library`); ``attr`` lines restore
the optimization state (supply, threshold override, re-sizing factor).
Round-tripping preserves structure, clocking and assignment state
exactly (see ``tests/test_netlist_io.py``).
"""

from __future__ import annotations

import io

from repro.circuits.library import build_library, CellLibrary
from repro.errors import NetlistError
from repro.netlist.graph import Netlist

FORMAT_HEADER = "# rnl v1"


def dump_netlist(netlist: Netlist, stream: io.TextIOBase) -> None:
    """Write a netlist to a text stream."""
    stream.write(f"{FORMAT_HEADER}\n")
    stream.write(f"node {netlist.node_nm}\n")
    stream.write(f"clock {netlist.clock_period_s!r}\n")
    stream.write(f"wirecap {netlist.wire_cap_per_net_f!r}\n")
    for name in netlist.primary_inputs:
        stream.write(f"input {name}\n")
    for name, instance in netlist.instances.items():
        fanins = " ".join(instance.fanins)
        stream.write(f"gate {name} {instance.cell.name} {fanins}\n")
    for name in netlist.primary_outputs:
        stream.write(f"output {name}\n")
    for name, instance in netlist.instances.items():
        if instance.vdd_v is not None:
            stream.write(f"attr {name} vdd {instance.vdd_v!r}\n")
        if instance.vth_v is not None:
            stream.write(f"attr {name} vth {instance.vth_v!r}\n")
        if instance.size_factor != 1.0:
            stream.write(f"attr {name} size {instance.size_factor!r}\n")


def dumps_netlist(netlist: Netlist) -> str:
    """Serialise a netlist to a string."""
    buffer = io.StringIO()
    dump_netlist(netlist, buffer)
    return buffer.getvalue()


def _tokenise(stream: io.TextIOBase) -> list[list[str]]:
    lines = []
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lines.append(line.split())
    return lines


def load_netlist(stream: io.TextIOBase,
                 library: CellLibrary | None = None) -> Netlist:
    """Parse a netlist from a text stream."""
    lines = _tokenise(stream)
    if not lines:
        raise NetlistError("empty netlist file")

    node_nm: int | None = None
    clock_s: float | None = None
    wirecap_f: float | None = None
    header: list[list[str]] = []
    body: list[list[str]] = []
    for tokens in lines:
        if tokens[0] in ("node", "clock", "wirecap"):
            header.append(tokens)
        else:
            body.append(tokens)
    for tokens in header:
        keyword = tokens[0]
        if len(tokens) != 2:
            raise NetlistError(f"malformed header line: {tokens}")
        if keyword == "node":
            node_nm = int(tokens[1])
        elif keyword == "clock":
            clock_s = float(tokens[1])
        else:
            wirecap_f = float(tokens[1])
    if node_nm is None or clock_s is None:
        raise NetlistError("netlist file needs 'node' and 'clock' lines")

    if library is None:
        library = build_library(node_nm)
    cells = {cell.name: cell for cell in library.cells}

    netlist = Netlist(node_nm, clock_period_s=clock_s,
                      wire_cap_per_net_f=wirecap_f)
    outputs: list[str] = []
    attrs: list[list[str]] = []
    for tokens in body:
        keyword = tokens[0]
        if keyword == "input":
            if len(tokens) != 2:
                raise NetlistError(f"malformed input line: {tokens}")
            netlist.add_input(tokens[1])
        elif keyword == "gate":
            if len(tokens) < 4:
                raise NetlistError(f"malformed gate line: {tokens}")
            name, cell_name = tokens[1], tokens[2]
            if cell_name not in cells:
                raise NetlistError(
                    f"unknown cell {cell_name!r} for instance {name!r}"
                )
            netlist.add_instance(name, cells[cell_name],
                                 tuple(tokens[3:]))
        elif keyword == "output":
            if len(tokens) != 2:
                raise NetlistError(f"malformed output line: {tokens}")
            outputs.append(tokens[1])
        elif keyword == "attr":
            if len(tokens) != 4:
                raise NetlistError(f"malformed attr line: {tokens}")
            attrs.append(tokens)
        else:
            raise NetlistError(f"unknown keyword {keyword!r}")

    for name in outputs:
        netlist.mark_output(name)
    if not outputs:
        netlist.finalize()

    for _, name, attribute, value in attrs:
        if name not in netlist.instances:
            raise NetlistError(f"attr for unknown instance {name!r}")
        instance = netlist.instances[name]
        if attribute == "vdd":
            instance.vdd_v = float(value)
        elif attribute == "vth":
            instance.vth_v = float(value)
        elif attribute == "size":
            instance.size_factor = float(value)
        else:
            raise NetlistError(f"unknown attribute {attribute!r}")
    netlist.refresh_level_converters()
    return netlist


def loads_netlist(text: str,
                  library: CellLibrary | None = None) -> Netlist:
    """Parse a netlist from a string."""
    return load_netlist(io.StringIO(text), library)


def save_netlist(netlist: Netlist, path: str) -> None:
    """Write a netlist to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_netlist(netlist, stream)


def read_netlist(path: str,
                 library: CellLibrary | None = None) -> Netlist:
    """Read a netlist from a file."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_netlist(stream, library)
