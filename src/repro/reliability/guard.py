"""Guarded numerical solves: validated, observable, fallback-equipped.

Every headline result in the paper flows through an iterative numerical
routine -- the Ioff calibration root finds (Eqs. 2-4), the
electrothermal fixed point of Section 2, the resistive power-grid solve
behind Fig. 5.  Left unguarded, these are exactly the routines that
return silent NaN/garbage when a parameter leaves its domain or an
iteration stalls.  This module wraps them with one contract:

* **domain/bracket validation up front** -- non-finite endpoints,
  inverted brackets, and sign-change violations are rejected before any
  iteration runs;
* **non-convergence and NaN/Inf detection** -- a solve either returns a
  finite, converged answer or raises; nothing non-finite escapes;
* **one fallback strategy per step** -- bisection after a Brent
  failure, damped-relaxation restart for fixed points, a direct
  factorization after a conjugate-gradient miss, a dense solve after a
  sparse factorization failure;
* **structured errors** -- failures raise
  :class:`~repro.errors.CalibrationError` carrying iteration counts,
  best residuals, and the fallback attempted
  (:class:`SolveDiagnostics`), never a bare message.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np
from scipy.optimize import brentq

from repro.errors import CalibrationError
from repro.obs import (
    COUNT_BUCKETS,
    RESIDUAL_BUCKETS,
    add_counter,
    observe,
    span,
)

FALLBACK_BISECT = "bisect"
FALLBACK_RELAXATION = "relaxation"
FALLBACK_DENSE = "dense"
FALLBACK_DIRECT = "direct"

#: Below this many unknowns a direct factorization beats CG setup cost,
#: so the ``spd=True`` path skips straight to ``spsolve``.
CG_MIN_UNKNOWNS = 256


def _observe_solve(kind: str, iterations: int, residual: float | None,
                   fallback: str | None, converged: bool) -> None:
    """Land one solve's outcome in the distribution metrics.

    Successful solves previously dropped their final residual on the
    floor (only :class:`~repro.errors.CalibrationError` carried it);
    recording it here is what lets ``repro stats`` judge model fidelity
    from the residual distribution, not just failure counts.
    """
    observe("solver.iterations_per_solve", iterations, COUNT_BUCKETS,
            kind=kind)
    if residual is not None and math.isfinite(residual):
        observe("solver.residual", abs(residual), RESIDUAL_BUCKETS,
                kind=kind, converged=converged)
    # 0 = primary strategy sufficed, 1 = the one fallback ran.
    observe("solver.fallback_depth", 0 if fallback is None else 1,
            (0.5, 1.5), kind=kind)


@dataclass(frozen=True)
class SolveDiagnostics:
    """How a guarded solve went (attached to results and errors)."""

    name: str
    method: str
    iterations: int
    residual: float | None
    fallback: str | None = None
    bracket: tuple[float, float] | None = None
    converged: bool = True


@dataclass(frozen=True)
class GuardedRoot:
    """A validated scalar root plus its solve diagnostics."""

    root: float
    diagnostics: SolveDiagnostics


@dataclass(frozen=True)
class GuardedSolution:
    """A validated linear-system solution plus its solve diagnostics."""

    x: np.ndarray
    diagnostics: SolveDiagnostics


class _NonFiniteResidual(Exception):
    """Internal: the residual escaped to NaN/Inf during iteration."""

    def __init__(self, at: float) -> None:
        super().__init__(f"non-finite residual at {at!r}")
        self.at = at


def _checked(residual: Callable[[float], float]
             ) -> Callable[[float], float]:
    def wrapped(x: float) -> float:
        value = float(residual(x))
        if not math.isfinite(value):
            raise _NonFiniteResidual(x)
        return value
    return wrapped


def _fail(name: str, message: str, *, iterations: int = 0,
          residual: float | None = None, fallback: str | None = None,
          bracket: tuple[float, float] | None = None) -> CalibrationError:
    diagnostics = SolveDiagnostics(
        name=name, method="failed", iterations=iterations,
        residual=residual, fallback=fallback, bracket=bracket,
        converged=False)
    return CalibrationError(
        f"{name}: {message} "
        f"[iterations={iterations}, residual={residual!r}, "
        f"fallback={fallback!r}]",
        iterations=iterations, residual=residual, fallback=fallback,
        diagnostics=diagnostics)


def _bisect(residual: Callable[[float], float], lo: float, hi: float,
            f_lo: float, *, xtol: float, max_iter: int
            ) -> tuple[float, int, float, bool]:
    """Plain bisection; assumes a validated sign change on [lo, hi]."""
    low, high, f_low = lo, hi, f_lo
    iterations = 0
    while iterations < max_iter and (high - low) > xtol:
        iterations += 1
        mid = 0.5 * (low + high)
        f_mid = residual(mid)
        if f_mid == 0.0:
            return mid, iterations, 0.0, True
        if (f_mid > 0.0) == (f_low > 0.0):
            low, f_low = mid, f_mid
        else:
            high = mid
    mid = 0.5 * (low + high)
    return mid, iterations, residual(mid), (high - low) <= xtol


def _relaxation(residual: Callable[[float], float], lo: float,
                hi: float, *, xtol: float, max_iter: int
                ) -> tuple[float, int, float, bool]:
    """Damped fixed-point iteration on ``x <- x + w f(x)``, restarting
    from the bracket midpoint with a halved damping factor whenever the
    residual diverges (the classic relaxation restart for the
    electrothermal loop, where ``f`` is ``g(T) - T``)."""
    iterations = 0
    x = 0.5 * (lo + hi)
    for weight in (0.5, 0.25, 0.125, 0.0625):
        x = 0.5 * (lo + hi)
        best = abs(residual(x))
        for _ in range(max_iter):
            iterations += 1
            step = weight * residual(x)
            x = min(hi, max(lo, x + step))
            abs_f = abs(residual(x))
            if abs(step) <= xtol:
                return x, iterations, residual(x), True
            if abs_f > 10.0 * best:
                break  # diverging: restart with stronger damping
            best = min(best, abs_f)
    return x, iterations, residual(x), False


def guarded_solve(residual: Callable[[float], float], lo: float,
                  hi: float, *, name: str, xtol: float = 1e-9,
                  max_iter: int = 100,
                  fallback: str = FALLBACK_BISECT) -> GuardedRoot:
    """Find a root of ``residual`` on ``[lo, hi]`` or raise structurally.

    Brent's method is the primary strategy; on non-convergence or a
    NaN/Inf escape the named ``fallback`` (:data:`FALLBACK_BISECT` or
    :data:`FALLBACK_RELAXATION`) gets one shot.  Both the returned
    :class:`GuardedRoot` and any raised
    :class:`~repro.errors.CalibrationError` carry full
    :class:`SolveDiagnostics`.
    """
    with span(f"solve.{name}", kind="root") as solve_span:
        add_counter("solver.solves")
        try:
            result = _guarded_solve(residual, lo, hi, name=name,
                                    xtol=xtol, max_iter=max_iter,
                                    fallback=fallback)
        except CalibrationError as exc:
            add_counter("solver.failures")
            add_counter("solver.iterations", exc.iterations or 0)
            _observe_solve("root", exc.iterations or 0, exc.residual,
                           exc.fallback, converged=False)
            raise
        diagnostics = result.diagnostics
        add_counter("solver.iterations", diagnostics.iterations)
        if diagnostics.fallback is not None:
            add_counter("solver.fallbacks")
        _observe_solve("root", diagnostics.iterations,
                       diagnostics.residual, diagnostics.fallback,
                       converged=True)
        solve_span.set(method=diagnostics.method,
                       iterations=diagnostics.iterations)
    return result


def _guarded_solve(residual: Callable[[float], float], lo: float,
                   hi: float, *, name: str, xtol: float,
                   max_iter: int, fallback: str) -> GuardedRoot:
    if fallback not in (FALLBACK_BISECT, FALLBACK_RELAXATION):
        raise ValueError(f"unknown fallback {fallback!r}")
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise _fail(name, f"non-finite bracket [{lo!r}, {hi!r}]",
                    bracket=(lo, hi))
    if lo >= hi:
        raise _fail(name, f"empty bracket [{lo}, {hi}]", bracket=(lo, hi))

    checked = _checked(residual)
    try:
        f_lo, f_hi = checked(lo), checked(hi)
    except _NonFiniteResidual as exc:
        raise _fail(name, f"residual non-finite at bracket point "
                          f"{exc.at!r}", bracket=(lo, hi)) from exc
    if f_lo == 0.0 or f_hi == 0.0:
        root = lo if f_lo == 0.0 else hi
        return GuardedRoot(root, SolveDiagnostics(
            name=name, method="bracket-endpoint", iterations=0,
            residual=0.0, bracket=(lo, hi)))
    if (f_lo > 0.0) == (f_hi > 0.0):
        raise _fail(name, f"no sign change on [{lo}, {hi}] "
                          f"(f(lo)={f_lo:.6g}, f(hi)={f_hi:.6g})",
                    residual=min(abs(f_lo), abs(f_hi)),
                    bracket=(lo, hi))

    primary_iterations = 0
    try:
        root, report = brentq(checked, lo, hi, xtol=xtol,
                              maxiter=max_iter, full_output=True,
                              disp=False)
        primary_iterations = report.iterations
        final = checked(float(root))
        if report.converged and math.isfinite(float(root)):
            return GuardedRoot(float(root), SolveDiagnostics(
                name=name, method="brentq",
                iterations=primary_iterations, residual=final,
                bracket=(lo, hi)))
    except (_NonFiniteResidual, ValueError, RuntimeError):
        pass

    # one fallback attempt
    try:
        if fallback == FALLBACK_BISECT:
            root, extra, final, converged = _bisect(
                checked, lo, hi, f_lo, xtol=xtol, max_iter=2 * max_iter)
        else:
            root, extra, final, converged = _relaxation(
                checked, lo, hi, xtol=xtol, max_iter=max_iter)
    except _NonFiniteResidual as exc:
        raise _fail(name, f"residual escaped to NaN/Inf at {exc.at!r} "
                          f"during {fallback} fallback",
                    iterations=primary_iterations, fallback=fallback,
                    bracket=(lo, hi)) from exc
    iterations = primary_iterations + extra
    if converged and math.isfinite(root) and math.isfinite(final):
        return GuardedRoot(float(root), SolveDiagnostics(
            name=name, method=f"{fallback}-fallback",
            iterations=iterations, residual=final, fallback=fallback,
            bracket=(lo, hi)))
    raise _fail(name, "failed to converge (primary and fallback "
                      "exhausted)", iterations=iterations,
                residual=final if math.isfinite(final) else None,
                fallback=fallback, bracket=(lo, hi))


def guarded_linear_solve(matrix: Any, rhs: np.ndarray, *, name: str,
                         rtol: float = 1e-8,
                         dense_fallback_max: int = 20000,
                         spd: bool = False,
                         cg_min_unknowns: int = CG_MIN_UNKNOWNS
                         ) -> GuardedSolution:
    """Solve a sparse linear system with validation and fallbacks.

    With ``spd=True`` the caller asserts the matrix is symmetric
    positive definite, and systems of at least ``cg_min_unknowns``
    unknowns are solved by Jacobi-preconditioned conjugate gradients
    first -- the scaling path for large Laplacians, whose iteration
    count and residual land in the ``solver.iterations_per_solve`` /
    ``solver.residual`` histograms like every other guarded solve.  A
    CG breakdown or missed tolerance falls back to the direct
    factorization (``fallback="direct"`` in the diagnostics), so the
    iterative path can never *weaken* the guarantee.

    The sparse factorization (``scipy.sparse.linalg.spsolve``) is the
    primary strategy otherwise; if it raises, or the solution carries
    NaN/Inf, or the relative residual exceeds ``rtol``, one dense
    (``numpy.linalg.solve``) attempt is made for systems up to
    ``dense_fallback_max`` unknowns.  Failures raise
    :class:`~repro.errors.CalibrationError` with the residual achieved.
    """
    with span(f"solve.{name}", kind="linear") as solve_span:
        add_counter("solver.solves")
        try:
            result = _guarded_linear_solve(
                matrix, rhs, name=name, rtol=rtol,
                dense_fallback_max=dense_fallback_max, spd=spd,
                cg_min_unknowns=cg_min_unknowns)
        except CalibrationError as exc:
            add_counter("solver.failures")
            add_counter("solver.iterations", exc.iterations or 0)
            _observe_solve("linear", exc.iterations or 0, exc.residual,
                           exc.fallback, converged=False)
            raise
        diagnostics = result.diagnostics
        add_counter("solver.iterations", diagnostics.iterations)
        if diagnostics.fallback is not None:
            add_counter("solver.fallbacks")
        _observe_solve("linear", diagnostics.iterations,
                       diagnostics.residual, diagnostics.fallback,
                       converged=True)
        solve_span.set(method=diagnostics.method,
                       unknowns=int(result.x.size))
    return result


def _try_cg(sparse: Any, rhs: np.ndarray, *, rtol: float,
            rel_residual: Callable[[np.ndarray], float]
            ) -> tuple[np.ndarray | None, int]:
    """One Jacobi-preconditioned CG attempt; ``(None, iters)`` on miss.

    The CG tolerance is driven two decades below the guard's ``rtol``
    (2-norm vs the guard's max-norm check) and the iteration budget
    scales with ``sqrt(n)`` -- the expected count for a
    Jacobi-preconditioned 2-D Laplacian -- so a genuinely
    ill-conditioned system falls through to the factorization quickly
    instead of spinning.
    """
    from scipy.sparse.linalg import LinearOperator, cg

    diag = np.asarray(sparse.diagonal(), dtype=float)
    if not (np.all(np.isfinite(diag)) and np.all(diag > 0.0)):
        return None, 0  # not plausibly SPD; skip straight to direct
    inv_diag = 1.0 / diag
    preconditioner = LinearOperator(
        sparse.shape, matvec=lambda v: inv_diag * v)
    iterations = 0

    def count(_: np.ndarray) -> None:
        nonlocal iterations
        iterations += 1

    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x, info = cg(sparse, rhs,
                         rtol=min(1e-10, rtol * 1e-2), atol=0.0,
                         maxiter=int(8.0 * math.sqrt(rhs.size)) + 100,
                         M=preconditioner, callback=count)
    except Exception:
        return None, iterations
    x = np.asarray(x, dtype=float)
    if info == 0 and np.all(np.isfinite(x)) \
            and rel_residual(x) <= rtol:
        return x, iterations
    return None, iterations


def _guarded_linear_solve(matrix: Any, rhs: np.ndarray, *, name: str,
                          rtol: float, dense_fallback_max: int,
                          spd: bool, cg_min_unknowns: int
                          ) -> GuardedSolution:
    from scipy.sparse.linalg import spsolve

    rhs = np.asarray(rhs, dtype=float)
    if rhs.size == 0:
        raise _fail(name, "empty linear system")
    if not np.all(np.isfinite(rhs)):
        raise _fail(name, "right-hand side contains NaN/Inf")
    data = matrix.data if hasattr(matrix, "data") else np.asarray(matrix)
    if not np.all(np.isfinite(data)):
        raise _fail(name, "matrix contains NaN/Inf entries")

    scale = float(np.max(np.abs(rhs)))

    def rel_residual(x: np.ndarray) -> float:
        return float(np.max(np.abs(matrix @ x - rhs))) / max(scale, 1e-300)

    sparse = matrix.tocsr() if hasattr(matrix, "tocsr") else matrix

    cg_attempted = False
    cg_iterations = 0
    if spd and rhs.size >= cg_min_unknowns and hasattr(sparse, "diagonal"):
        cg_attempted = True
        x, cg_iterations = _try_cg(sparse, rhs, rtol=rtol,
                                   rel_residual=rel_residual)
        if x is not None:
            return GuardedSolution(x, SolveDiagnostics(
                name=name, method="cg", iterations=cg_iterations,
                residual=rel_residual(x)))

    fallback_used = None
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x = spsolve(sparse, rhs)
        x = np.asarray(x, dtype=float)
        if np.all(np.isfinite(x)) and rel_residual(x) <= rtol:
            return GuardedSolution(x, SolveDiagnostics(
                name=name, method="spsolve",
                iterations=cg_iterations + 1,
                residual=rel_residual(x),
                fallback=FALLBACK_DIRECT if cg_attempted else None))
    except Exception:
        x = None

    # one dense fallback attempt
    residual = None
    if rhs.size <= dense_fallback_max:
        fallback_used = FALLBACK_DENSE
        try:
            dense = (matrix.toarray() if hasattr(matrix, "toarray")
                     else np.asarray(matrix, dtype=float))
            x = np.linalg.solve(dense, rhs)
            if np.all(np.isfinite(x)):
                residual = rel_residual(x)
                if residual <= rtol:
                    return GuardedSolution(x, SolveDiagnostics(
                        name=name, method="spsolve",
                        iterations=cg_iterations + 2,
                        residual=residual, fallback=FALLBACK_DENSE))
        except np.linalg.LinAlgError:
            pass
    raise _fail(name, "linear solve failed (singular or ill-conditioned "
                      "system)",
                iterations=cg_iterations + (2 if fallback_used else 1),
                residual=residual, fallback=fallback_used)
