"""Guarded numerical solves: validated, observable, fallback-equipped.

Every headline result in the paper flows through an iterative numerical
routine -- the Ioff calibration root finds (Eqs. 2-4), the
electrothermal fixed point of Section 2, the resistive power-grid solve
behind Fig. 5.  Left unguarded, these are exactly the routines that
return silent NaN/garbage when a parameter leaves its domain or an
iteration stalls.  This module wraps them with one contract:

* **domain/bracket validation up front** -- non-finite endpoints,
  inverted brackets, and sign-change violations are rejected before any
  iteration runs;
* **non-convergence and NaN/Inf detection** -- a solve either returns a
  finite, converged answer or raises; nothing non-finite escapes;
* **one fallback strategy per step** -- bisection after a Brent
  failure, damped-relaxation restart for fixed points, a direct
  factorization after a conjugate-gradient miss, a dense solve after a
  sparse factorization failure;
* **structured errors** -- failures raise
  :class:`~repro.errors.CalibrationError` carrying iteration counts,
  best residuals, and the fallback attempted
  (:class:`SolveDiagnostics`), never a bare message.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np
from scipy.optimize import brentq

from repro.errors import CalibrationError
from repro.obs import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    RESIDUAL_BUCKETS,
    add_counter,
    observe,
    span,
)
from repro.reliability.precond import (
    PRECONDITIONER_CACHE,
    jacobi_preconditioner,
)

FALLBACK_BISECT = "bisect"
FALLBACK_RELAXATION = "relaxation"
FALLBACK_DENSE = "dense"
FALLBACK_DIRECT = "direct"

#: Below this many unknowns a direct factorization beats CG setup cost,
#: so the ``spd=True`` path skips straight to ``spsolve``.
CG_MIN_UNKNOWNS = 256

#: ``auto`` ladder threshold: below this many unknowns Jacobi-CG
#: converges in affordable O(sqrt(n)) iterations; at or above it the
#: multilevel setup cost pays for itself within a single solve.
AMG_MIN_UNKNOWNS = 32768

#: Iteration budget for multilevel-preconditioned CG.  The V-cycle
#: makes the iteration count essentially mesh-size-independent (tens),
#: so the budget is a small constant rather than a function of ``n``.
AMG_MAX_ITERATIONS = 300

#: CG cannot reliably push the preconditioned relative residual below
#: the float64 rounding floor, which grows like ``eps * sqrt(n)`` for
#: mesh-like operators.  This factor sets the safety margin above it.
CG_NOISE_FLOOR_FACTOR = 50.0

#: Memory cap for the dense fallback: ``n^2 * 8`` bytes must stay
#: under this bound (512 MiB -> n <= ~8192) regardless of the caller's
#: ``dense_fallback_max``, so a failed sparse solve on a huge system
#: degrades to a structured error instead of an OOM kill.
DENSE_FALLBACK_MAX_BYTES = 512 * 1024 * 1024

PRECONDITIONER_AUTO = "auto"
PRECONDITIONER_JACOBI = "jacobi"
PRECONDITIONER_AMG = "amg"
PRECONDITIONER_NONE = "none"
PRECONDITIONER_CHOICES = (PRECONDITIONER_AUTO, PRECONDITIONER_JACOBI,
                          PRECONDITIONER_AMG, PRECONDITIONER_NONE)

#: Environment override for the default preconditioner policy --
#: the CLI ``--preconditioner`` knob sets this for child workers too.
PRECONDITIONER_ENV = "REPRO_PRECONDITIONER"


def _default_preconditioner() -> str:
    value = os.environ.get(PRECONDITIONER_ENV, "").strip().lower()
    return value if value in PRECONDITIONER_CHOICES \
        else PRECONDITIONER_AUTO


def _observe_solve(kind: str, iterations: int, residual: float | None,
                   fallback: str | None, converged: bool) -> None:
    """Land one solve's outcome in the distribution metrics.

    Successful solves previously dropped their final residual on the
    floor (only :class:`~repro.errors.CalibrationError` carried it);
    recording it here is what lets ``repro stats`` judge model fidelity
    from the residual distribution, not just failure counts.
    """
    observe("solver.iterations_per_solve", iterations, COUNT_BUCKETS,
            kind=kind)
    if residual is not None and math.isfinite(residual):
        observe("solver.residual", abs(residual), RESIDUAL_BUCKETS,
                kind=kind, converged=converged)
    # 0 = primary strategy sufficed, 1 = the one fallback ran.
    observe("solver.fallback_depth", 0 if fallback is None else 1,
            (0.5, 1.5), kind=kind)


@dataclass(frozen=True)
class SolveDiagnostics:
    """How a guarded solve went (attached to results and errors)."""

    name: str
    method: str
    iterations: int
    residual: float | None
    fallback: str | None = None
    bracket: tuple[float, float] | None = None
    converged: bool = True
    #: Preconditioner kind actually applied on the CG path
    #: ("jacobi" / "amg" / "none"), ``None`` for non-CG methods.
    preconditioner: str | None = None
    #: True when the multilevel setup came from the reuse cache.
    setup_reused: bool = False
    #: Preconditioner setup seconds vs iteration seconds -- the split
    #: that justifies (and monitors) setup reuse across sweep points.
    setup_s: float | None = None
    solve_s: float | None = None


@dataclass(frozen=True)
class GuardedRoot:
    """A validated scalar root plus its solve diagnostics."""

    root: float
    diagnostics: SolveDiagnostics


@dataclass(frozen=True)
class GuardedSolution:
    """A validated linear-system solution plus its solve diagnostics."""

    x: np.ndarray
    diagnostics: SolveDiagnostics


class _NonFiniteResidual(Exception):
    """Internal: the residual escaped to NaN/Inf during iteration."""

    def __init__(self, at: float) -> None:
        super().__init__(f"non-finite residual at {at!r}")
        self.at = at


def _checked(residual: Callable[[float], float]
             ) -> Callable[[float], float]:
    def wrapped(x: float) -> float:
        value = float(residual(x))
        if not math.isfinite(value):
            raise _NonFiniteResidual(x)
        return value
    return wrapped


def _fail(name: str, message: str, *, iterations: int = 0,
          residual: float | None = None, fallback: str | None = None,
          bracket: tuple[float, float] | None = None) -> CalibrationError:
    diagnostics = SolveDiagnostics(
        name=name, method="failed", iterations=iterations,
        residual=residual, fallback=fallback, bracket=bracket,
        converged=False)
    return CalibrationError(
        f"{name}: {message} "
        f"[iterations={iterations}, residual={residual!r}, "
        f"fallback={fallback!r}]",
        iterations=iterations, residual=residual, fallback=fallback,
        diagnostics=diagnostics)


def _bisect(residual: Callable[[float], float], lo: float, hi: float,
            f_lo: float, *, xtol: float, max_iter: int
            ) -> tuple[float, int, float, bool]:
    """Plain bisection; assumes a validated sign change on [lo, hi]."""
    low, high, f_low = lo, hi, f_lo
    iterations = 0
    while iterations < max_iter and (high - low) > xtol:
        iterations += 1
        mid = 0.5 * (low + high)
        f_mid = residual(mid)
        if f_mid == 0.0:
            return mid, iterations, 0.0, True
        if (f_mid > 0.0) == (f_low > 0.0):
            low, f_low = mid, f_mid
        else:
            high = mid
    mid = 0.5 * (low + high)
    return mid, iterations, residual(mid), (high - low) <= xtol


def _relaxation(residual: Callable[[float], float], lo: float,
                hi: float, *, xtol: float, max_iter: int
                ) -> tuple[float, int, float, bool]:
    """Damped fixed-point iteration on ``x <- x + w f(x)``, restarting
    from the bracket midpoint with a halved damping factor whenever the
    residual diverges (the classic relaxation restart for the
    electrothermal loop, where ``f`` is ``g(T) - T``)."""
    iterations = 0
    x = 0.5 * (lo + hi)
    for weight in (0.5, 0.25, 0.125, 0.0625):
        x = 0.5 * (lo + hi)
        best = abs(residual(x))
        for _ in range(max_iter):
            iterations += 1
            step = weight * residual(x)
            x = min(hi, max(lo, x + step))
            abs_f = abs(residual(x))
            if abs(step) <= xtol:
                return x, iterations, residual(x), True
            if abs_f > 10.0 * best:
                break  # diverging: restart with stronger damping
            best = min(best, abs_f)
    return x, iterations, residual(x), False


def guarded_solve(residual: Callable[[float], float], lo: float,
                  hi: float, *, name: str, xtol: float = 1e-9,
                  max_iter: int = 100,
                  fallback: str = FALLBACK_BISECT) -> GuardedRoot:
    """Find a root of ``residual`` on ``[lo, hi]`` or raise structurally.

    Brent's method is the primary strategy; on non-convergence or a
    NaN/Inf escape the named ``fallback`` (:data:`FALLBACK_BISECT` or
    :data:`FALLBACK_RELAXATION`) gets one shot.  Both the returned
    :class:`GuardedRoot` and any raised
    :class:`~repro.errors.CalibrationError` carry full
    :class:`SolveDiagnostics`.
    """
    with span(f"solve.{name}", kind="root") as solve_span:
        add_counter("solver.solves")
        try:
            result = _guarded_solve(residual, lo, hi, name=name,
                                    xtol=xtol, max_iter=max_iter,
                                    fallback=fallback)
        except CalibrationError as exc:
            add_counter("solver.failures")
            add_counter("solver.iterations", exc.iterations or 0)
            _observe_solve("root", exc.iterations or 0, exc.residual,
                           exc.fallback, converged=False)
            raise
        diagnostics = result.diagnostics
        add_counter("solver.iterations", diagnostics.iterations)
        if diagnostics.fallback is not None:
            add_counter("solver.fallbacks")
        _observe_solve("root", diagnostics.iterations,
                       diagnostics.residual, diagnostics.fallback,
                       converged=True)
        solve_span.set(method=diagnostics.method,
                       iterations=diagnostics.iterations)
    return result


def _guarded_solve(residual: Callable[[float], float], lo: float,
                   hi: float, *, name: str, xtol: float,
                   max_iter: int, fallback: str) -> GuardedRoot:
    if fallback not in (FALLBACK_BISECT, FALLBACK_RELAXATION):
        raise ValueError(f"unknown fallback {fallback!r}")
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise _fail(name, f"non-finite bracket [{lo!r}, {hi!r}]",
                    bracket=(lo, hi))
    if lo >= hi:
        raise _fail(name, f"empty bracket [{lo}, {hi}]", bracket=(lo, hi))

    checked = _checked(residual)
    try:
        f_lo, f_hi = checked(lo), checked(hi)
    except _NonFiniteResidual as exc:
        raise _fail(name, f"residual non-finite at bracket point "
                          f"{exc.at!r}", bracket=(lo, hi)) from exc
    if f_lo == 0.0 or f_hi == 0.0:
        root = lo if f_lo == 0.0 else hi
        return GuardedRoot(root, SolveDiagnostics(
            name=name, method="bracket-endpoint", iterations=0,
            residual=0.0, bracket=(lo, hi)))
    if (f_lo > 0.0) == (f_hi > 0.0):
        raise _fail(name, f"no sign change on [{lo}, {hi}] "
                          f"(f(lo)={f_lo:.6g}, f(hi)={f_hi:.6g})",
                    residual=min(abs(f_lo), abs(f_hi)),
                    bracket=(lo, hi))

    primary_iterations = 0
    try:
        root, report = brentq(checked, lo, hi, xtol=xtol,
                              maxiter=max_iter, full_output=True,
                              disp=False)
        primary_iterations = report.iterations
        final = checked(float(root))
        if report.converged and math.isfinite(float(root)):
            return GuardedRoot(float(root), SolveDiagnostics(
                name=name, method="brentq",
                iterations=primary_iterations, residual=final,
                bracket=(lo, hi)))
    except (_NonFiniteResidual, ValueError, RuntimeError):
        pass

    # one fallback attempt
    try:
        if fallback == FALLBACK_BISECT:
            root, extra, final, converged = _bisect(
                checked, lo, hi, f_lo, xtol=xtol, max_iter=2 * max_iter)
        else:
            root, extra, final, converged = _relaxation(
                checked, lo, hi, xtol=xtol, max_iter=max_iter)
    except _NonFiniteResidual as exc:
        raise _fail(name, f"residual escaped to NaN/Inf at {exc.at!r} "
                          f"during {fallback} fallback",
                    iterations=primary_iterations, fallback=fallback,
                    bracket=(lo, hi)) from exc
    iterations = primary_iterations + extra
    if converged and math.isfinite(root) and math.isfinite(final):
        return GuardedRoot(float(root), SolveDiagnostics(
            name=name, method=f"{fallback}-fallback",
            iterations=iterations, residual=final, fallback=fallback,
            bracket=(lo, hi)))
    raise _fail(name, "failed to converge (primary and fallback "
                      "exhausted)", iterations=iterations,
                residual=final if math.isfinite(final) else None,
                fallback=fallback, bracket=(lo, hi))


def guarded_linear_solve(matrix: Any, rhs: np.ndarray, *, name: str,
                         rtol: float = 1e-8,
                         dense_fallback_max: int = 20000,
                         spd: bool = False,
                         cg_min_unknowns: int = CG_MIN_UNKNOWNS,
                         preconditioner: str | None = None
                         ) -> GuardedSolution:
    """Solve a sparse linear system with validation and fallbacks.

    With ``spd=True`` the caller asserts the matrix is symmetric
    positive definite, and systems of at least ``cg_min_unknowns``
    unknowns are solved by preconditioned conjugate gradients first --
    the scaling path for large Laplacians, whose iteration count and
    residual land in the ``solver.iterations_per_solve`` /
    ``solver.residual`` histograms like every other guarded solve.
    ``preconditioner`` picks the rung: ``"auto"`` (default; Jacobi
    below :data:`AMG_MIN_UNKNOWNS`, smoothed-aggregation multilevel at
    or above it), ``"jacobi"``, ``"amg"``, or ``"none"``; ``None``
    reads the :data:`PRECONDITIONER_ENV` environment override (the CLI
    ``--preconditioner`` knob).  Multilevel setups are reused across
    solves that share a sparsity fingerprint, and setup vs iteration
    time lands in the ``solver.setup_s`` / ``solver.solve_s``
    histograms.  A CG breakdown or missed tolerance falls back to the
    direct factorization (``fallback="direct"`` in the diagnostics),
    so the iterative path can never *weaken* the guarantee.

    The sparse factorization (``scipy.sparse.linalg.spsolve``) is the
    primary strategy otherwise; if it raises, or the solution carries
    NaN/Inf, or the relative residual exceeds ``rtol``, one dense
    (``numpy.linalg.solve``) attempt is made for systems up to
    ``dense_fallback_max`` unknowns *and* at most
    :data:`DENSE_FALLBACK_MAX_BYTES` of dense storage.  Failures raise
    :class:`~repro.errors.CalibrationError` with the residual achieved.
    """
    if preconditioner is None:
        preconditioner = _default_preconditioner()
    if preconditioner not in PRECONDITIONER_CHOICES:
        raise ValueError(f"unknown preconditioner {preconditioner!r}")
    with span(f"solve.{name}", kind="linear") as solve_span:
        add_counter("solver.solves")
        try:
            result = _guarded_linear_solve(
                matrix, rhs, name=name, rtol=rtol,
                dense_fallback_max=dense_fallback_max, spd=spd,
                cg_min_unknowns=cg_min_unknowns,
                preconditioner=preconditioner)
        except CalibrationError as exc:
            add_counter("solver.failures")
            add_counter("solver.iterations", exc.iterations or 0)
            _observe_solve("linear", exc.iterations or 0, exc.residual,
                           exc.fallback, converged=False)
            raise
        diagnostics = result.diagnostics
        add_counter("solver.iterations", diagnostics.iterations)
        if diagnostics.fallback is not None:
            add_counter("solver.fallbacks")
        _observe_solve("linear", diagnostics.iterations,
                       diagnostics.residual, diagnostics.fallback,
                       converged=True)
        if diagnostics.preconditioner is not None:
            reused = "1" if diagnostics.setup_reused else "0"
            if diagnostics.setup_s is not None:
                observe("solver.setup_s", diagnostics.setup_s,
                        DURATION_BUCKETS,
                        preconditioner=diagnostics.preconditioner,
                        reused=reused)
            if diagnostics.solve_s is not None:
                observe("solver.solve_s", diagnostics.solve_s,
                        DURATION_BUCKETS,
                        preconditioner=diagnostics.preconditioner,
                        reused=reused)
            solve_span.set(preconditioner=diagnostics.preconditioner,
                           setup_reused=diagnostics.setup_reused)
        solve_span.set(method=diagnostics.method,
                       unknowns=int(result.x.size))
    return result


def _cg_tolerance(rtol: float, n: int) -> float:
    """Scale-aware CG relative tolerance.

    Two decades below the guard's ``rtol`` (2-norm vs the guard's
    max-norm check) but never below the float64 rounding floor, which
    grows like ``eps * sqrt(n)`` for mesh-like operators.  The old
    policy clamped to ``min(1e-10, rtol * 1e-2)``: at 10^6 unknowns
    1e-10 sits *at* the noise floor, so CG burned its whole budget
    chasing an unreachable tolerance and reported a spurious miss.
    """
    floor = CG_NOISE_FLOOR_FACTOR * np.finfo(float).eps * math.sqrt(n)
    return max(rtol * 1e-2, floor)


def _resolve_preconditioner(kind: str, n: int) -> str:
    """Collapse ``auto`` onto the concrete ladder rung for ``n``."""
    if kind == PRECONDITIONER_AUTO:
        return PRECONDITIONER_AMG if n >= AMG_MIN_UNKNOWNS \
            else PRECONDITIONER_JACOBI
    return kind


@dataclass(frozen=True)
class _CGAttempt:
    """Outcome of one preconditioned-CG attempt."""

    x: np.ndarray | None
    iterations: int
    preconditioner: str | None
    setup_reused: bool
    setup_s: float
    solve_s: float


def _try_cg(sparse: Any, rhs: np.ndarray, *, rtol: float,
            preconditioner: str,
            rel_residual: Callable[[np.ndarray], float]) -> _CGAttempt:
    """One preconditioned CG attempt; ``x=None`` on a miss.

    The preconditioner ladder: ``amg`` builds (or reuses from the
    fingerprint cache) a multilevel hierarchy whose V-cycle keeps the
    iteration count mesh-size-independent; ``jacobi`` scales as
    ``O(sqrt(n))`` iterations; ``none`` runs raw CG.  The iteration
    budget matches the preconditioner -- a small constant for ``amg``,
    ``8 sqrt(n) + 100`` otherwise -- so a genuinely ill-conditioned
    system falls through to the factorization quickly instead of
    spinning.
    """
    from scipy.sparse.linalg import LinearOperator, cg

    n = int(rhs.size)
    setup_start = time.monotonic()
    applied = preconditioner
    setup_reused = False
    operator = None
    if preconditioner == PRECONDITIONER_AMG:
        built, setup_reused, _ = PRECONDITIONER_CACHE.get_or_build(
            sparse)
        if built is None:  # cannot coarsen: degrade one rung
            applied = PRECONDITIONER_JACOBI
        else:
            operator = LinearOperator(sparse.shape, matvec=built.apply)
    if applied == PRECONDITIONER_JACOBI:
        jacobi = jacobi_preconditioner(sparse)
        if jacobi is None:
            # not plausibly SPD; skip straight to direct
            return _CGAttempt(None, 0, None, False,
                              time.monotonic() - setup_start, 0.0)
        operator = LinearOperator(sparse.shape, matvec=jacobi.apply)
    setup_s = time.monotonic() - setup_start

    if applied == PRECONDITIONER_AMG:
        budget = AMG_MAX_ITERATIONS
    else:
        budget = int(8.0 * math.sqrt(n)) + 100
    iterations = 0

    def count(_: np.ndarray) -> None:
        nonlocal iterations
        iterations += 1

    solve_start = time.monotonic()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x, info = cg(sparse, rhs,
                         rtol=_cg_tolerance(rtol, n), atol=0.0,
                         maxiter=budget, M=operator, callback=count)
    except Exception:
        return _CGAttempt(None, iterations, applied, setup_reused,
                          setup_s, time.monotonic() - solve_start)
    solve_s = time.monotonic() - solve_start
    x = np.asarray(x, dtype=float)
    if info == 0 and np.all(np.isfinite(x)) \
            and rel_residual(x) <= rtol:
        return _CGAttempt(x, iterations, applied, setup_reused,
                          setup_s, solve_s)
    return _CGAttempt(None, iterations, applied, setup_reused,
                      setup_s, solve_s)


def _guarded_linear_solve(matrix: Any, rhs: np.ndarray, *, name: str,
                          rtol: float, dense_fallback_max: int,
                          spd: bool, cg_min_unknowns: int,
                          preconditioner: str) -> GuardedSolution:
    from scipy.sparse.linalg import spsolve

    rhs = np.asarray(rhs, dtype=float)
    if rhs.size == 0:
        raise _fail(name, "empty linear system")
    if not np.all(np.isfinite(rhs)):
        raise _fail(name, "right-hand side contains NaN/Inf")
    data = matrix.data if hasattr(matrix, "data") else np.asarray(matrix)
    if not np.all(np.isfinite(data)):
        raise _fail(name, "matrix contains NaN/Inf entries")

    scale = float(np.max(np.abs(rhs)))

    def rel_residual(x: np.ndarray) -> float:
        return float(np.max(np.abs(matrix @ x - rhs))) / max(scale, 1e-300)

    sparse = matrix.tocsr() if hasattr(matrix, "tocsr") else matrix

    cg_attempted = False
    cg_iterations = 0
    if spd and rhs.size >= cg_min_unknowns and hasattr(sparse, "diagonal"):
        cg_attempted = True
        kind = _resolve_preconditioner(preconditioner, int(rhs.size))
        attempt = _try_cg(sparse, rhs, rtol=rtol, preconditioner=kind,
                          rel_residual=rel_residual)
        cg_iterations = attempt.iterations
        if attempt.x is not None:
            return GuardedSolution(attempt.x, SolveDiagnostics(
                name=name, method="cg", iterations=cg_iterations,
                residual=rel_residual(attempt.x),
                preconditioner=attempt.preconditioner,
                setup_reused=attempt.setup_reused,
                setup_s=attempt.setup_s, solve_s=attempt.solve_s))

    fallback_used = None
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x = spsolve(sparse, rhs)
        x = np.asarray(x, dtype=float)
        if np.all(np.isfinite(x)) and rel_residual(x) <= rtol:
            return GuardedSolution(x, SolveDiagnostics(
                name=name, method="spsolve",
                iterations=cg_iterations + 1,
                residual=rel_residual(x),
                fallback=FALLBACK_DIRECT if cg_attempted else None))
    except Exception:
        x = None

    # one dense fallback attempt, memory-capped: a million-unknown
    # dense matrix would be terabytes, so the cap turns a would-be OOM
    # kill into a structured CalibrationError.
    residual = None
    dense_bytes = int(rhs.size) * int(rhs.size) * 8
    if rhs.size <= dense_fallback_max \
            and dense_bytes <= DENSE_FALLBACK_MAX_BYTES:
        fallback_used = FALLBACK_DENSE
        try:
            dense = (matrix.toarray() if hasattr(matrix, "toarray")
                     else np.asarray(matrix, dtype=float))
            x = np.linalg.solve(dense, rhs)
            if np.all(np.isfinite(x)):
                residual = rel_residual(x)
                if residual <= rtol:
                    return GuardedSolution(x, SolveDiagnostics(
                        name=name, method="spsolve",
                        iterations=cg_iterations + 2,
                        residual=residual, fallback=FALLBACK_DENSE))
        except np.linalg.LinAlgError:
            pass
    raise _fail(name, "linear solve failed (singular or ill-conditioned "
                      "system)",
                iterations=cg_iterations + (2 if fallback_used else 1),
                residual=residual, fallback=fallback_used)
