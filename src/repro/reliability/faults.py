"""Deterministic, seedable fault injection for the execution engine.

A :class:`FaultPlan` is a declarative set of :class:`FaultSpec` entries,
each targeting one experiment id at one attempt number (or every
attempt).  The scheduler consults the plan through a single hook pair --
:meth:`FaultPlan.runner_fault` before launching an attempt and
:meth:`FaultPlan.cache_fault` after storing a result -- so every
failure-isolation and retry path becomes testable without touching the
experiments themselves.

Fault taxonomy (``KINDS``):

``crash``
    The worker process dies without reporting a result (``os._exit`` in
    a process worker; an :class:`~repro.errors.InjectedFaultError` under
    the inline executor, which cannot survive a real exit).
``hang``
    The worker sleeps past any reasonable deadline so the scheduler's
    timeout enforcement must kill it (inline executor: degraded to a
    transient exception, since inline runs cannot be killed).
``transient``
    The attempt raises :class:`~repro.errors.InjectedFaultError`;
    bounded retries should absorb it.
``corrupt-cache``
    After a successful run is stored, the on-disk cache entry is torn
    (truncated mid-payload).  The checksum layer must quarantine it and
    recompute on the next sweep -- a torn write becomes a cache miss,
    never a wrong result.
``slow-start``
    The attempt sleeps ``delay_s`` before running normally; exercises
    timeout headroom without failing.

Every plan is deterministic: the same plan yields the same faults on
the same sweep, and :meth:`FaultPlan.random` derives its assignments
from an explicit seed.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import InjectedFaultError, ReproError

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_TRANSIENT = "transient"
FAULT_CORRUPT_CACHE = "corrupt-cache"
FAULT_SLOW_START = "slow-start"

KINDS = (FAULT_CRASH, FAULT_HANG, FAULT_TRANSIENT, FAULT_CORRUPT_CACHE,
         FAULT_SLOW_START)

#: Kinds applied before/while the runner executes (vs. post-store).
RUNNER_KINDS = (FAULT_CRASH, FAULT_HANG, FAULT_TRANSIENT, FAULT_SLOW_START)

#: Exit code used by an injected crash, distinctive in worker-death errors.
CRASH_EXIT_CODE = 83

#: Sleep used by ``hang`` faults when no ``delay_s`` is given [s].
DEFAULT_HANG_S = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, addressed by experiment id and attempt.

    ``attempt`` is 1-based; ``attempt = 0`` means *every* attempt, which
    (for crash/hang/transient kinds) makes the fault unrecoverable by
    retries -- such specs should also set ``recoverable=False`` so the
    chaos report expects them to surface.
    """

    kind: str
    experiment_id: str
    attempt: int = 1
    delay_s: float = 0.0
    recoverable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"one of {KINDS}")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0 (0 = every attempt)")
        if self.delay_s < 0:
            raise ValueError("delay_s cannot be negative")

    def fires_on(self, attempt: int) -> bool:
        return self.attempt == 0 or self.attempt == attempt

    def to_json_dict(self) -> dict:
        return {"kind": self.kind, "experiment_id": self.experiment_id,
                "attempt": self.attempt, "delay_s": self.delay_s,
                "recoverable": self.recoverable}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            experiment_id=payload["experiment_id"],
            attempt=int(payload.get("attempt", 1)),
            delay_s=float(payload.get("delay_s", 0.0)),
            recoverable=bool(payload.get("recoverable", True)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, deterministic collection of faults for one sweep."""

    name: str
    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- scheduler hooks ----------------------------------------------

    def runner_fault(self, experiment_id: str,
                     attempt: int) -> FaultSpec | None:
        """The fault (if any) to apply to this attempt's runner."""
        for spec in self.faults:
            if (spec.kind in RUNNER_KINDS
                    and spec.experiment_id == experiment_id
                    and spec.fires_on(attempt)):
                return spec
        return None

    def cache_fault(self, experiment_id: str) -> FaultSpec | None:
        """The corrupt-cache fault (if any) for this experiment."""
        for spec in self.faults:
            if (spec.kind == FAULT_CORRUPT_CACHE
                    and spec.experiment_id == experiment_id):
                return spec
        return None

    # -- introspection ------------------------------------------------

    @property
    def experiment_ids(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(s.experiment_id for s in self.faults))

    @property
    def unrecoverable(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if not s.recoverable)

    # -- construction / serialisation ---------------------------------

    @classmethod
    def random(cls, name: str, experiment_ids: Sequence[str], *,
               seed: int, rate: float = 0.3,
               kinds: Iterable[str] = RUNNER_KINDS) -> "FaultPlan":
        """Seed-deterministic plan: each id draws one fault w.p. ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        kinds = tuple(kinds)
        rng = random.Random(seed)
        faults = []
        for experiment_id in experiment_ids:
            if rng.random() >= rate:
                continue
            kind = rng.choice(kinds)
            faults.append(FaultSpec(
                kind=kind,
                experiment_id=experiment_id,
                attempt=1,
                delay_s=0.25 if kind in (FAULT_SLOW_START,
                                         FAULT_HANG) else 0.0,
            ))
        return cls(name=name, faults=tuple(faults), seed=seed)

    def to_json_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "faults": [spec.to_json_dict() for spec in self.faults]}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            name=payload["name"],
            faults=tuple(FaultSpec.from_json_dict(entry)
                         for entry in payload.get("faults", ())),
            seed=int(payload.get("seed", 0)),
        )


@dataclass(frozen=True)
class FiredFault:
    """One fault the scheduler actually applied during a sweep."""

    experiment_id: str
    attempt: int
    kind: str

    def to_json_dict(self) -> dict:
        return {"experiment_id": self.experiment_id,
                "attempt": self.attempt, "kind": self.kind}


# -- fault application (called by the scheduler / worker) -------------


def apply_runner_fault(spec: FaultSpec | None, *,
                       allow_exit: bool) -> None:
    """Make ``spec`` happen in the current attempt, if it is set.

    ``allow_exit`` is True only in a sacrificial worker process; the
    inline executor degrades crash/hang to transient exceptions because
    killing or blocking the calling process would take the sweep down
    with it.
    """
    if spec is None:
        return
    if spec.kind == FAULT_SLOW_START:
        time.sleep(spec.delay_s)
        return
    if spec.kind == FAULT_CRASH and allow_exit:
        os._exit(CRASH_EXIT_CODE)
    if spec.kind == FAULT_HANG and allow_exit:
        time.sleep(spec.delay_s or DEFAULT_HANG_S)
        # unreachable under a sane timeout; fall through as transient
    raise InjectedFaultError(
        f"injected {spec.kind} fault on {spec.experiment_id} "
        f"(attempt spec {spec.attempt})")


def tear_cache_entry(path: Path | str) -> bool:
    """Simulate a torn write: truncate a cache object mid-payload.

    Returns False when the entry does not exist (nothing to corrupt).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with path.open("r+b") as stream:
            stream.truncate(max(1, size // 2))
    except OSError:
        return False
    return True


# -- builtin plans ----------------------------------------------------

BUILTIN_PLANS: dict[str, FaultPlan] = {
    # CI plan: crash + transient faults on three experiments; every one
    # recoverable, so a healthy engine reports a full-correct sweep.
    "crash-transient": FaultPlan(
        name="crash-transient",
        faults=(
            FaultSpec(FAULT_CRASH, "E-T1"),
            FaultSpec(FAULT_TRANSIENT, "E-F3"),
            FaultSpec(FAULT_CRASH, "E-C5"),
        ),
    ),
    # Quick local smoke: one of each cheap fault kind.
    "smoke": FaultPlan(
        name="smoke",
        faults=(
            FaultSpec(FAULT_TRANSIENT, "E-T2"),
            FaultSpec(FAULT_SLOW_START, "E-F1", delay_s=0.2),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-V1"),
        ),
    ),
    # Cache torture: every stored entry for these ids is torn on disk.
    "cache-torture": FaultPlan(
        name="cache-torture",
        faults=(
            FaultSpec(FAULT_CORRUPT_CACHE, "E-T1"),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-F2"),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-C3"),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-X4"),
        ),
    ),
    # The acceptance plan: crash, hang, transient, slow and torn-cache
    # faults in one sweep; all recoverable with retries + timeout.
    "full-chaos": FaultPlan(
        name="full-chaos",
        faults=(
            FaultSpec(FAULT_CRASH, "E-T1"),
            FaultSpec(FAULT_HANG, "E-C1"),
            FaultSpec(FAULT_TRANSIENT, "E-F3"),
            FaultSpec(FAULT_TRANSIENT, "E-C4"),
            FaultSpec(FAULT_SLOW_START, "E-F5", delay_s=0.25),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-T2"),
            FaultSpec(FAULT_CORRUPT_CACHE, "E-X4"),
        ),
    ),
    # Negative control: a crash on every attempt cannot be absorbed;
    # chaos runs under this plan must exit non-zero.
    "unrecoverable": FaultPlan(
        name="unrecoverable",
        faults=(
            FaultSpec(FAULT_CRASH, "E-T1", attempt=0, recoverable=False),
        ),
    ),
}


def load_plan(name_or_path: str) -> FaultPlan:
    """Resolve a builtin plan name or a JSON plan file."""
    if name_or_path in BUILTIN_PLANS:
        return BUILTIN_PLANS[name_or_path]
    path = Path(name_or_path)
    if path.suffix == ".json" and path.exists():
        try:
            return FaultPlan.from_json_dict(
                json.loads(path.read_text(encoding="utf-8")))
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(
                f"invalid fault plan file {path}: {exc}") from exc
    raise ReproError(
        f"unknown fault plan {name_or_path!r}; builtins: "
        f"{sorted(BUILTIN_PLANS)} (or a .json plan file)")
