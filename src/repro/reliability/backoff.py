"""Exponential retry backoff with deterministic jitter.

The scheduler used to requeue a failed attempt immediately; under a
correlated failure (a hot cache filesystem, a briefly-unavailable
resource) that turns retries into a synchronized stampede.
:class:`BackoffPolicy` spaces attempt *k* by ``base * factor**(k-1)``
seconds, capped at ``max_s``, then scales by a jitter factor derived
from a SHA-256 of ``(seed, key, attempt)`` -- so two workers retrying
the same moment spread out, yet every run of the same sweep waits the
exact same amount (reproducible schedules, testable timings).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Delay schedule for retry attempt ``k`` (first retry is ``k = 1``).

    ``jitter`` is the half-width of the multiplicative jitter band: the
    nominal delay is scaled by a deterministic factor in
    ``[1 - jitter, 1 + jitter]``.
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.max_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def jitter_fraction(self, key: str, attempt: int) -> float:
        """Deterministic uniform-ish fraction in [0, 1) for this retry."""
        token = f"{self.seed}|{key}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def delay_s(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` of task ``key``."""
        if attempt < 1:
            return 0.0
        nominal = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        spread = (2.0 * self.jitter_fraction(key, attempt) - 1.0)
        return nominal * (1.0 + self.jitter * spread)


#: Zero-delay policy -- restores the pre-backoff "retry immediately"
#: behaviour for tests that count attempts, not seconds.
NO_BACKOFF = BackoffPolicy(base_s=0.0, max_s=0.0, jitter=0.0)
