"""Reliability subsystem: fault injection, crash-safe state, guarded numerics.

``repro.reliability`` makes the engine's failure handling *provable*
instead of hopeful:

* :mod:`repro.reliability.faults` -- deterministic, seedable
  :class:`FaultPlan` (crash / hang / transient / corrupt-cache /
  slow-start faults targeted by experiment id and attempt) that the
  scheduler consults through a single injection hook;
* :mod:`repro.reliability.chaos` -- :func:`run_chaos` executes a sweep
  under a named plan and reports which faults were absorbed vs
  surfaced (``repro chaos`` on the CLI);
* :mod:`repro.reliability.backoff` -- exponential retry backoff with
  deterministic jitter (replaces the scheduler's fixed retry);
* :mod:`repro.reliability.guard` -- :func:`guarded_solve` /
  :func:`guarded_linear_solve`: bracket/domain validation, NaN/Inf
  containment, one fallback strategy, and structured
  :class:`~repro.errors.CalibrationError` diagnostics for the device,
  electrothermal, and power-grid solvers.
"""

from repro.reliability.backoff import NO_BACKOFF, BackoffPolicy
from repro.reliability.chaos import (
    EXIT_OK,
    EXIT_RELIABILITY_BUG,
    EXIT_UNRECOVERABLE,
    ChaosReport,
    FaultOutcome,
    run_chaos,
)
from repro.reliability.faults import (
    BUILTIN_PLANS,
    CRASH_EXIT_CODE,
    FAULT_CORRUPT_CACHE,
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_SLOW_START,
    FAULT_TRANSIENT,
    KINDS,
    FaultPlan,
    FaultSpec,
    FiredFault,
    apply_runner_fault,
    load_plan,
    tear_cache_entry,
)
from repro.reliability.guard import (
    FALLBACK_BISECT,
    FALLBACK_DENSE,
    FALLBACK_DIRECT,
    FALLBACK_RELAXATION,
    PRECONDITIONER_AMG,
    PRECONDITIONER_AUTO,
    PRECONDITIONER_CHOICES,
    PRECONDITIONER_ENV,
    PRECONDITIONER_JACOBI,
    PRECONDITIONER_NONE,
    GuardedRoot,
    GuardedSolution,
    SolveDiagnostics,
    guarded_linear_solve,
    guarded_solve,
)
from repro.reliability.precond import (
    MultilevelPreconditioner,
    PRECONDITIONER_CACHE,
    PreconditionerCache,
    build_multilevel,
    sparsity_fingerprint,
)

__all__ = [
    "BUILTIN_PLANS",
    "BackoffPolicy",
    "CRASH_EXIT_CODE",
    "ChaosReport",
    "EXIT_OK",
    "EXIT_RELIABILITY_BUG",
    "EXIT_UNRECOVERABLE",
    "FAULT_CORRUPT_CACHE",
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_SLOW_START",
    "FAULT_TRANSIENT",
    "FALLBACK_BISECT",
    "FALLBACK_DENSE",
    "FALLBACK_DIRECT",
    "FALLBACK_RELAXATION",
    "FaultOutcome",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "GuardedRoot",
    "GuardedSolution",
    "KINDS",
    "MultilevelPreconditioner",
    "NO_BACKOFF",
    "PRECONDITIONER_AMG",
    "PRECONDITIONER_AUTO",
    "PRECONDITIONER_CACHE",
    "PRECONDITIONER_CHOICES",
    "PRECONDITIONER_ENV",
    "PRECONDITIONER_JACOBI",
    "PRECONDITIONER_NONE",
    "PreconditionerCache",
    "SolveDiagnostics",
    "apply_runner_fault",
    "build_multilevel",
    "guarded_linear_solve",
    "guarded_solve",
    "load_plan",
    "run_chaos",
    "sparsity_fingerprint",
    "tear_cache_entry",
]
