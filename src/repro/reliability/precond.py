"""Multilevel preconditioning and setup reuse for large SPD solves.

The Jacobi-CG path added for the E-S1 mesh (~4k unknowns) does not
survive the jump to million-unknown power grids: the condition number
of a 2-D mesh Laplacian grows linearly with the unknown count, so
Jacobi-preconditioned CG needs ``O(sqrt(n))`` iterations and the
per-sweep-point cost explodes.  This module supplies the two
mechanisms that make the large tiers tractable:

* :class:`MultilevelPreconditioner` -- a smoothed-aggregation
  algebraic-multigrid V-cycle built with nothing but NumPy/SciPy.
  Aggregation is three rounds of vectorized mutual heavy-edge
  matching (aggregates of ~8 nodes, so the hierarchy shrinks ~8x per
  level and Galerkin stencil growth stays contained), the tentative
  prolongator is smoothed with one weighted-Jacobi step, coarse
  operators are Galerkin products, and the coarsest level is a dense
  Cholesky factorization.  Matching uses Luby-style deterministic
  hash priorities to break strength ties -- uniform-conductance grids
  have *all-equal* off-diagonals, and naive heaviest-edge matching
  degenerates to singletons there.  The V(1,1) cycle with symmetric
  Jacobi smoothing is itself symmetric positive definite, so it is a
  valid CG preconditioner; iteration counts stay bounded (tens, not
  thousands) as the mesh densifies.

* :class:`PreconditionerCache` -- a fork-safe, bounded, in-process
  reuse cache keyed by the matrix **sparsity fingerprint** (shape +
  CSR index structure, not values).  Sweeps over Vdd / current /
  sheet-resistance re-solve systems with identical structure and
  merely rescaled or perturbed values; re-running the multilevel
  setup (aggregation + Galerkin products, the dominant cost) for each
  point is pure waste.  On a fingerprint hit the cached hierarchy is
  reused as-is -- a preconditioner built from slightly different
  values is still SPD and CG still verifies the true residual, so
  reuse can never weaken the solve guarantee.  The common exact case
  (new matrix is a scalar multiple of the cached one, e.g. a uniform
  conductance change) is detected and compensated exactly, so those
  sweeps lose nothing to staleness.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Damping for the weighted-Jacobi smoother and prolongator smoothing;
#: 2/3 is the classic choice for Laplacian-like spectra.
JACOBI_OMEGA = 2.0 / 3.0

#: Stop coarsening once a level is at most this many unknowns and
#: factor it densely instead.
COARSE_MAX_UNKNOWNS = 192

#: Hierarchy depth guard -- a grid that refuses to coarsen (pathological
#: structure) stops here rather than recursing forever.
MAX_LEVELS = 24

#: Pairwise-matching rounds composed per coarsening step: 3 rounds of
#: pair matching build ~8-node aggregates (factor-8 coarsening), which
#: keeps the smoothed-prolongator Galerkin stencil growth -- and hence
#: operator complexity -- bounded near 1.
PAIR_ROUNDS = 3

#: Luby matching iterations inside one pairwise round.  Each iteration
#: matches a constant fraction of the still-unmatched nodes, so a few
#: rounds leave only stragglers (absorbed into neighbours afterwards).
MATCH_ROUNDS = 4

#: Reuse-cache capacity: setups for the most recent distinct sparsity
#: patterns.  Each entry holds a full hierarchy (a small multiple of
#: the fine-matrix storage), so the bound is deliberately small.
CACHE_MAX_ENTRIES = 4


def sparsity_fingerprint(matrix: Any) -> str:
    """Digest of a CSR matrix's sparsity structure (values excluded).

    Two matrices share a fingerprint exactly when they have the same
    shape and the same CSR index structure -- the invariant of a
    parameter sweep that rebuilds the same grid with different
    conductances / currents.
    """
    csr = matrix.tocsr() if not _is_csr(matrix) else matrix
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(csr.indptr).tobytes())
    digest.update(np.ascontiguousarray(csr.indices).tobytes())
    return digest.hexdigest()


def _is_csr(matrix: Any) -> bool:
    return getattr(matrix, "format", None) == "csr"


@dataclass(frozen=True)
class JacobiPreconditioner:
    """Diagonal (Jacobi) preconditioner: ``apply(v) = v / diag``."""

    inv_diag: np.ndarray

    kind = "jacobi"

    def apply(self, vector: np.ndarray) -> np.ndarray:
        return self.inv_diag * vector


def jacobi_preconditioner(matrix: Any) -> JacobiPreconditioner | None:
    """Jacobi setup; ``None`` when the diagonal is not SPD-plausible."""
    diag = np.asarray(matrix.diagonal(), dtype=float)
    if not (np.all(np.isfinite(diag)) and np.all(diag > 0.0)):
        return None
    return JacobiPreconditioner(inv_diag=1.0 / diag)


@dataclass(frozen=True)
class _Level:
    """One multilevel hierarchy level above the coarse solve."""

    matrix: Any           # csr, the level's operator
    inv_diag: np.ndarray  # 1 / diag(matrix)
    prolongator: Any      # csr, coarse -> this level
    restrictor: Any       # csr, prolongator.T (precomputed)


@dataclass(frozen=True)
class MultilevelPreconditioner:
    """Smoothed-aggregation V(1,1)-cycle; symmetric, CG-compatible."""

    levels: tuple[_Level, ...]
    coarse_factor: Any        # scipy.linalg cho_factor of the coarsest A
    n_unknowns: int
    #: Total stored nonzeros across all operators over the fine nnz --
    #: the classic AMG "operator complexity" health number.
    operator_complexity: float

    kind = "amg"

    def apply(self, vector: np.ndarray) -> np.ndarray:
        return self._cycle(0, vector)

    def _cycle(self, depth: int, rhs: np.ndarray) -> np.ndarray:
        from scipy.linalg import cho_solve

        if depth == len(self.levels):
            return cho_solve(self.coarse_factor, rhs)
        level = self.levels[depth]
        # Pre-smooth (one weighted-Jacobi step from the zero guess).
        x = JACOBI_OMEGA * level.inv_diag * rhs
        residual = rhs - level.matrix @ x
        # Coarse-grid correction.
        coarse = self._cycle(depth + 1, level.restrictor @ residual)
        x = x + level.prolongator @ coarse
        # Post-smooth (adjoint of the pre-smoother: cycle stays SPD).
        residual = rhs - level.matrix @ x
        return x + JACOBI_OMEGA * level.inv_diag * residual


@dataclass(frozen=True)
class _ScaledPreconditioner:
    """Exact reuse wrapper: preconditioner of ``alpha * A`` from A's.

    If ``M`` approximates ``A^-1`` then ``M / alpha`` approximates
    ``(alpha A)^-1`` with *identical* spectral quality, so a uniformly
    rescaled sweep point reuses the cached hierarchy losslessly.
    """

    base: Any
    inv_scale: float

    @property
    def kind(self) -> str:
        return self.base.kind

    def apply(self, vector: np.ndarray) -> np.ndarray:
        return self.inv_scale * self.base.apply(vector)


def _node_priorities(n: int) -> np.ndarray:
    """Deterministic pseudo-random priorities in ``[0, 1)`` per node.

    A multiplicative hash of the node index (no RNG state, so results
    are reproducible and fork-independent).  Used to break strength
    ties: a uniform-conductance grid has all-equal off-diagonals, and
    without tie-breaking every node picks its first CSR neighbour --
    almost no mutual pairs form and aggregation collapses to
    singletons (observed: 102920 nodes -> 102880 "aggregates").
    """
    index = np.arange(n, dtype=np.uint64)
    hashed = index * np.uint64(0x9E3779B97F4A7C15)
    return (hashed >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def _row_argmax(strength: np.ndarray, indptr: np.ndarray,
                counts: np.ndarray, nonempty: np.ndarray,
                rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``(first argmax position, row maximum)`` over CSR data.

    The padded sentinel keeps every ``indptr`` start index (including
    trailing empty rows at offset nnz) valid for ``reduceat``;
    empty-row garbage values are masked out right after.
    """
    n = counts.size
    maxima = np.maximum.reduceat(
        np.concatenate((strength, [-np.inf])), indptr[:-1])
    maxima = np.where(nonempty, maxima, -np.inf)
    is_max = strength == np.repeat(maxima, counts)
    position = np.flatnonzero(is_max)
    first = np.full(n, -1, dtype=np.int64)
    row_of_hit = rows[position]
    # later hits overwrite earlier ones; reverse so the first wins
    first[row_of_hit[::-1]] = position[::-1]
    return first, maxima


def _match_pairs(csr: Any) -> np.ndarray:
    """Aggregate ids from Luby-style mutual heavy-edge matching.

    Repeated rounds: every still-unmatched node proposes to its
    strongest still-unmatched neighbour (ties broken by hash
    priority); mutual proposals pair up.  Leftovers join a matched
    neighbour's aggregate; truly isolated nodes become singletons.
    """
    n = csr.shape[0]
    indptr, indices = csr.indptr, csr.indices
    counts = np.diff(indptr)
    nonempty = counts > 0
    rows = np.repeat(np.arange(n), counts)
    base = np.abs(csr.data).astype(float, copy=True)
    base[indices == rows] = -1.0  # never match the diagonal
    base *= 1.0 + 1e-6 * _node_priorities(n)[indices]
    aggregate = np.full(n, -1, dtype=np.int64)
    nodes = np.arange(n)
    next_id = 0
    for _ in range(MATCH_ROUNDS):
        available = aggregate < 0
        if not np.any(available):
            break
        strength = np.where(available[indices] & available[rows],
                            base, -np.inf)
        first, maxima = _row_argmax(strength, indptr, counts,
                                    nonempty, rows)
        strongest = np.full(n, -1, dtype=np.int64)
        valid = (first >= 0) & (maxima > 0.0)
        strongest[valid] = indices[first[valid]]
        partner = np.where(strongest >= 0, strongest, nodes)
        mutual = (strongest >= 0) & (strongest[partner] == nodes) \
            & (nodes < partner)
        pair_lo = nodes[mutual]
        if pair_lo.size == 0:
            break
        aggregate[pair_lo] = next_id + np.arange(pair_lo.size)
        aggregate[partner[pair_lo]] = aggregate[pair_lo]
        next_id += pair_lo.size
    # Leftovers join their strongest already-matched neighbour.
    leftover = aggregate < 0
    if np.any(leftover):
        strength = np.where((aggregate >= 0)[indices], base, -np.inf)
        first, maxima = _row_argmax(strength, indptr, counts,
                                    nonempty, rows)
        joins = leftover & (first >= 0) & (maxima > 0.0)
        aggregate[joins] = aggregate[indices[first[joins]]]
    rest = np.flatnonzero(aggregate < 0)
    aggregate[rest] = next_id + np.arange(rest.size)
    return aggregate


def _tentative_prolongator(aggregate: np.ndarray) -> Any:
    """Piecewise-constant prolongator with unit-norm columns."""
    from scipy.sparse import csr_matrix

    n = aggregate.size
    n_agg = int(aggregate.max()) + 1 if n else 0
    counts = np.bincount(aggregate, minlength=n_agg).astype(float)
    data = 1.0 / np.sqrt(counts[aggregate])
    return csr_matrix((data, (np.arange(n), aggregate)),
                      shape=(n, n_agg))


def _coarsen(csr: Any) -> tuple[Any, Any] | None:
    """One coarsening step: (smoothed P, Galerkin coarse A) or None."""
    n = csr.shape[0]
    # Compose pairwise matchings on successively paired graphs:
    # PAIR_ROUNDS=3 yields ~8-node aggregates (factor-8 coarsening).
    aggregate = _match_pairs(csr)
    for _ in range(PAIR_ROUNDS - 1):
        tentative = _tentative_prolongator(aggregate)
        paired = (tentative.T @ csr @ tentative).tocsr()
        aggregate = _match_pairs(paired)[aggregate]
    n_coarse = int(aggregate.max()) + 1
    if n_coarse >= n:  # refused to coarsen; give up on this level
        return None
    tentative = _tentative_prolongator(aggregate)
    diag = np.asarray(csr.diagonal(), dtype=float)
    if not np.all(diag > 0.0):
        return None
    # One Jacobi smoothing pass widens the basis functions, which is
    # what turns plain aggregation into a mesh-size-robust hierarchy.
    inv_diag = 1.0 / diag
    smoothed = tentative - csr.multiply(inv_diag[:, None]) \
        @ tentative * JACOBI_OMEGA
    smoothed = smoothed.tocsr()
    coarse = (smoothed.T @ csr @ smoothed).tocsr()
    coarse.sum_duplicates()
    return smoothed, coarse


def build_multilevel(matrix: Any) -> MultilevelPreconditioner | None:
    """Smoothed-aggregation hierarchy for an SPD CSR matrix.

    Returns ``None`` when the matrix is not plausibly SPD (non-positive
    diagonal) or refuses to coarsen -- callers fall back to Jacobi.
    """
    from scipy.linalg import cho_factor

    csr = matrix.tocsr() if not _is_csr(matrix) else matrix
    diag = np.asarray(csr.diagonal(), dtype=float)
    if not (np.all(np.isfinite(diag)) and np.all(diag > 0.0)):
        return None
    levels: list[_Level] = []
    current = csr
    total_nnz = csr.nnz
    while current.shape[0] > COARSE_MAX_UNKNOWNS \
            and len(levels) < MAX_LEVELS:
        step = _coarsen(current)
        if step is None:
            break
        prolongator, coarse = step
        levels.append(_Level(
            matrix=current,
            inv_diag=1.0 / np.asarray(current.diagonal(), dtype=float),
            prolongator=prolongator,
            restrictor=prolongator.T.tocsr(),
        ))
        total_nnz += coarse.nnz
        current = coarse
    try:
        coarse_factor = cho_factor(current.toarray())
    except Exception:
        return None
    return MultilevelPreconditioner(
        levels=tuple(levels),
        coarse_factor=coarse_factor,
        n_unknowns=csr.shape[0],
        operator_complexity=total_nnz / max(1, csr.nnz),
    )


@dataclass
class _CacheEntry:
    preconditioner: Any
    reference_data: np.ndarray
    hits: int = 0


class PreconditionerCache:
    """Bounded, fork-safe reuse cache for multilevel setups.

    Keys are sparsity fingerprints: a sweep that rebuilds the same
    grid structure with new values reuses the (expensive) hierarchy
    setup and only pays the (cheap) CG solve per point.  Entries are
    plain NumPy/SciPy values, so a forked worker inherits the warm
    parent cache copy-on-write; the lock is re-armed in the child via
    :func:`os.register_at_fork` so a fork during a held lock can never
    deadlock the worker, and each process mutates only its own copy.
    """

    def __init__(self, max_entries: int = CACHE_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: dict[str, _CacheEntry] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # -- fork safety --------------------------------------------------

    def _after_fork(self) -> None:
        """Re-arm the lock in a freshly forked child."""
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def _guard(self) -> threading.Lock:
        if self._pid != os.getpid():  # fork path without the hook
            self._after_fork()
        return self._lock

    # -- cache protocol -----------------------------------------------

    def get_or_build(self, matrix: Any
                     ) -> tuple[Any | None, bool, str]:
        """``(preconditioner, reused, fingerprint)`` for a CSR matrix.

        A fingerprint hit returns the cached hierarchy: exactly
        rescaled matrices get an exact scale-compensated wrapper, any
        other same-structure value mutation reuses the setup as-is
        (still SPD, still validated by CG's residual check).  A miss
        builds, stores, and returns a fresh setup; ``None`` when the
        matrix cannot support a multilevel hierarchy.
        """
        csr = matrix.tocsr() if not _is_csr(matrix) else matrix
        fingerprint = sparsity_fingerprint(csr)
        with self._guard():
            entry = self._entries.get(fingerprint)
        if entry is not None:
            entry.hits += 1
            scale = _uniform_scale(entry.reference_data, csr.data)
            if scale is not None and scale != 1.0:
                return (_ScaledPreconditioner(entry.preconditioner,
                                              1.0 / scale),
                        True, fingerprint)
            return entry.preconditioner, True, fingerprint
        built = build_multilevel(csr)
        if built is None:
            return None, False, fingerprint
        with self._guard():
            if len(self._entries) >= self.max_entries:
                # evict the least-hit entry (cheap LFU approximation)
                coldest = min(self._entries,
                              key=lambda key: self._entries[key].hits)
                del self._entries[coldest]
            self._entries[fingerprint] = _CacheEntry(
                preconditioner=built,
                reference_data=np.array(csr.data, dtype=float,
                                        copy=True))
        return built, False, fingerprint

    def clear(self) -> None:
        with self._guard():
            self._entries.clear()

    def __len__(self) -> int:
        with self._guard():
            return len(self._entries)


def _uniform_scale(reference: np.ndarray,
                   data: np.ndarray) -> float | None:
    """``alpha`` when ``data == alpha * reference`` elementwise."""
    if reference.shape != data.shape:
        return None
    anchor = int(np.argmax(np.abs(reference)))
    if reference[anchor] == 0.0:
        return 1.0 if not np.any(data) else None
    alpha = float(data[anchor] / reference[anchor])
    if not np.isfinite(alpha) or alpha == 0.0:
        return None
    if np.allclose(data, alpha * reference,
                   rtol=1e-12, atol=0.0, equal_nan=False):
        return alpha
    return None


#: The process-wide reuse cache behind ``guarded_linear_solve``.
PRECONDITIONER_CACHE = PreconditionerCache()

if hasattr(os, "register_at_fork"):
    os.register_at_fork(
        after_in_child=PRECONDITIONER_CACHE._after_fork)
