"""The chaos harness: run a sweep under a fault plan, prove absorption.

``run_chaos`` executes the experiment registry twice against one cache
directory:

1. a **cold sweep with faults injected** (the scheduler consults the
   plan before each attempt and after each store), then
2. a **warm verification sweep without faults**, which proves that
   every torn cache entry was quarantined and recomputed and that the
   sweep's results survive the chaos -- the warm pass must report every
   experiment ``ok``.

The :class:`ChaosReport` classifies each fault as *absorbed* (the
engine recovered: retries, timeout kill, cache quarantine) or
*surfaced* (the experiment's final record is failed/timeout).  A
surfaced fault is only acceptable when its spec is marked
``recoverable=False``; anything else is a reliability regression and
drives a distinct exit code.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.reliability.faults import (
    FAULT_CORRUPT_CACHE,
    FaultPlan,
    FaultSpec,
)

#: Chaos exit codes (also returned by ``repro chaos``).
EXIT_OK = 0                 # every recoverable fault absorbed
EXIT_UNRECOVERABLE = 1      # a fault marked unrecoverable surfaced (by design)
EXIT_RELIABILITY_BUG = 3    # a recoverable fault surfaced / wrong results

OUTCOME_ABSORBED = "absorbed"
OUTCOME_SURFACED = "surfaced"
OUTCOME_NOT_FIRED = "not-fired"


@dataclass(frozen=True)
class FaultOutcome:
    """What happened to one planned fault."""

    spec: FaultSpec
    fired: bool
    outcome: str
    detail: str

    @property
    def absorbed(self) -> bool:
        return self.outcome == OUTCOME_ABSORBED

    def to_json_dict(self) -> dict:
        return {"fault": self.spec.to_json_dict(), "fired": self.fired,
                "outcome": self.outcome, "detail": self.detail}


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos run established."""

    plan: FaultPlan
    cold: Any   # SweepResult (typed loosely to avoid an import cycle)
    warm: Any   # SweepResult
    outcomes: tuple[FaultOutcome, ...]

    @property
    def absorbed(self) -> tuple[FaultOutcome, ...]:
        return tuple(o for o in self.outcomes if o.absorbed)

    @property
    def surfaced(self) -> tuple[FaultOutcome, ...]:
        return tuple(o for o in self.outcomes
                     if o.outcome == OUTCOME_SURFACED)

    @property
    def surfaced_unrecoverable(self) -> tuple[FaultOutcome, ...]:
        return tuple(o for o in self.surfaced if not o.spec.recoverable)

    @property
    def surfaced_recoverable(self) -> tuple[FaultOutcome, ...]:
        return tuple(o for o in self.surfaced if o.spec.recoverable)

    @property
    def correct_results(self) -> int:
        """Experiments whose fault-free warm verification run is ok."""
        return self.warm.metrics.ok

    @property
    def total(self) -> int:
        return self.warm.metrics.total

    @property
    def exit_code(self) -> int:
        if self.surfaced_recoverable or self.correct_results < self.total:
            return EXIT_RELIABILITY_BUG
        if self.surfaced_unrecoverable:
            return EXIT_UNRECOVERABLE
        return EXIT_OK

    @property
    def ok(self) -> bool:
        return self.exit_code == EXIT_OK

    def to_json_dict(self) -> dict:
        return {
            "plan": self.plan.to_json_dict(),
            "outcomes": [o.to_json_dict() for o in self.outcomes],
            "cold_metrics": self.cold.metrics.to_json_dict(),
            "warm_metrics": self.warm.metrics.to_json_dict(),
            "correct_results": self.correct_results,
            "total": self.total,
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        """Plain-text chaos report for the CLI."""
        header = ["fault", "experiment", "attempt", "fired", "outcome"]
        rows = [[o.spec.kind, o.spec.experiment_id,
                 "all" if o.spec.attempt == 0 else str(o.spec.attempt),
                 "yes" if o.fired else "no", o.outcome]
                for o in self.outcomes]
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  if rows else len(header[i]) for i in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        lines.append("")
        lines.append(
            f"plan         {self.plan.name}: {len(self.outcomes)} faults, "
            f"{len(self.absorbed)} absorbed, {len(self.surfaced)} surfaced "
            f"({len(self.surfaced_unrecoverable)} by design)")
        lines.append(
            f"cold sweep   {self.cold.metrics.ok}/{self.cold.metrics.total}"
            f" ok under faults "
            f"({self.cold.metrics.attempts} attempts)")
        lines.append(
            f"verification {self.correct_results}/{self.total} correct "
            f"results after recovery")
        verdict = {EXIT_OK: "all recoverable faults absorbed",
                   EXIT_UNRECOVERABLE:
                       "unrecoverable fault(s) surfaced as designed",
                   EXIT_RELIABILITY_BUG:
                       "RELIABILITY BUG: recoverable fault surfaced "
                       "or results lost"}[self.exit_code]
        lines.append(f"verdict      {verdict} (exit {self.exit_code})")
        return "\n".join(lines)


def _classify(plan: FaultPlan, cold: Any, warm: Any
              ) -> tuple[FaultOutcome, ...]:
    cold_by_id = {r.experiment_id: r for r in cold.records}
    warm_by_id = {r.experiment_id: r for r in warm.records}
    fired_keys = {(f.experiment_id, f.kind) for f in cold.fired_faults}

    outcomes = []
    for spec in plan.faults:
        fired = (spec.experiment_id, spec.kind) in fired_keys
        cold_rec = cold_by_id.get(spec.experiment_id)
        warm_rec = warm_by_id.get(spec.experiment_id)
        if not fired or cold_rec is None:
            outcomes.append(FaultOutcome(
                spec, False, OUTCOME_NOT_FIRED,
                "fault never applied (id not swept or cache hit)"))
            continue
        if spec.kind == FAULT_CORRUPT_CACHE:
            # torn after a successful store: absorbed iff the warm pass
            # recomputed (quarantine turned the tear into a miss).
            recomputed = (warm_rec is not None and warm_rec.ok
                          and not warm_rec.cache_hit)
            outcomes.append(FaultOutcome(
                spec, True,
                OUTCOME_ABSORBED if recomputed else OUTCOME_SURFACED,
                "torn entry quarantined; result recomputed on warm sweep"
                if recomputed else
                "torn entry was not recovered by the warm sweep"))
            continue
        if cold_rec.ok:
            outcomes.append(FaultOutcome(
                spec, True, OUTCOME_ABSORBED,
                f"recovered after {cold_rec.attempts} attempt(s)"))
        else:
            outcomes.append(FaultOutcome(
                spec, True, OUTCOME_SURFACED,
                f"final status {cold_rec.status}: {cold_rec.error}"))
    return tuple(outcomes)


def run_chaos(plan: FaultPlan,
              experiment_ids: Sequence[str] | None = None, *,
              jobs: int | None = None, timeout_s: float = 30.0,
              retries: int = 2, cache_dir: Path | str | None = None,
              executor: str | None = None) -> ChaosReport:
    """Run a sweep under ``plan`` and verify every recovery path.

    A fresh temporary cache directory is used (and removed) unless
    ``cache_dir`` is given, so planned faults always fire against a
    cold cache.
    """
    from repro.engine.scheduler import (
        EngineConfig,
        default_jobs,
        run_experiments,
    )

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        cache_dir = tmp.name
    try:
        base = dict(
            jobs=jobs if jobs is not None else default_jobs(),
            timeout_s=timeout_s,
            retries=retries,
            cache_dir=Path(cache_dir),
        )
        if executor is not None:
            base["executor"] = executor
        cold = run_experiments(
            experiment_ids,
            config=EngineConfig(fault_plan=plan, **base))
        warm = run_experiments(
            experiment_ids, config=EngineConfig(**base))
        return ChaosReport(plan=plan, cold=cold, warm=warm,
                           outcomes=_classify(plan, cold, warm))
    finally:
        if tmp is not None:
            tmp.cleanup()
