"""ITRS packaging and cooling projections (Section 2.1 of the paper).

The paper quotes:

* present-day (2001) junction-to-ambient thermal resistance of
  0.6-1.0 C/W for workstation/desktop processors;
* an ITRS target of 0.25 C/W "in 3 years" (~2004, the 100/70 nm era);
* junction temperature requirement falling from 100 C (1999) to 85 C (2002);
* ambient temperature of approximately 45 C;
* vapor-compression refrigeration cost on the order of $1 per watt cooled.

This module encodes those projections per node so the thermal models in
:mod:`repro.thermal` can consume them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError, UnknownNodeError

#: Ambient (outside-package) temperature assumed by the paper [C].
AMBIENT_C = 45.0

#: Cost of vapor-compression refrigeration, per watt cooled [$/W].
REFRIGERATION_COST_PER_W = 1.0


@dataclass(frozen=True)
class PackagingProjection:
    """Packaging capability and requirement at one node."""

    #: Technology node [nm].
    node_nm: int
    #: Junction-to-ambient thermal resistance achievable at moderate cost
    #: with conventional (fan + heat sink) packaging [C/W].
    theta_ja_conventional: float
    #: Junction-to-ambient thermal resistance the ITRS roadmap requires [C/W].
    theta_ja_required: float
    #: Maximum junction temperature requirement [C].
    tj_max_c: float

    def __post_init__(self) -> None:
        if self.theta_ja_conventional <= 0 or self.theta_ja_required <= 0:
            raise ModelParameterError("thermal resistances must be positive")
        if self.tj_max_c <= AMBIENT_C:
            raise ModelParameterError(
                f"junction limit {self.tj_max_c} C must exceed the "
                f"{AMBIENT_C} C ambient"
            )

    @property
    def headroom_c(self) -> float:
        """Junction-to-ambient temperature budget [C]."""
        return self.tj_max_c - AMBIENT_C

    @property
    def max_power_conventional_w(self) -> float:
        """Power dissipatable with conventional packaging [W], Eq. (1)."""
        return self.headroom_c / self.theta_ja_conventional

    @property
    def max_power_required_w(self) -> float:
        """Power the ITRS-required package must dissipate [W], Eq. (1)."""
        return self.headroom_c / self.theta_ja_required

    @property
    def requires_advanced_cooling(self) -> bool:
        """True when the required theta_ja beats conventional packaging."""
        return self.theta_ja_required < self.theta_ja_conventional


#: Per-node packaging projections.  theta_ja_required follows Eq. (1) with
#: the ITRS power/junction-temperature numbers; theta_ja_conventional decays
#: slowly (heat-sink technology improves far more slowly than power grows),
#: passing through the paper's quoted 0.6-1.0 C/W range in 2001 and its
#: 0.25 C/W ITRS target around 2004.
PACKAGING_BY_NODE: dict[int, PackagingProjection] = {
    180: PackagingProjection(180, theta_ja_conventional=0.80,
                             theta_ja_required=0.61, tj_max_c=100.0),
    130: PackagingProjection(130, theta_ja_conventional=0.65,
                             theta_ja_required=0.42, tj_max_c=100.0),
    100: PackagingProjection(100, theta_ja_conventional=0.55,
                             theta_ja_required=0.25, tj_max_c=85.0),
    70: PackagingProjection(70, theta_ja_conventional=0.48,
                            theta_ja_required=0.235, tj_max_c=85.0),
    50: PackagingProjection(50, theta_ja_conventional=0.42,
                            theta_ja_required=0.222, tj_max_c=85.0),
    35: PackagingProjection(35, theta_ja_conventional=0.38,
                            theta_ja_required=0.219, tj_max_c=85.0),
}


def packaging_for_node(node_nm: int) -> PackagingProjection:
    """Return the packaging projection for a roadmap node."""
    try:
        return PACKAGING_BY_NODE[node_nm]
    except KeyError as exc:
        raise UnknownNodeError(
            f"no packaging projection for {node_nm} nm; available: "
            f"{sorted(PACKAGING_BY_NODE)}"
        ) from exc
