"""Per-node roadmap record.

A :class:`TechnologyNode` is a frozen dataclass holding every per-node
scalar the models in this library need.  Units follow the engineering
conventions of the paper (nm, Angstrom, volts, GHz, W, mm^2, um) and are
converted to SI at the point of use via :mod:`repro.units`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro import units
from repro.errors import ModelParameterError


@dataclass(frozen=True)
class TechnologyNode:
    """One row of the roadmap.

    Attributes are grouped by the paper section that consumes them.
    """

    # --- identity -------------------------------------------------------
    #: Drawn feature size / DRAM half pitch label [nm].
    node_nm: int
    #: Year of production per the ITRS 2000 update.
    year: int

    # --- device (Sections 3.1-3.2, Table 2) -----------------------------
    #: Nominal supply voltage [V].
    vdd_v: float
    #: Effective (as-etched) MPU gate length [nm].
    leff_nm: float
    #: Physical gate oxide thickness (equivalent SiO2) [Angstrom].
    tox_physical_a: float
    #: Saturation drive current target used throughout the paper [uA/um].
    ion_target_ua_um: float
    #: ITRS off-current projection (room temperature) [nA/um].
    ioff_itrs_na_um: float

    # --- system (Sections 2, 4) -----------------------------------------
    #: Across-chip clock frequency [GHz].
    clock_ghz: float
    #: Maximum MPU power dissipation [W].
    chip_power_w: float
    #: MPU die area [mm^2].
    die_area_mm2: float
    #: Maximum junction temperature requirement [C].
    tj_max_c: float

    # --- packaging / power delivery (Section 4, Fig. 5) -----------------
    #: Minimum achievable flip-chip bump pitch [um].
    min_bump_pitch_um: float
    #: Effective bump pitch implied by ITRS pad-count projections [um].
    #: The paper observes this stays roughly constant near 350 um.
    itrs_bump_pitch_um: float
    #: Total ITRS pad/bump count projection for the die.
    itrs_total_pads: int
    #: Maximum sustained current per power bump [A].
    bump_current_limit_a: float

    # --- interconnect (Sections 2.2, 4) ----------------------------------
    #: Minimum top-level (global) metal width [um].
    top_metal_min_width_um: float
    #: Top-level metal aspect ratio (thickness / width).
    top_metal_aspect_ratio: float
    #: Number of wiring levels.
    wiring_levels: int
    #: Average local net length driven by a typical gate [um] (Fig. 1 load).
    avg_wire_length_um: float
    #: Average wire capacitance per unit length [fF/um].
    wire_cap_ff_per_um: float
    #: Chip edge length for global wiring analyses [mm].
    chip_edge_mm: float

    def __post_init__(self) -> None:
        positive_fields = [
            "node_nm",
            "vdd_v",
            "leff_nm",
            "tox_physical_a",
            "ion_target_ua_um",
            "ioff_itrs_na_um",
            "clock_ghz",
            "chip_power_w",
            "die_area_mm2",
            "min_bump_pitch_um",
            "itrs_bump_pitch_um",
            "itrs_total_pads",
            "bump_current_limit_a",
            "top_metal_min_width_um",
            "top_metal_aspect_ratio",
            "wiring_levels",
            "avg_wire_length_um",
            "wire_cap_ff_per_um",
            "chip_edge_mm",
        ]
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ModelParameterError(
                    f"TechnologyNode.{name} must be positive, "
                    f"got {getattr(self, name)!r} for node {self.node_nm} nm"
                )
        if self.leff_nm > self.node_nm:
            raise ModelParameterError(
                f"effective gate length {self.leff_nm} nm exceeds the drawn "
                f"feature size {self.node_nm} nm"
            )
        if self.min_bump_pitch_um > self.itrs_bump_pitch_um:
            raise ModelParameterError(
                f"minimum bump pitch {self.min_bump_pitch_um} um exceeds the "
                f"ITRS effective pitch {self.itrs_bump_pitch_um} um at "
                f"{self.node_nm} nm"
            )

    # --- derived quantities ----------------------------------------------

    @property
    def leff_m(self) -> float:
        """Effective gate length [m]."""
        return units.nm(self.leff_nm)

    @property
    def die_area_m2(self) -> float:
        """Die area [m^2]."""
        return self.die_area_mm2 * 1e-6

    @property
    def power_density_w_cm2(self) -> float:
        """Average (uniform) power density [W/cm^2]."""
        return self.chip_power_w / (self.die_area_mm2 * 1e-2)

    @property
    def supply_current_a(self) -> float:
        """Total chip supply current Pchip / Vdd [A]."""
        return self.chip_power_w / self.vdd_v

    @property
    def clock_period_ps(self) -> float:
        """Across-chip clock period [ps]."""
        return 1e3 / self.clock_ghz

    @property
    def top_metal_thickness_um(self) -> float:
        """Top-level metal thickness [um]."""
        return self.top_metal_min_width_um * self.top_metal_aspect_ratio

    @property
    def top_metal_sheet_resistance(self) -> float:
        """Sheet resistance of the top metal level [ohm/square]."""
        return units.COPPER_RESISTIVITY / units.um(self.top_metal_thickness_um)

    def as_dict(self) -> dict[str, float]:
        """Return the raw record as a plain dictionary (for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
