"""The ITRS 2000-update roadmap table used throughout the library.

Provenance of the values (see also DESIGN.md section 2):

* ``vdd_v``, ``tox_physical_a`` (via the 12-15 / 8-12 / 6-8 Angstrom ranges
  of the paper's Table 1), ``ion_target_ua_um`` (750 uA/um at every node),
  ``ioff_itrs_na_um`` (7/10/16/40/80/160 nA/um), the ~350 um effective ITRS
  bump pitch, the 4416-pad / 1500-Vdd-bump figures at 35 nm, and the 85 C
  junction temperature are quoted directly by the paper.
* ``chip_power_w`` / ``die_area_mm2`` follow the ITRS 1999 MPU projections,
  adjusted so the paper's footnote 9 holds (total power at the last nodes
  grows only slightly while area jumps ~15 %, so power *density* peaks at
  50 nm and falls at 35 nm) and so that the paper's quoted 300 A worst-case
  supply current at 35 nm is reproduced (183 W / 0.6 V = 305 A).
* Remaining fields (clock, metal geometry, average wire load, minimum bump
  pitch) are documented estimates consistent with the ITRS 1999 tables and
  the 2000-era literature the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownNodeError
from repro.itrs.node import TechnologyNode

#: Nodes of the roadmap in scaling order (largest feature size first).
NODES_NM: tuple[int, ...] = (180, 130, 100, 70, 50, 35)

_NODE_RECORDS: tuple[TechnologyNode, ...] = (
    TechnologyNode(
        node_nm=180, year=1999, vdd_v=1.8, leff_nm=140.0, tox_physical_a=22.0,
        ion_target_ua_um=750.0, ioff_itrs_na_um=7.0,
        clock_ghz=1.25, chip_power_w=90.0, die_area_mm2=340.0, tj_max_c=100.0,
        min_bump_pitch_um=250.0, itrs_bump_pitch_um=340.0,
        itrs_total_pads=1500, bump_current_limit_a=0.25,
        top_metal_min_width_um=0.50, top_metal_aspect_ratio=2.0,
        wiring_levels=6, avg_wire_length_um=40.0, wire_cap_ff_per_um=0.20,
        chip_edge_mm=18.4,
    ),
    TechnologyNode(
        node_nm=130, year=2001, vdd_v=1.5, leff_nm=90.0, tox_physical_a=17.0,
        ion_target_ua_um=750.0, ioff_itrs_na_um=10.0,
        clock_ghz=2.1, chip_power_w=130.0, die_area_mm2=340.0, tj_max_c=100.0,
        min_bump_pitch_um=200.0, itrs_bump_pitch_um=345.0,
        itrs_total_pads=1900, bump_current_limit_a=0.22,
        top_metal_min_width_um=0.40, top_metal_aspect_ratio=2.0,
        wiring_levels=7, avg_wire_length_um=32.0, wire_cap_ff_per_um=0.20,
        chip_edge_mm=18.4,
    ),
    TechnologyNode(
        node_nm=100, year=2003, vdd_v=1.2, leff_nm=65.0, tox_physical_a=13.5,
        ion_target_ua_um=750.0, ioff_itrs_na_um=16.0,
        clock_ghz=3.5, chip_power_w=160.0, die_area_mm2=340.0, tj_max_c=85.0,
        min_bump_pitch_um=160.0, itrs_bump_pitch_um=350.0,
        itrs_total_pads=2300, bump_current_limit_a=0.20,
        top_metal_min_width_um=0.30, top_metal_aspect_ratio=2.0,
        wiring_levels=8, avg_wire_length_um=26.0, wire_cap_ff_per_um=0.21,
        chip_edge_mm=18.4,
    ),
    TechnologyNode(
        node_nm=70, year=2005, vdd_v=0.9, leff_nm=45.0, tox_physical_a=10.0,
        ion_target_ua_um=750.0, ioff_itrs_na_um=40.0,
        clock_ghz=6.0, chip_power_w=170.0, die_area_mm2=310.0, tj_max_c=85.0,
        min_bump_pitch_um=120.0, itrs_bump_pitch_um=350.0,
        itrs_total_pads=2700, bump_current_limit_a=0.17,
        top_metal_min_width_um=0.20, top_metal_aspect_ratio=2.0,
        wiring_levels=9, avg_wire_length_um=22.0, wire_cap_ff_per_um=0.22,
        chip_edge_mm=17.6,
    ),
    TechnologyNode(
        node_nm=50, year=2008, vdd_v=0.6, leff_nm=32.0, tox_physical_a=7.0,
        ion_target_ua_um=750.0, ioff_itrs_na_um=80.0,
        clock_ghz=10.0, chip_power_w=180.0, die_area_mm2=310.0, tj_max_c=85.0,
        min_bump_pitch_um=100.0, itrs_bump_pitch_um=352.0,
        itrs_total_pads=3400, bump_current_limit_a=0.14,
        top_metal_min_width_um=0.13, top_metal_aspect_ratio=2.0,
        wiring_levels=9, avg_wire_length_um=18.0, wire_cap_ff_per_um=0.23,
        chip_edge_mm=17.6,
    ),
    TechnologyNode(
        node_nm=35, year=2011, vdd_v=0.6, leff_nm=22.0, tox_physical_a=5.0,
        ion_target_ua_um=750.0, ioff_itrs_na_um=160.0,
        clock_ghz=13.5, chip_power_w=183.0, die_area_mm2=356.0, tj_max_c=85.0,
        min_bump_pitch_um=80.0, itrs_bump_pitch_um=356.0,
        itrs_total_pads=4416, bump_current_limit_a=0.12,
        top_metal_min_width_um=0.10, top_metal_aspect_ratio=2.0,
        wiring_levels=10, avg_wire_length_um=12.0, wire_cap_ff_per_um=0.24,
        chip_edge_mm=18.9,
    ),
)


@dataclass(frozen=True)
class Roadmap:
    """A collection of :class:`TechnologyNode` records with lookups."""

    nodes: tuple[TechnologyNode, ...]

    def __post_init__(self) -> None:
        sizes = [n.node_nm for n in self.nodes]
        if sizes != sorted(sizes, reverse=True):
            raise ValueError("roadmap nodes must be ordered largest-first")
        if len(set(sizes)) != len(sizes):
            raise ValueError("roadmap nodes must be unique")

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_nm: int) -> TechnologyNode:
        """Return the record for a node, e.g. ``roadmap.node(50)``."""
        for record in self.nodes:
            if record.node_nm == node_nm:
                return record
        raise UnknownNodeError(
            f"no {node_nm} nm node; roadmap defines "
            f"{[n.node_nm for n in self.nodes]}"
        )

    def __getitem__(self, node_nm: int) -> TechnologyNode:
        return self.node(node_nm)

    def __contains__(self, node_nm: int) -> bool:
        return any(record.node_nm == node_nm for record in self.nodes)

    @property
    def node_sizes(self) -> tuple[int, ...]:
        """Feature sizes, largest first."""
        return tuple(record.node_nm for record in self.nodes)

    def nanometer_nodes(self) -> tuple[TechnologyNode, ...]:
        """The sub-100 nm ("nanometer design") nodes the paper focuses on."""
        return tuple(record for record in self.nodes if record.node_nm < 100)

    def successor(self, node_nm: int) -> TechnologyNode:
        """Return the next (smaller) node after ``node_nm``."""
        sizes = self.node_sizes
        index = sizes.index(self.node(node_nm).node_nm)
        if index + 1 >= len(sizes):
            raise UnknownNodeError(f"{node_nm} nm is the last roadmap node")
        return self.nodes[index + 1]

    def scaling_ratio(self, attribute: str) -> float:
        """Ratio of ``attribute`` between the last and first nodes."""
        first = getattr(self.nodes[0], attribute)
        last = getattr(self.nodes[-1], attribute)
        return last / first

    def interpolate(self, attribute: str, node_nm: float) -> float:
        """Log-log interpolate a numeric attribute at an off-roadmap
        feature size (e.g. the 90 or 65 nm nodes that later ITRS
        editions inserted).  Exact at the defined nodes; raises outside
        the 35-180 nm span.
        """
        import math

        sizes = [float(record.node_nm) for record in self.nodes]
        values = [float(getattr(record, attribute))
                  for record in self.nodes]
        if not sizes[-1] <= node_nm <= sizes[0]:
            raise UnknownNodeError(
                f"{node_nm} nm lies outside the roadmap span "
                f"[{sizes[-1]}, {sizes[0]}] nm"
            )
        if any(value <= 0 for value in values):
            raise ValueError(
                f"attribute {attribute!r} is not positive everywhere; "
                "log interpolation undefined"
            )
        for (size_hi, value_hi), (size_lo, value_lo) in zip(
                zip(sizes, values), zip(sizes[1:], values[1:])):
            if size_lo <= node_nm <= size_hi:
                if size_hi == size_lo:
                    return value_hi
                fraction = ((math.log(node_nm) - math.log(size_hi))
                            / (math.log(size_lo) - math.log(size_hi)))
                return math.exp(math.log(value_hi) + fraction
                                * (math.log(value_lo)
                                   - math.log(value_hi)))
        raise AssertionError("unreachable")


#: The roadmap instance used throughout the library.
ITRS_2000 = Roadmap(nodes=_NODE_RECORDS)
