"""ITRS 2000-update roadmap data used by the paper.

The paper anchors every analysis to the six technology nodes of the
1999/2000 ITRS: 180, 130, 100, 70, 50 and 35 nm.  This subpackage encodes a
per-node :class:`~repro.itrs.node.TechnologyNode` record with the scalar
projections the paper consumes (supply voltage, oxide thickness, drive and
leakage current targets, clock frequency, power, die area, packaging and
bump parameters) and a :class:`~repro.itrs.roadmap.Roadmap` container with
convenient lookups.

Values quoted in the paper are transcribed verbatim; the remaining fields
are documented estimates from the ITRS 1999 edition / 2000 update (the
original web tables are defunct).  See ``DESIGN.md`` section 2.
"""

from repro.itrs.node import TechnologyNode
from repro.itrs.roadmap import ITRS_2000, Roadmap, NODES_NM
from repro.itrs.packaging import PackagingProjection, PACKAGING_BY_NODE

__all__ = [
    "TechnologyNode",
    "Roadmap",
    "ITRS_2000",
    "NODES_NM",
    "PackagingProjection",
    "PACKAGING_BY_NODE",
]
