"""Job model for the experiment service: specs, lifecycle, events.

A **job** is one client-submitted sweep travelling through the service:

    submitted -> queued -> running -> done | failed
                   \\-> cancelled (while still queued)

:class:`JobSpec` is the validated wire form of a submission (tenant,
experiment ids, priority class, engine knobs); :class:`Job` is the
daemon-side state machine.  Every transition and every finished run
record appends a :class:`JobEvent` to the job's in-memory event list
*and* to a per-job JSONL event file under the service directory, so
clients can stream progress (``GET /v1/jobs/<id>/events``) and a
crashed daemon leaves an audit trail next to the engine's own run
journal.

Events are plain dicts on the wire::

    {"seq": 3, "ts": 1754380800.2, "event": "record",
     "job": "j-000002", "experiment_id": "E-T1", "status": "ok",
     "cache_hit": true}

Engine results can contain numpy scalars and arrays; job payloads are
sanitised with :func:`json_safe` before they touch a socket.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.obs import wall_now

#: Priority classes, highest first; the queue drains in this order.
PRIORITIES = ("high", "normal", "low")

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED,
              JOB_CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)

DEFAULT_TENANT = "default"

#: Distinct terminal/requeue reasons surfaced in status and stats.
REASON_STALL = "stall"
REASON_DEADLINE = "deadline_exceeded"
REASON_RECOVERED = "recovered"
REASON_RECOVERY_EXHAUSTED = "recovery_exhausted"

_SPEC_KEYS = frozenset((
    "experiments", "tenant", "priority", "timeout_s", "retries",
    "workers", "use_cache", "deadline_s", "idempotency_key",
    "trace_id", "profile",
))


def json_safe(value: Any) -> Any:
    """Recursively coerce a result payload into JSON-encodable types.

    Numpy scalars expose ``item()``; numpy arrays expose ``tolist()``.
    Anything still foreign after that is stringified rather than
    allowed to blow up the response encoder.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return json_safe(value.item())
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        try:
            return json_safe(value.tolist())
        except (TypeError, ValueError):
            pass
    return repr(value)


@dataclass(frozen=True)
class JobSpec:
    """Validated submission payload."""

    experiment_ids: tuple[str, ...] = ()   # empty = whole registry
    tenant: str = DEFAULT_TENANT
    priority: str = "normal"
    timeout_s: float = 120.0
    retries: int = 0
    workers: int = 1
    use_cache: bool = True
    #: Wall-clock budget for the whole job; the watchdog fails the job
    #: (reason ``deadline_exceeded``) once it runs past this.  None
    #: means no deadline.
    deadline_s: float | None = None
    #: Client-chosen dedup key: resubmitting the same key returns the
    #: existing job instead of admitting a duplicate.
    idempotency_key: str | None = None
    #: Correlation id shared by every span, log record, and event this
    #: job produces.  Client-minted (``X-Repro-Trace-Id``) or minted by
    #: the daemon at submit -- always set before the WAL sees the spec.
    trace_id: str | None = None
    #: Attach the sampling profiler to this job's run.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ReproError(
                f"priority must be one of {PRIORITIES}, "
                f"got {self.priority!r}")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ReproError("tenant must be a non-empty string")
        if len(self.tenant) > 64 or not all(
                ch.isalnum() or ch in "-_." for ch in self.tenant):
            raise ReproError(
                "tenant must be <= 64 chars of [a-zA-Z0-9._-], "
                f"got {self.tenant!r}")
        if self.timeout_s <= 0:
            raise ReproError(
                f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise ReproError(
                f"retries must be >= 0, got {self.retries}")
        if self.workers < 1:
            raise ReproError(
                f"workers must be >= 1, got {self.workers}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ReproError(
                f"deadline_s must be > 0, got {self.deadline_s}")
        if self.idempotency_key is not None:
            key = self.idempotency_key
            if (not isinstance(key, str) or not key or len(key) > 128
                    or not all(ch.isalnum() or ch in "-_.:"
                               for ch in key)):
                raise ReproError(
                    "idempotency_key must be <= 128 chars of "
                    f"[a-zA-Z0-9._:-], got {key!r}")
        if self.trace_id is not None:
            tid = self.trace_id
            if (not isinstance(tid, str) or not tid or len(tid) > 64
                    or not all(ch.isalnum() or ch == "-"
                               for ch in tid)):
                raise ReproError(
                    "trace_id must be <= 64 chars of [a-zA-Z0-9-], "
                    f"got {tid!r}")

    @classmethod
    def from_json_dict(cls, payload: Any) -> "JobSpec":
        """Parse and validate a wire submission; raises ReproError."""
        if not isinstance(payload, dict):
            raise ReproError("job spec must be a JSON object")
        unknown = sorted(set(payload) - _SPEC_KEYS)
        if unknown:
            raise ReproError(
                f"unknown job spec key(s) {unknown}; "
                f"known: {sorted(_SPEC_KEYS)}")
        experiments = payload.get("experiments", [])
        if not isinstance(experiments, list) or not all(
                isinstance(item, str) for item in experiments):
            raise ReproError("experiments must be a list of id strings")
        try:
            return cls(
                experiment_ids=tuple(dict.fromkeys(experiments)),
                tenant=payload.get("tenant", DEFAULT_TENANT),
                priority=payload.get("priority", "normal"),
                timeout_s=float(payload.get("timeout_s", 120.0)),
                retries=int(payload.get("retries", 0)),
                workers=int(payload.get("workers", 1)),
                use_cache=bool(payload.get("use_cache", True)),
                deadline_s=(None if payload.get("deadline_s") is None
                            else float(payload["deadline_s"])),
                idempotency_key=payload.get("idempotency_key"),
                trace_id=payload.get("trace_id"),
                profile=bool(payload.get("profile", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed job spec: {exc}") from None

    def to_json_dict(self) -> dict:
        return {
            "experiments": list(self.experiment_ids),
            "tenant": self.tenant,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "workers": self.workers,
            "use_cache": self.use_cache,
            "deadline_s": self.deadline_s,
            "idempotency_key": self.idempotency_key,
            "trace_id": self.trace_id,
            "profile": self.profile,
        }


_job_counter = itertools.count(1)


def next_job_id() -> str:
    """Process-unique, monotonically sortable job id."""
    return f"j-{os.getpid():05d}-{next(_job_counter):06d}"


class JobEventLog:
    """Append-only JSONL event file for one job (crash-tolerant)."""

    def __init__(self, path: Path | None) -> None:
        self.path = path

    def append(self, event: dict) -> None:
        if self.path is None:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as stream:
                stream.write(json.dumps(event, sort_keys=True) + "\n")
                stream.flush()
        except OSError:
            pass  # event files are best-effort observability

    def replay(self) -> tuple[list[dict], int]:
        """Read back the event file, tolerating a torn final line.

        Returns ``(events, skipped)`` where ``skipped`` counts lines
        dropped because they did not parse (a writer killed mid-append
        leaves exactly such a partial record).  Events are returned in
        file order with sequence numbers as written.
        """
        if self.path is None:
            return [], 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return [], 0
        events: list[dict] = []
        skipped = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                if not isinstance(event, dict) or "seq" not in event:
                    raise ValueError("not an event record")
            except (ValueError, TypeError):
                skipped += 1
                continue
            events.append(event)
        return events, skipped


@dataclass
class Job:
    """Daemon-side job state; all mutation under ``lock``."""

    id: str
    spec: JobSpec
    state: str = JOB_QUEUED
    submitted_at: float = field(default_factory=wall_now)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: EngineMetrics.to_json_dict() of the finished sweep.
    metrics: dict | None = None
    #: RunRecord.to_json_dict() per record of the finished sweep.
    records: list[dict] = field(default_factory=list)
    #: json-safe results payload, kept until the job is reaped.
    results: dict | None = None
    interrupted: bool = False
    #: Times this job was requeued after an orphaned/stalled run.
    recovery_attempts: int = 0
    #: Why the job last changed state abnormally (``stall``,
    #: ``deadline_exceeded``, ``recovered``, ``recovery_exhausted``).
    reason: str | None = None
    #: Monotonic clock before which the queue must not dispatch this
    #: job (recovery/stall backoff).
    not_before: float = 0.0
    #: Collapsed-stack profile text when the job ran with
    #: ``spec.profile`` (served on ``/v1/jobs/<id>/profile``).
    profile_text: str | None = None
    events: list[dict] = field(default_factory=list)
    event_log: JobEventLog = field(
        default_factory=lambda: JobEventLog(None))
    #: When set, every transition is journalled here before clients see
    #: it (assigned by the daemon; None in unit tests).
    wal: Any = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    def add_event(self, kind: str, **data: Any) -> dict:
        """Record one lifecycle/progress event (thread-safe)."""
        with self.lock:
            event = {"seq": len(self.events), "ts": wall_now(),
                     "event": kind, "job": self.id, **data}
            if self.spec.trace_id is not None:
                event.setdefault("trace_id", self.spec.trace_id)
            self.events.append(event)
        self.event_log.append(event)
        return event

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, **data: Any) -> None:
        """Move to ``state`` and log the transition event."""
        if state not in JOB_STATES:
            raise ReproError(f"unknown job state {state!r}")
        with self.lock:
            self.state = state
            if state == JOB_RUNNING:
                self.started_at = wall_now()
            elif state in TERMINAL_STATES:
                self.finished_at = wall_now()
            if "reason" in data:
                self.reason = data["reason"]
        if self.wal is not None:
            self.wal.log_state(
                self.id, state, reason=self.reason,
                error=data.get("error", self.error),
                recovery_attempts=self.recovery_attempts)
        self.add_event(state, **data)

    def queue_wait_s(self) -> float | None:
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    def wall_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def to_json_dict(self, *, include_records: bool = True) -> dict:
        with self.lock:
            payload = {
                "id": self.id,
                "state": self.state,
                "tenant": self.spec.tenant,
                "priority": self.spec.priority,
                "trace_id": self.spec.trace_id,
                "profiled": self.profile_text is not None,
                "experiments": list(self.spec.experiment_ids),
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "interrupted": self.interrupted,
                "recovery_attempts": self.recovery_attempts,
                "reason": self.reason,
                "events": len(self.events),
            }
            if self.metrics is not None:
                payload["metrics"] = self.metrics
            if include_records and self.records:
                payload["records"] = list(self.records)
        return payload
