"""Shared result store management: stats, LRU eviction, pruning.

The engine's :class:`~repro.engine.cache.ResultCache` handles single
entries (checksums, quarantine, claims).  The service layer promotes
that directory to a **shared, bounded store**: many tenants' jobs read
and write the same ``objects/`` directory, so somebody has to answer
"how big is it?" and "what goes when it is too big?".  That somebody
is :class:`StoreManager`.

Eviction policy is plain LRU over entry mtime.  The cache touches an
entry (``os.utime``) on every hit, so mtime tracks *last access*, not
creation -- a hot entry written weeks ago outlives a cold one written
yesterday.  Pruning applies bounds in order: first age (drop entries
idle longer than ``max_age_s``), then count, then bytes (drop
least-recently-used until under ``max_entries`` / ``max_bytes``).

Safety under concurrency: eviction never touches claim files (an
in-flight computation keeps its lease) and deleting an entry that a
racing reader just opened is fine -- the reader either got the full
pre-unlink bytes or sees a miss and recomputes.  Corrupt entries are
the cache's problem (quarantine on read); the manager only reports
the quarantine population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import CLAIM_SUFFIX, ResultCache
from repro.engine.records import RunJournal
from repro.obs import add_counter, set_gauge, span, wall_now


@dataclass(frozen=True)
class StoreEntry:
    """One ``.rpc`` object as the store manager sees it."""

    path: Path
    size: int
    mtime: float  # last access (touch-on-read), unix scale

    def age_s(self, now: float | None = None) -> float:
        return max(0.0, (wall_now() if now is None else now) - self.mtime)


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time population of a shared store."""

    entries: int = 0
    bytes: int = 0
    quarantined: int = 0
    claims: int = 0
    journal_runs: int = 0
    journal_hits: int = 0

    @property
    def hit_rate(self) -> float | None:
        """Lifetime cache-hit fraction from the store's run journal."""
        if self.journal_runs == 0:
            return None
        return self.journal_hits / self.journal_runs

    def to_json_dict(self) -> dict:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "quarantined": self.quarantined,
            "claims": self.claims,
            "journal_runs": self.journal_runs,
            "journal_hits": self.journal_hits,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PruneReport:
    """What one :meth:`StoreManager.prune` pass removed and why."""

    evicted: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    #: eviction reason -> count (``age`` / ``entries`` / ``bytes``).
    reasons: dict[str, int] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "evicted": self.evicted,
            "freed_bytes": self.freed_bytes,
            "kept": self.kept,
            "kept_bytes": self.kept_bytes,
            "reasons": dict(self.reasons),
        }


class StoreManager:
    """Stats and bounded-size enforcement for one cache directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.cache = ResultCache(self.root)

    # -- scanning -----------------------------------------------------

    def scan(self) -> list[StoreEntry]:
        """Entries oldest-access first (LRU order); tolerant of races."""
        objects = self.cache.objects_dir
        if not objects.is_dir():
            return []
        entries = []
        for path in objects.glob("*.rpc"):
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted or unreadable mid-scan
            entries.append(StoreEntry(path=path, size=stat.st_size,
                                      mtime=stat.st_mtime))
        entries.sort(key=lambda entry: entry.mtime)
        return entries

    def _quarantine_count(self) -> int:
        quarantine = self.cache.quarantine_dir
        if not quarantine.is_dir():
            return 0
        try:
            return sum(1 for _ in quarantine.glob("*.rpc*"))
        except OSError:
            return 0

    def stats(self) -> StoreStats:
        """Scan the store and publish ``store.*`` gauges."""
        with span("store.stats", root=str(self.root)):
            entries = self.scan()
            total_bytes = sum(entry.size for entry in entries)
            runs = hits = 0
            journal = self.root / "journal.jsonl"
            if journal.is_file():
                try:
                    records, _ = RunJournal.recover(journal)
                except OSError:
                    records = []
                runs = len(records)
                hits = sum(1 for record in records if record.cache_hit)
            stats = StoreStats(
                entries=len(entries),
                bytes=total_bytes,
                quarantined=self._quarantine_count(),
                claims=self.cache.claim_count(),
                journal_runs=runs,
                journal_hits=hits,
            )
        set_gauge("store.entries", stats.entries)
        set_gauge("store.bytes", stats.bytes)
        set_gauge("store.quarantined", stats.quarantined)
        set_gauge("store.claims", stats.claims)
        return stats

    # -- eviction -----------------------------------------------------

    def _evict(self, entry: StoreEntry, reason: str,
               report: PruneReport) -> bool:
        # TOCTOU guard: the LRU decision was made from a scan()
        # snapshot, but touch-on-read refreshes mtime on every cache
        # hit -- an entry that went hot (or grew a claim lease)
        # between the scan and this unlink must survive.  Re-stat and
        # re-check the claim immediately before deleting.
        try:
            current = entry.path.stat()
        except OSError:
            return False  # already gone or unreadable
        if current.st_mtime > entry.mtime + 1e-9:
            add_counter("store.evict_races")
            return False  # touched since the scan: no longer cold
        if Path(str(entry.path) + CLAIM_SUFFIX).exists():
            add_counter("store.evict_races")
            return False  # claimed since the scan: mid-(re)compute
        try:
            entry.path.unlink()
        except FileNotFoundError:
            return False  # a racing pruner got it; not our eviction
        except OSError:
            return False
        # An evicted entry's lease is meaningless; drop it too.  A
        # *live* claim means the entry is mid-(re)compute -- prune
        # skips those entirely, so this only sweeps leftovers.
        try:
            Path(str(entry.path) + CLAIM_SUFFIX).unlink(missing_ok=True)
        except OSError:
            pass
        report.evicted += 1
        report.freed_bytes += entry.size
        report.reasons[reason] = report.reasons.get(reason, 0) + 1
        add_counter("store.evicted")
        add_counter(f"store.evicted.{reason}")
        return True

    def prune(self, *, max_age_s: float | None = None,
              max_entries: int | None = None,
              max_bytes: int | None = None) -> PruneReport:
        """Evict LRU entries until every given bound holds.

        Entries with a live claim file are skipped: a lease means some
        process is about to rewrite the entry, and deleting under it
        would only force a recompute.  Stale claims (dead same-host
        holder, or past the TTL) are swept first so a crashed worker's
        lease cannot shield its entry from eviction forever.
        """
        report = PruneReport()
        with span("store.prune", root=str(self.root)):
            self.cache.sweep_stale_claims()
            entries = self.scan()
            now = wall_now()
            survivors: list[StoreEntry] = []
            for entry in entries:
                claimed = Path(str(entry.path) + CLAIM_SUFFIX).exists()
                if (not claimed and max_age_s is not None
                        and entry.age_s(now) > max_age_s):
                    if self._evict(entry, "age", report):
                        continue
                survivors.append(entry)

            if max_entries is not None:
                index = 0
                while len(survivors) > max_entries and index < len(survivors):
                    entry = survivors[index]
                    if (not Path(str(entry.path) + CLAIM_SUFFIX).exists()
                            and self._evict(entry, "entries", report)):
                        survivors.pop(index)
                    else:
                        index += 1

            if max_bytes is not None:
                index = 0
                total = sum(entry.size for entry in survivors)
                while total > max_bytes and index < len(survivors):
                    entry = survivors[index]
                    if (not Path(str(entry.path) + CLAIM_SUFFIX).exists()
                            and self._evict(entry, "bytes", report)):
                        survivors.pop(index)
                        total -= entry.size
                    else:
                        index += 1

            report.kept = len(survivors)
            report.kept_bytes = sum(entry.size for entry in survivors)
        set_gauge("store.entries", report.kept)
        set_gauge("store.bytes", report.kept_bytes)
        return report
