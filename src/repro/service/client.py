"""HTTP client for the experiment service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the daemon's JSON API for the ``repro
jobs`` CLI, the smoke script, and tests.  Every method raises
:class:`ServiceError` on a non-2xx answer; a ``429`` rejection raises
the :class:`BackpressureError` subclass carrying the server's
``retry_after_s`` hint so callers can implement polite retry.

Resilience: with ``retries > 0`` the client absorbs transient faults
instead of surfacing the first one -- connection errors (refused,
reset, DNS) raise :class:`ServiceUnavailableError` only after the
retry budget is spent, and retryable 5xx answers (500/502/503/504) are
retried with capped-jitter exponential backoff honouring any
``Retry-After`` the server sent.  :meth:`wait` and
:meth:`events(follow=True) <events>` additionally survive a daemon
restart mid-stream: ``wait`` keeps polling through connection drops
until its own deadline, and a following event stream reconnects with
``?since=<next seq>`` so no event is lost or duplicated across the
drop.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.errors import ReproError
from repro.obs import new_trace_id
from repro.reliability.backoff import BackoffPolicy

DEFAULT_TIMEOUT_S = 30.0

#: Header carrying the client-minted correlation id to the daemon.
TRACE_HEADER = "X-Repro-Trace-Id"

#: 5xx statuses worth retrying: transient server trouble, not a bug in
#: the request.  503 is also what the daemon answers while draining.
RETRYABLE_STATUSES = frozenset((500, 502, 503, 504))


class ServiceError(ReproError):
    """A request the service answered with an error status."""

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServiceError):
    """Admission rejected (HTTP 429); retry after ``retry_after_s``."""

    def __init__(self, message: str, *, payload: dict | None = None,
                 retry_after_s: float = 2.0) -> None:
        super().__init__(message, status=429, payload=payload)
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ServiceError):
    """The service could not be reached at all (connection-level)."""


class ServiceClient:
    """Thin JSON-over-HTTP client bound to one daemon base URL."""

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retries: int = 0,
                 backoff: BackoffPolicy | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff or BackoffPolicy(base_s=0.2, max_s=5.0)

    # -- plumbing -----------------------------------------------------

    def _request_once(self, method: str, path: str,
                      payload: dict | None = None,
                      headers: dict[str, str] | None = None) -> Any:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request_headers = dict(headers or {})
        if body:
            request_headers.setdefault("Content-Type",
                                       "application/json")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=request_headers)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(raw)
            except json.JSONDecodeError:
                detail = {"error": raw.strip()}
            message = detail.get("error", f"HTTP {exc.code}")
            if exc.code == 429:
                raise BackpressureError(
                    message, payload=detail,
                    retry_after_s=float(
                        detail.get("retry_after_s", 2.0))) from None
            retry_after = exc.headers.get("Retry-After")
            error = ServiceError(message, status=exc.code,
                                 payload=detail)
            if retry_after is not None:
                try:
                    error.payload.setdefault(
                        "retry_after_s", float(retry_after))
                except ValueError:
                    pass
            raise error from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from None
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceUnavailableError(
                f"cannot reach service at {self.base_url}: "
                f"{exc}") from None

    def _request(self, method: str, path: str,
                 payload: dict | None = None,
                 headers: dict[str, str] | None = None) -> Any:
        """One API call with up to ``self.retries`` bounded retries.

        Retries cover connection-level failures and retryable 5xx
        answers only -- 4xx (including 429 backpressure) and success
        always surface immediately.  The wait between attempts is the
        capped-jitter backoff schedule, stretched to honour any
        ``Retry-After`` hint the server sent.
        """
        attempt = 0
        while True:
            try:
                if headers:
                    return self._request_once(method, path, payload,
                                              headers)
                return self._request_once(method, path, payload)
            except ServiceUnavailableError:
                if attempt >= self.retries:
                    raise
                delay = self.backoff.delay_s(path, attempt + 1)
            except ServiceError as exc:
                if (exc.status not in RETRYABLE_STATUSES
                        or attempt >= self.retries):
                    raise
                delay = max(
                    self.backoff.delay_s(path, attempt + 1),
                    float(exc.payload.get("retry_after_s", 0.0)))
            attempt += 1
            time.sleep(delay)

    # -- API ----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, experiments: list[str] | None = None, *,
               tenant: str = "default", priority: str = "normal",
               timeout_s: float = 120.0, retries: int = 0,
               workers: int = 1, use_cache: bool = True,
               deadline_s: float | None = None,
               idempotency_key: str | None = None,
               trace_id: str | None = None,
               profile: bool = False) -> dict:
        # Mint the correlation id client-side so spans/logs around the
        # submit call can already carry the id the daemon will use.
        if trace_id is None:
            trace_id = new_trace_id()
        spec: dict[str, Any] = {
            "experiments": experiments or [],
            "tenant": tenant, "priority": priority,
            "timeout_s": timeout_s, "retries": retries,
            "workers": workers, "use_cache": use_cache,
            "trace_id": trace_id,
        }
        if deadline_s is not None:
            spec["deadline_s"] = deadline_s
        if idempotency_key is not None:
            spec["idempotency_key"] = idempotency_key
        if profile:
            spec["profile"] = True
        return self._request("POST", "/v1/jobs", spec,
                             headers={TRACE_HEADER: trace_id})

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def stats_prometheus(self) -> str:
        request = urllib.request.Request(
            self.base_url + "/v1/stats?format=prom")
        with urllib.request.urlopen(
                request, timeout=self.timeout_s) as response:
            return response.read().decode("utf-8")

    def history(self, since: int = 0,
                limit: int | None = None) -> dict:
        """Metrics-history samples with ``seq >= since`` (newest last)."""
        query = []
        if since:
            query.append(f"since={since}")
        if limit is not None:
            query.append(f"limit={limit}")
        path = ("/metrics/history"
                + ("?" + "&".join(query) if query else ""))
        return self._request("GET", path)

    def profile(self, job_id: str) -> str:
        """The job's collapsed-stack profile (text; 404 when absent)."""
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/profile")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(raw)
            except json.JSONDecodeError:
                detail = {"error": raw.strip()}
            raise ServiceError(
                detail.get("error", f"HTTP {exc.code}"),
                status=exc.code, payload=detail) from None
        except (urllib.error.URLError, ConnectionError,
                TimeoutError, OSError) as exc:
            raise ServiceUnavailableError(
                f"cannot reach service at {self.base_url}: "
                f"{exc}") from None

    def store(self) -> dict:
        return self._request("GET", "/v1/store")

    def prune_store(self) -> dict:
        return self._request("POST", "/v1/store/prune")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    def _events_once(self, job_id: str, follow: bool,
                     since: int) -> Iterator[dict]:
        query = [f"since={since}"] if since else []
        if follow:
            query.append("follow=1")
        url = (f"{self.base_url}/v1/jobs/{job_id}/events"
               + ("?" + "&".join(query) if query else ""))
        request = urllib.request.Request(url)
        with urllib.request.urlopen(
                request, timeout=self.timeout_s) as response:
            for line in response:
                text = line.decode("utf-8").strip()
                if text:
                    yield json.loads(text)

    def events(self, job_id: str, follow: bool = False,
               since: int = 0) -> Iterator[dict]:
        """Yield the job's JSONL events from seq ``since`` onwards.

        With ``follow`` the stream runs until the job reaches a
        terminal state -- surviving connection drops: a dropped or
        refused stream is reconnected (up to ``self.retries`` extra
        times, backoff between attempts) with ``since`` advanced past
        the last delivered event, so a daemon restart mid-follow
        neither loses nor duplicates events.
        """
        next_seq = since
        attempt = 0
        while True:
            try:
                for event in self._events_once(job_id, follow,
                                               next_seq):
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        if seq < next_seq:
                            continue  # duplicate across a reconnect
                        next_seq = seq + 1
                    attempt = 0  # progress resets the retry budget
                    yield event
                return
            except urllib.error.HTTPError as exc:
                raw = exc.read().decode("utf-8", errors="replace")
                try:
                    detail = json.loads(raw)
                except json.JSONDecodeError:
                    detail = {"error": raw.strip()}
                raise ServiceError(
                    detail.get("error", f"HTTP {exc.code}"),
                    status=exc.code, payload=detail) from None
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as exc:
                if not follow or attempt >= self.retries:
                    raise ServiceUnavailableError(
                        f"event stream for {job_id} dropped: "
                        f"{exc}") from None
                attempt += 1
                time.sleep(self.backoff.delay_s(
                    f"events:{job_id}", attempt))

    def wait(self, job_id: str, *, timeout_s: float = 300.0,
             poll_s: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final job dict.

        Connection failures during the poll (a daemon restarting under
        the job) are absorbed with capped backoff until ``timeout_s``
        runs out -- the recovered daemon still knows the job.
        """
        deadline = time.monotonic() + timeout_s
        failures = 0
        while True:
            try:
                job = self.job(job_id)
            except ServiceUnavailableError:
                if time.monotonic() >= deadline:
                    raise
                failures += 1
                time.sleep(min(
                    self.backoff.delay_s(f"wait:{job_id}", failures),
                    max(0.0, deadline - time.monotonic())))
                continue
            failures = 0
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
