"""HTTP client for the experiment service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the daemon's JSON API for the ``repro
jobs`` CLI, the smoke script, and tests.  Every method raises
:class:`ServiceError` on a non-2xx answer; a ``429`` rejection raises
the :class:`BackpressureError` subclass carrying the server's
``retry_after_s`` hint so callers can implement polite retry.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.errors import ReproError

DEFAULT_TIMEOUT_S = 30.0


class ServiceError(ReproError):
    """A request the service answered with an error status."""

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServiceError):
    """Admission rejected (HTTP 429); retry after ``retry_after_s``."""

    def __init__(self, message: str, *, payload: dict | None = None,
                 retry_after_s: float = 2.0) -> None:
        super().__init__(message, status=429, payload=payload)
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Thin JSON-over-HTTP client bound to one daemon base URL."""

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -----------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"}
            if body else {})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(raw)
            except json.JSONDecodeError:
                detail = {"error": raw.strip()}
            message = detail.get("error", f"HTTP {exc.code}")
            if exc.code == 429:
                raise BackpressureError(
                    message, payload=detail,
                    retry_after_s=float(
                        detail.get("retry_after_s", 2.0))) from None
            raise ServiceError(message, status=exc.code,
                               payload=detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from None

    # -- API ----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, experiments: list[str] | None = None, *,
               tenant: str = "default", priority: str = "normal",
               timeout_s: float = 120.0, retries: int = 0,
               workers: int = 1, use_cache: bool = True) -> dict:
        return self._request("POST", "/v1/jobs", {
            "experiments": experiments or [],
            "tenant": tenant, "priority": priority,
            "timeout_s": timeout_s, "retries": retries,
            "workers": workers, "use_cache": use_cache,
        })

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def stats_prometheus(self) -> str:
        request = urllib.request.Request(
            self.base_url + "/v1/stats?format=prom")
        with urllib.request.urlopen(
                request, timeout=self.timeout_s) as response:
            return response.read().decode("utf-8")

    def store(self) -> dict:
        return self._request("GET", "/v1/store")

    def prune_store(self) -> dict:
        return self._request("POST", "/v1/store/prune")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    def events(self, job_id: str,
               follow: bool = False) -> Iterator[dict]:
        """Yield the job's JSONL events; with ``follow`` streams until
        the job reaches a terminal state."""
        url = (f"{self.base_url}/v1/jobs/{job_id}/events"
               + ("?follow=1" if follow else ""))
        request = urllib.request.Request(url)
        with urllib.request.urlopen(
                request, timeout=self.timeout_s) as response:
            for line in response:
                text = line.decode("utf-8").strip()
                if text:
                    yield json.loads(text)

    def wait(self, job_id: str, *, timeout_s: float = 300.0,
             poll_s: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final job dict."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
