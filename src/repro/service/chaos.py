"""Service chaos harness: SIGKILL the daemon mid-sweep, prove recovery.

``repro chaos --service`` (and the CI ``service_recovery_smoke``
script) drive a real daemon subprocess through the crash the WAL
exists for:

1. start a daemon over a fresh state dir and submit several jobs with
   idempotency keys (one dispatcher, so most stay queued);
2. **SIGKILL** the daemon the moment a job is observed running -- no
   drain, no flush, exactly what a crash or OOM kill looks like;
3. snapshot what the dead daemon had acknowledged: job ids and states,
   stored result keys, and the run-journal length;
4. restart a daemon **over the same state dir** and assert the
   recovery contract:

   * **zero lost jobs** -- every acknowledged job id is known to the
     recovered daemon, and every previously non-terminal job reaches a
     terminal state;
   * **no duplicate computation** -- no post-kill journal record
     recomputes (``cache_hit == false``) a key that was already stored
     before the kill;
   * **bounded recovery** -- no job's ``recovery_attempts`` exceeds the
     daemon's ``max_recovery_attempts``;
   * **idempotency survives the crash** -- resubmitting a pre-kill
     idempotency key returns the original job id;
   * a **warm verification job** over every experiment is served from
     the shared store at >= the required hit rate;
   * the recovered daemon **shuts down cleanly** (exit 0).

Exit codes mirror the fault-plan chaos harness: 0 when the contract
holds, 3 for a reliability bug, 2 for a driver/usage failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import TERMINAL_STATES

EXIT_OK = 0
EXIT_DRIVER_ERROR = 2
EXIT_RELIABILITY_BUG = 3

#: Fast, cache-friendly default sweep split across several jobs.
DEFAULT_EXPERIMENTS = ("E-T1", "E-T2", "E-F1", "E-F2", "E-C1", "E-C2")
DEFAULT_JOB_SIZE = 2


@dataclass
class ServiceChaosReport:
    """Everything one service chaos run established."""

    submitted: int = 0
    #: job id -> state at the moment of the SIGKILL.
    pre_kill_states: dict[str, str] = field(default_factory=dict)
    #: acknowledged ids the recovered daemon no longer knows.
    lost: list[str] = field(default_factory=list)
    #: (job id, experiment id) recomputations of pre-stored keys.
    duplicates: list[tuple[str, str]] = field(default_factory=list)
    #: jobs the recovered daemon re-admitted as crash orphans.
    recovered: int = 0
    #: highest recovery_attempts observed on any job.
    max_recovery_attempts_seen: int = 0
    warm_hit_rate: float | None = None
    second_exit: int | None = None
    #: reliability-contract violations (drive exit 3).
    problems: list[str] = field(default_factory=list)
    #: harness/infrastructure failures (drive exit 2).
    driver_errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.driver_errors:
            return EXIT_DRIVER_ERROR
        if self.problems:
            return EXIT_RELIABILITY_BUG
        return EXIT_OK

    @property
    def ok(self) -> bool:
        return self.exit_code == EXIT_OK

    def to_json_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "pre_kill_states": dict(self.pre_kill_states),
            "lost": list(self.lost),
            "duplicates": [list(pair) for pair in self.duplicates],
            "recovered": self.recovered,
            "max_recovery_attempts_seen":
                self.max_recovery_attempts_seen,
            "warm_hit_rate": self.warm_hit_rate,
            "second_exit": self.second_exit,
            "problems": list(self.problems),
            "driver_errors": list(self.driver_errors),
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        """Plain-text report for the CLI."""
        states = ", ".join(
            f"{job_id}={state}" for job_id, state
            in sorted(self.pre_kill_states.items())) or "none"
        lines = [
            f"submitted     {self.submitted} job(s) before SIGKILL",
            f"at kill       {states}",
            f"lost jobs     {len(self.lost)}"
            + (f": {self.lost}" if self.lost else ""),
            f"duplicates    {len(self.duplicates)}"
            + (f": {self.duplicates}" if self.duplicates else ""),
            f"recovered     {self.recovered} orphan(s) requeued, "
            f"max recovery_attempts {self.max_recovery_attempts_seen}",
            "warm verify   "
            + (f"{100.0 * self.warm_hit_rate:.0f}% served from the "
               "shared store" if self.warm_hit_rate is not None
               else "not run"),
            "clean stop    "
            + (f"exit {self.second_exit}"
               if self.second_exit is not None else "not reached"),
        ]
        for problem in self.problems:
            lines.append(f"PROBLEM       {problem}")
        for error in self.driver_errors:
            lines.append(f"DRIVER ERROR  {error}")
        verdict = {
            EXIT_OK: "crash absorbed: no job lost, no key recomputed",
            EXIT_RELIABILITY_BUG:
                "RELIABILITY BUG: recovery contract violated",
            EXIT_DRIVER_ERROR: "driver error: run not conclusive",
        }[self.exit_code]
        lines.append(f"verdict       {verdict} "
                     f"(exit {self.exit_code})")
        return "\n".join(lines)


def _start_daemon(state_dir: Path, log_path: Path,
                  dispatchers: int = 1,
                  extra_args: Sequence[str] = ()) -> subprocess.Popen:
    log_path.parent.mkdir(parents=True, exist_ok=True)
    # The daemon must import the same repro tree as this process,
    # even when the harness runs from a script that patched sys.path.
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    with log_path.open("w", encoding="utf-8") as log:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(state_dir),
             "--dispatchers", str(dispatchers), *extra_args],
            stdout=log, stderr=subprocess.STDOUT, env=env)


def _wait_for_url(log_path: Path, deadline_s: float = 30.0) -> str:
    """The daemon announces its URL on stdout; poll the log for it."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if log_path.exists():
            for token in log_path.read_text(encoding="utf-8").split():
                if token.startswith("http://"):
                    return token
        time.sleep(0.1)
    raise RuntimeError(
        f"daemon did not announce a URL within {deadline_s:.0f}s "
        f"(log: {log_path})")


def _journal_records(journal: Path) -> list[dict]:
    """Parse the engine run journal, skipping torn lines."""
    try:
        text = journal.read_text(encoding="utf-8")
    except OSError:
        return []
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if isinstance(record, dict):
                records.append(record)
        except ValueError:
            continue
    return records


def _stored_keys(state_dir: Path) -> set[str]:
    """Experiment ids with a stored ``.rpc`` entry right now."""
    objects = state_dir / "objects"
    if not objects.is_dir():
        return set()
    return {path.name.partition("--")[0]
            for path in objects.glob("*.rpc")}


def run_service_chaos(
        state_dir: Path | str, *,
        experiment_ids: Sequence[str] | None = None,
        job_size: int = DEFAULT_JOB_SIZE,
        job_timeout_s: float = 300.0,
        min_hit_rate: float = 0.9,
        out=print) -> ServiceChaosReport:
    """SIGKILL a live daemon mid-sweep, restart it, verify recovery."""
    state_dir = Path(state_dir)
    report = ServiceChaosReport()
    ids = list(experiment_ids or DEFAULT_EXPERIMENTS)
    batches = [ids[i:i + max(1, job_size)]
               for i in range(0, len(ids), max(1, job_size))]
    journal = state_dir / "journal.jsonl"

    # -- phase 1: daemon up, jobs in, SIGKILL mid-run -----------------
    daemon = _start_daemon(state_dir, state_dir / "chaos-serve-1.log")
    killed = False
    try:
        url = _wait_for_url(state_dir / "chaos-serve-1.log")
        out(f"daemon up at {url} (pid {daemon.pid})")
        client = ServiceClient(url, timeout_s=30.0)
        keys: dict[str, str] = {}   # idempotency key -> job id
        for index, batch in enumerate(batches):
            key = f"chaos-{index}"
            job = client.submit(batch, tenant="chaos",
                                idempotency_key=key)
            keys[key] = job["id"]
        report.submitted = len(keys)
        out(f"submitted {report.submitted} job(s); waiting for one "
            "to start")

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            jobs = {job["id"]: job["state"]
                    for job in client.jobs(tenant="chaos")}
            if ("running" in jobs.values()
                    or all(state in TERMINAL_STATES
                           for state in jobs.values())):
                break
            time.sleep(0.02)
        report.pre_kill_states = jobs
        pre_stored = _stored_keys(state_dir)
        pre_journal = len(_journal_records(journal))
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30.0)
        killed = True
        out(f"SIGKILLed daemon; at kill: {jobs}; "
            f"{len(pre_stored)} key(s) stored")
    except (ServiceError, RuntimeError, OSError,
            subprocess.TimeoutExpired) as exc:
        report.driver_errors.append(f"phase 1: {exc}")
        return report
    finally:
        if not killed and daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30.0)

    # -- phase 2: restart over the same state dir, verify -------------
    daemon = _start_daemon(state_dir, state_dir / "chaos-serve-2.log")
    try:
        url = _wait_for_url(state_dir / "chaos-serve-2.log")
        out(f"daemon restarted at {url} (pid {daemon.pid})")
        client = ServiceClient(url, timeout_s=30.0, retries=3)

        known = {job["id"]: job for job in client.jobs(tenant="chaos")}
        report.lost = sorted(set(report.pre_kill_states) - set(known))
        if report.lost:
            report.problems.append(
                f"{len(report.lost)} acknowledged job(s) lost across "
                f"the crash: {report.lost}")

        health = client.health()
        report.recovered = int(health.get("recovered", 0))
        if ("running" in report.pre_kill_states.values()
                and report.recovered == 0):
            report.problems.append(
                "a job was running at SIGKILL but the recovered "
                "daemon reports no orphan requeues")

        for job_id, state in report.pre_kill_states.items():
            if state in TERMINAL_STATES or job_id in report.lost:
                continue
            final = client.wait(job_id, timeout_s=job_timeout_s)
            attempts = int(final.get("recovery_attempts", 0))
            report.max_recovery_attempts_seen = max(
                report.max_recovery_attempts_seen, attempts)
            if final["state"] not in TERMINAL_STATES:
                report.problems.append(
                    f"{job_id} never reached a terminal state "
                    f"after recovery (is {final['state']})")
        stats = client.stats()
        bound = stats.get("recovery", {}).get(
            "max_recovery_attempts", 0)
        if report.max_recovery_attempts_seen > bound:
            report.problems.append(
                f"recovery_attempts {report.max_recovery_attempts_seen}"
                f" exceeds the configured bound {bound}")

        for record in _journal_records(journal)[pre_journal:]:
            experiment = record.get("experiment_id")
            if (experiment in pre_stored
                    and record.get("status") == "ok"
                    and not record.get("cache_hit")):
                report.duplicates.append(("post-restart", experiment))
        if report.duplicates:
            report.problems.append(
                f"{len(report.duplicates)} already-stored key(s) were "
                f"recomputed after the restart: {report.duplicates}")

        # idempotency keys must survive the crash (rebuilt from WAL)
        for index, batch in enumerate(batches):
            key = f"chaos-{index}"
            dedup = client.submit(batch, tenant="chaos",
                                  idempotency_key=key)
            if dedup["id"] != keys[key]:
                report.problems.append(
                    f"idempotency key {key!r} mapped to {dedup['id']} "
                    f"after restart, was {keys[key]}")
            elif not dedup.get("deduplicated"):
                report.problems.append(
                    f"idempotency key {key!r} was not deduplicated "
                    "after restart")

        warm = client.submit(ids, tenant="chaos-verify")
        final = client.wait(warm["id"], timeout_s=job_timeout_s)
        records = final.get("records", [])
        hits = sum(1 for record in records if record["cache_hit"])
        report.warm_hit_rate = hits / max(1, len(records))
        out(f"warm verify: {hits}/{len(records)} from the shared "
            f"store ({100.0 * report.warm_hit_rate:.0f}%)")
        if final["state"] != "done":
            report.problems.append(
                f"warm verification job finished {final['state']}: "
                f"{final.get('error')}")
        if report.warm_hit_rate < min_hit_rate:
            report.problems.append(
                f"warm hit rate {report.warm_hit_rate:.2f} below "
                f"required {min_hit_rate:.2f}")

        try:
            client.shutdown()
        except ServiceError:
            pass  # the daemon may close the socket mid-answer
        report.second_exit = daemon.wait(timeout=60.0)
        if report.second_exit != 0:
            report.problems.append(
                "recovered daemon exited "
                f"{report.second_exit}, expected 0")
    except (ServiceError, RuntimeError, OSError,
            subprocess.TimeoutExpired) as exc:
        report.driver_errors.append(f"phase 2: {exc}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30.0)
    return report
