"""Long-running experiment service: async job API over the engine.

The service layer turns one-shot ``repro run`` sweeps into a daemon
(``repro serve``) with an HTTP/JSON job API:

* :mod:`repro.service.jobs` -- job specs, lifecycle state machine,
  JSONL event log;
* :mod:`repro.service.queue` -- bounded multi-tenant admission queue
  with priority classes and explicit 429 backpressure;
* :mod:`repro.service.store` -- shared result store management: stats
  and LRU eviction over the engine's ``.rpc`` cache;
* :mod:`repro.service.daemon` -- the asyncio HTTP server, the
  dispatcher threads that run jobs on the execution engine, startup
  crash recovery, and the watchdog supervisor;
* :mod:`repro.service.wal` -- the fsync'd write-ahead job journal that
  makes submissions and state transitions durable across a crash;
* :mod:`repro.service.client` -- the ``urllib`` client used by the
  ``repro jobs`` CLI and the smoke tests, with bounded retries and
  reconnecting streams;
* :mod:`repro.service.chaos` -- the SIGKILL/restart recovery harness
  behind ``repro chaos --service``.

Cross-process coordination (claim files on in-flight cache entries)
lives with the cache itself in :mod:`repro.engine.cache`; the service
inherits it by pointing every job at one shared cache directory.
"""

from repro.service.client import (
    TRACE_HEADER,
    BackpressureError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.daemon import (
    ExperimentService,
    ServiceConfig,
    ServiceServer,
    run_service,
)
from repro.service.jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    PRIORITIES,
    REASON_DEADLINE,
    REASON_RECOVERED,
    REASON_RECOVERY_EXHAUSTED,
    REASON_STALL,
    TERMINAL_STATES,
    Job,
    JobEventLog,
    JobSpec,
    json_safe,
    next_job_id,
)
from repro.service.queue import (
    AdmissionQueue,
    QueueConfig,
    QueueFullError,
)
from repro.service.store import (
    PruneReport,
    StoreEntry,
    StoreManager,
    StoreStats,
)
from repro.service.wal import JobWAL, ReplayReport, WalEntry

__all__ = [
    "AdmissionQueue",
    "BackpressureError",
    "ExperimentService",
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "Job",
    "JobEventLog",
    "JobSpec",
    "JobWAL",
    "PRIORITIES",
    "PruneReport",
    "QueueConfig",
    "QueueFullError",
    "REASON_DEADLINE",
    "REASON_RECOVERED",
    "REASON_RECOVERY_EXHAUSTED",
    "REASON_STALL",
    "ReplayReport",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailableError",
    "StoreEntry",
    "StoreManager",
    "StoreStats",
    "TERMINAL_STATES",
    "TRACE_HEADER",
    "WalEntry",
    "json_safe",
    "next_job_id",
    "run_service",
]
