"""Multi-tenant admission control for the experiment service.

The queue is deliberately **bounded everywhere**: a global depth cap
(`max_depth`) protects the daemon from unbounded memory growth under
a thundering herd, and a per-tenant cap (`max_per_tenant`) stops one
noisy tenant from starving everyone else out of the shared depth.  A
submission that would exceed either bound is **rejected immediately**
with :class:`QueueFullError` -- the HTTP layer maps it to ``429 Too
Many Requests`` with a ``retry_after_s`` hint -- never silently
queued.

Scheduling order is priority class first (``high`` > ``normal`` >
``low``), FIFO within a class.  Priorities order *dispatch*, they do
not preempt: a running low-priority job finishes even if a high
arrives behind it.

Thread safety: the daemon's asyncio handlers and its dispatcher
threads share one queue; every operation takes the internal lock.
Admission/rejection counters land on the active metrics registry
(``service.admitted`` / ``service.rejected``) with the rejection
reason, so backpressure is visible in ``repro jobs stats``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError
from repro.obs import add_counter, observe, COUNT_BUCKETS
from repro.service.jobs import JOB_CANCELLED, PRIORITIES, Job

#: Suggested client back-off when rejected, seconds.
DEFAULT_RETRY_AFTER_S = 2.0


class QueueFullError(ReproError):
    """Admission refused: accepting would exceed a configured bound."""

    def __init__(self, message: str, *, reason: str,
                 retry_after_s: float = DEFAULT_RETRY_AFTER_S) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class QueueConfig:
    """Bounds for one :class:`AdmissionQueue`."""

    max_depth: int = 32
    max_per_tenant: int = 8

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(
                f"max_depth must be >= 1, got {self.max_depth}")
        if self.max_per_tenant < 1:
            raise ValueError(
                f"max_per_tenant must be >= 1, got {self.max_per_tenant}")


class AdmissionQueue:
    """Bounded, priority-classed, per-tenant-fair job queue."""

    def __init__(self, config: QueueConfig | None = None) -> None:
        self.config = config or QueueConfig()
        self._lock = threading.Lock()
        self._queues: dict[str, deque[Job]] = {
            priority: deque() for priority in PRIORITIES}
        self._admitted = 0
        self._rejected = 0

    # -- introspection ------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def tenant_depth(self, tenant: str) -> int:
        with self._lock:
            return self._tenant_depth_locked(tenant)

    def _tenant_depth_locked(self, tenant: str) -> int:
        return sum(1 for q in self._queues.values()
                   for job in q if job.spec.tenant == tenant)

    def pending(self) -> list[Job]:
        """Queued jobs in dispatch order."""
        with self._lock:
            return [job for priority in PRIORITIES
                    for job in self._queues[priority]]

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    # -- admission ----------------------------------------------------

    def submit(self, job: Job, *, force: bool = False) -> None:
        """Admit ``job`` or raise :class:`QueueFullError`.

        The two bounds are checked under one lock acquisition so a
        burst of concurrent submissions cannot overshoot either.
        ``force=True`` bypasses both bounds: recovery re-admission of
        already-acknowledged jobs must never bounce off backpressure
        meant for *new* work.
        """
        with self._lock:
            depth = sum(len(q) for q in self._queues.values())
            if force:
                self._queues[job.spec.priority].append(job)
                self._admitted += 1
                return
            if depth >= self.config.max_depth:
                self._rejected += 1
                add_counter("service.rejected")
                add_counter("service.rejected.depth")
                raise QueueFullError(
                    f"queue depth {self.config.max_depth} reached "
                    f"({depth} queued); retry later",
                    reason="queue_depth")
            tenant = job.spec.tenant
            tenant_depth = self._tenant_depth_locked(tenant)
            if tenant_depth >= self.config.max_per_tenant:
                self._rejected += 1
                add_counter("service.rejected")
                add_counter("service.rejected.tenant")
                raise QueueFullError(
                    f"tenant {tenant!r} already has {tenant_depth} "
                    f"queued job(s) (cap "
                    f"{self.config.max_per_tenant}); retry later",
                    reason="tenant_depth")
            self._queues[job.spec.priority].append(job)
            self._admitted += 1
        add_counter("service.admitted")
        observe("service.queue_depth", depth + 1, COUNT_BUCKETS)

    # -- dispatch -----------------------------------------------------

    def pop(self) -> Job | None:
        """Next dispatchable job in priority order, or ``None``.

        Jobs whose ``not_before`` (recovery/stall backoff) has not yet
        elapsed are passed over without losing their position; they
        become eligible again on a later poll.
        """
        now = time.monotonic()
        with self._lock:
            for priority in PRIORITIES:
                queue = self._queues[priority]
                for index, job in enumerate(queue):
                    if job.not_before <= now:
                        del queue[index]
                        return job
        return None

    def cancel(self, job_id: str) -> Job | None:
        """Remove a still-queued job; returns it (cancelled) or None.

        Running and terminal jobs are not the queue's to cancel -- the
        daemon answers 409 for those.
        """
        with self._lock:
            for queue in self._queues.values():
                for job in queue:
                    if job.id == job_id:
                        queue.remove(job)
                        break
                else:
                    continue
                break
            else:
                return None
        job.transition(JOB_CANCELLED, reason="client cancel")
        add_counter("service.cancelled")
        return job
