"""The experiment service daemon: async HTTP/JSON job API.

``repro serve`` turns the one-shot sweep engine into a long-running
multi-tenant service.  Architecture, front to back:

* **HTTP front end** -- an asyncio-streams HTTP/1.1 server (stdlib
  only, no web framework).  Handlers parse a request, call into
  :class:`ExperimentService`, and encode a JSON response; the events
  route streams JSONL and can *follow* a running job.
* **Admission** -- submissions pass through the bounded multi-tenant
  :class:`~repro.service.queue.AdmissionQueue`; a full queue answers
  ``429`` with a ``Retry-After`` hint instead of buffering without
  bound.
* **Dispatch** -- worker threads pop jobs in priority order and run
  each through a fresh :class:`~repro.engine.scheduler.ExecutionEngine`
  against the **shared result store**, so a job resubmitted by any
  tenant is served from cache and two jobs racing on one key settle it
  via claim files, not duplicate computation.  Engines run with
  ``handle_signals=False``: the daemon owns signal policy.
* **Shutdown** -- SIGINT/SIGTERM (or ``POST /v1/shutdown``) stops
  admission (503), cancels queued jobs, drains in-flight ones, prunes
  the store to its configured bounds, writes the service trace
  artifact, and reports whether the stop came from a signal so the CLI
  can exit with the distinct interrupted code.

Routes::

    GET  /healthz                   liveness + population counts
    POST /v1/jobs                   submit a sweep      -> 202 | 429
    GET  /v1/jobs[?tenant=]         list jobs
    GET  /v1/jobs/<id>              one job, records included
    GET  /v1/jobs/<id>/events       JSONL event stream [?follow=1]
    GET  /v1/jobs/<id>/result       results payload of a done job
    POST /v1/jobs/<id>/cancel       cancel while queued -> 200 | 409
    GET  /v1/stats[?format=prom]    service metrics registry
    GET  /v1/store                  shared store stats
    POST /v1/store/prune            apply the configured store bounds
    POST /v1/shutdown               graceful remote stop
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.scheduler import EXECUTOR_INLINE, EXECUTOR_PROCESS
from repro.errors import ReproError
from repro.obs import (
    DURATION_BUCKETS,
    FORMAT_JSON,
    Trace,
    activate,
    add_counter,
    deactivate,
    observe,
    registry_summary,
    span,
    to_prometheus,
    write_trace,
)
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    Job,
    JobEventLog,
    JobSpec,
    json_safe,
    next_job_id,
)
from repro.service.queue import AdmissionQueue, QueueConfig, QueueFullError
from repro.service.store import StoreManager

#: Bytes of request body the server is willing to buffer.
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral, announced on start
    cache_dir: Path = field(default_factory=lambda: Path(".repro_cache"))
    queue: QueueConfig = field(default_factory=QueueConfig)
    dispatchers: int = 1              # concurrent jobs (worker threads)
    executor: str = EXECUTOR_PROCESS  # engine executor for job sweeps
    trace_out: Path | None = None     # service trace artifact on stop
    #: Store bounds applied after every job and on demand; ``None``
    #: disables that bound.
    store_max_bytes: int | None = None
    store_max_entries: int | None = None
    store_max_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.dispatchers < 1:
            raise ValueError(
                f"dispatchers must be >= 1, got {self.dispatchers}")
        if self.executor not in (EXECUTOR_PROCESS, EXECUTOR_INLINE):
            raise ValueError(f"unknown executor {self.executor!r}")


class ExperimentService:
    """Daemon state: job table, queue, store, dispatcher threads."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.queue = AdmissionQueue(self.config.queue)
        self.store = StoreManager(self.config.cache_dir)
        self.trace = Trace("repro-service")
        self.jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._work = threading.Event()
        self._draining = threading.Event()
        self._threads: list[threading.Thread] = []
        #: Set when shutdown came from SIGINT/SIGTERM rather than the
        #: shutdown route; the CLI maps it to the interrupted exit code.
        self.signalled = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        activate(self.trace)
        for index in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, *, drain_timeout_s: float = 60.0) -> None:
        """Drain and shut down; idempotent."""
        if self._draining.is_set():
            return
        self._draining.set()
        self._work.set()  # wake dispatchers so they observe the drain
        for job in self.queue.pending():
            self.queue.cancel(job.id)
        for thread in self._threads:
            thread.join(timeout=drain_timeout_s)
        self.prune_store()
        deactivate()
        if self.config.trace_out is not None:
            try:
                write_trace(self.trace, self.config.trace_out,
                            format=FORMAT_JSON)
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- job submission / lookup --------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit a job (raises QueueFullError / ReproError)."""
        if self._draining.is_set():
            raise ReproError("service is shutting down")
        job_id = next_job_id()
        event_path = (Path(self.config.cache_dir) / "service"
                      / f"{job_id}.events.jsonl")
        job = Job(id=job_id, spec=spec,
                  event_log=JobEventLog(event_path))
        with self._jobs_lock:
            self.jobs[job_id] = job
        try:
            self.queue.submit(job)
        except QueueFullError:
            with self._jobs_lock:
                del self.jobs[job_id]
            raise
        job.add_event(JOB_QUEUED, tenant=spec.tenant,
                      priority=spec.priority,
                      experiments=list(spec.experiment_ids))
        self._work.set()
        return job

    def job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self.jobs.get(job_id)

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        with self._jobs_lock:
            jobs = list(self.jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.spec.tenant == tenant]
        return sorted(jobs, key=lambda job: job.submitted_at)

    def cancel(self, job_id: str) -> tuple[bool, str]:
        """(ok, reason).  Only queued jobs are cancellable."""
        job = self.job(job_id)
        if job is None:
            return False, "unknown job"
        if self.queue.cancel(job_id) is not None:
            return True, "cancelled"
        return False, f"job is {job.state}, not queued"

    def prune_store(self):
        return self.store.prune(
            max_age_s=self.config.store_max_age_s,
            max_entries=self.config.store_max_entries,
            max_bytes=self.config.store_max_bytes)

    # -- dispatch -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                if self._draining.is_set():
                    return
                self._work.wait(timeout=0.2)
                self._work.clear()
                continue
            self._run_job(job)

    def _engine_config(self, spec: JobSpec) -> EngineConfig:
        return EngineConfig(
            jobs=spec.workers,
            timeout_s=spec.timeout_s,
            retries=spec.retries,
            cache_enabled=spec.use_cache,
            cache_dir=Path(self.config.cache_dir),
            executor=self.config.executor,
            handle_signals=False,  # worker thread; daemon owns signals
        )

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        job.transition("running", tenant=spec.tenant)
        wait_s = job.queue_wait_s() or 0.0
        observe("service.queue_wait_s", wait_s, DURATION_BUCKETS,
                tenant=spec.tenant)
        add_counter("service.jobs_started")
        try:
            with span("service.job", job=job.id, tenant=spec.tenant,
                      priority=spec.priority):
                engine = ExecutionEngine(self._engine_config(spec))
                sweep = engine.run(spec.experiment_ids or None)
        except (ReproError, Exception) as exc:  # job must never kill us
            job.error = f"{type(exc).__name__}: {exc}"
            job.transition(JOB_FAILED, error=job.error)
            add_counter("service.jobs_failed")
            return
        job.records = [record.to_json_dict()
                       for record in sweep.records]
        job.metrics = sweep.metrics.to_json_dict()
        job.results = json_safe(sweep.results)
        job.interrupted = sweep.interrupted
        for record in sweep.records:
            job.add_event("record", experiment_id=record.experiment_id,
                          status=record.status,
                          cache_hit=record.cache_hit,
                          wall_time_s=record.wall_time_s)
        observe("service.job_wall_s", job.wall_s() or 0.0,
                DURATION_BUCKETS, tenant=spec.tenant)
        if sweep.metrics.all_ok:
            job.transition(JOB_DONE, ok=sweep.metrics.ok,
                           cache_hits=sweep.metrics.cache_hits)
            add_counter("service.jobs_done")
            add_counter(f"service.jobs_done.{spec.tenant}")
        else:
            failed = [record.experiment_id for record in sweep.records
                      if not record.ok]
            job.error = f"{len(failed)} experiment(s) not ok: {failed}"
            job.transition(JOB_FAILED, error=job.error)
            add_counter("service.jobs_failed")
        self.prune_store()


# -- HTTP plumbing ----------------------------------------------------


class _BadRequest(Exception):
    pass


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, str]
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, raw_query = target.partition("?")
    return _Request(method=method.upper(), path=path,
                    query=_parse_query(raw_query), body=body)


def _response(status: int, payload: Any, *,
              headers: dict[str, str] | None = None) -> bytes:
    body = (json.dumps(json_safe(payload), sort_keys=True) + "\n"
            ).encode("utf-8")
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _stream_head(status: int = 200) -> bytes:
    return (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/jsonl\r\n"
            "Connection: close\r\n\r\n").encode("latin-1")


class ServiceServer:
    """Binds the HTTP front end to an :class:`ExperimentService`."""

    def __init__(self, service: ExperimentService) -> None:
        self.service = service
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        config = self.service.config
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, config.host, config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until a drain signal or shutdown request arrives."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, self._initiate_stop, True)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        await self._stopping.wait()
        await self._shutdown()

    def _initiate_stop(self, signalled: bool = False) -> None:
        if signalled:
            self.service.signalled = True
            add_counter("service.drain_signals")
        self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain runs in a thread: in-flight jobs may take a while and
        # must not block the loop (follow-streams still read events).
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.stop)

    # -- request handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                writer.write(_response(400, {"error": str(exc)}))
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            try:
                await self._route(request, writer)
            except _BadRequest as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except ReproError as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except Exception as exc:
                writer.write(_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: _Request,
                     writer: asyncio.StreamWriter) -> None:
        service = self.service
        method, path = request.method, request.path
        add_counter("service.requests")

        if path == "/healthz" and method == "GET":
            writer.write(_response(200, {
                "ok": True,
                "draining": service.draining,
                "jobs": len(service.jobs),
                "queued": service.queue.depth(),
            }))
            return

        if path == "/v1/jobs" and method == "POST":
            if service.draining:
                writer.write(_response(
                    503, {"error": "service is shutting down"}))
                return
            spec = JobSpec.from_json_dict(request.json())
            try:
                job = service.submit(spec)
            except QueueFullError as exc:
                writer.write(_response(
                    429, {"error": str(exc), "reason": exc.reason,
                          "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After":
                             f"{max(1, round(exc.retry_after_s))}"}))
                return
            writer.write(_response(
                202, job.to_json_dict(include_records=False)))
            return

        if path == "/v1/jobs" and method == "GET":
            tenant = request.query.get("tenant") or None
            writer.write(_response(200, {
                "jobs": [job.to_json_dict(include_records=False)
                         for job in service.list_jobs(tenant)]}))
            return

        if path.startswith("/v1/jobs/"):
            await self._route_job(request, writer)
            return

        if path == "/v1/stats" and method == "GET":
            if request.query.get("format") == "prom":
                body = to_prometheus(service.trace.metrics).encode()
                writer.write(
                    (f"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
                     f"Content-Length: {len(body)}\r\n"
                     "Connection: close\r\n\r\n").encode("latin-1")
                    + body)
                return
            writer.write(_response(200, {
                "metrics": registry_summary(service.trace.metrics),
                "counters": service.trace.counters.as_dict(),
                "queue": {"depth": service.queue.depth(),
                          "admitted": service.queue.admitted,
                          "rejected": service.queue.rejected},
            }))
            return

        if path == "/v1/store" and method == "GET":
            writer.write(_response(
                200, service.store.stats().to_json_dict()))
            return

        if path == "/v1/store/prune" and method == "POST":
            writer.write(_response(
                200, service.prune_store().to_json_dict()))
            return

        if path == "/v1/shutdown" and method == "POST":
            writer.write(_response(200, {"ok": True,
                                         "stopping": True}))
            await writer.drain()
            self._initiate_stop(False)
            return

        writer.write(_response(404, {
            "error": f"no route for {method} {path}"}))

    async def _route_job(self, request: _Request,
                         writer: asyncio.StreamWriter) -> None:
        service = self.service
        parts = request.path.split("/")  # '', 'v1', 'jobs', id[, sub]
        job_id = parts[3] if len(parts) > 3 else ""
        sub = parts[4] if len(parts) > 4 else None
        job = service.job(job_id)
        if job is None:
            writer.write(_response(
                404, {"error": f"unknown job {job_id!r}"}))
            return

        if sub is None and request.method == "GET":
            writer.write(_response(200, job.to_json_dict()))
            return

        if sub == "events" and request.method == "GET":
            await self._stream_events(
                job, writer,
                follow=request.query.get("follow") in ("1", "true"))
            return

        if sub == "result" and request.method == "GET":
            if not job.terminal:
                writer.write(_response(409, {
                    "error": f"job is {job.state}; results are "
                             "available once it finishes"}))
                return
            writer.write(_response(200, {
                "id": job.id, "state": job.state, "error": job.error,
                "interrupted": job.interrupted,
                "results": job.results, "metrics": job.metrics}))
            return

        if sub == "cancel" and request.method == "POST":
            ok, reason = service.cancel(job.id)
            writer.write(_response(
                200 if ok else 409,
                {"id": job.id, "cancelled": ok, "reason": reason}))
            return

        writer.write(_response(405, {
            "error": f"no route for {request.method} {request.path}"}))

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter,
                             follow: bool) -> None:
        writer.write(_stream_head())
        sent = 0
        while True:
            with job.lock:
                fresh = list(job.events[sent:])
            for event in fresh:
                writer.write(
                    (json.dumps(json_safe(event), sort_keys=True)
                     + "\n").encode("utf-8"))
            sent += len(fresh)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not follow or job.terminal:
                return
            await asyncio.sleep(0.05)


async def _serve(config: ServiceConfig,
                 announce=print) -> ExperimentService:
    service = ExperimentService(config)
    server = ServiceServer(service)
    await server.start()
    announce(f"repro service listening on "
             f"http://{config.host}:{server.port}")
    await server.serve_forever()
    return service


def run_service(config: ServiceConfig, announce=print) -> bool:
    """Run the daemon until shutdown; True when a signal stopped it."""
    service = asyncio.run(_serve(config, announce))
    return service.signalled
