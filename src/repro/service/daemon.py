"""The experiment service daemon: async HTTP/JSON job API.

``repro serve`` turns the one-shot sweep engine into a long-running
multi-tenant service.  Architecture, front to back:

* **HTTP front end** -- an asyncio-streams HTTP/1.1 server (stdlib
  only, no web framework).  Handlers parse a request, call into
  :class:`ExperimentService`, and encode a JSON response; the events
  route streams JSONL and can *follow* a running job.
* **Admission** -- submissions pass through the bounded multi-tenant
  :class:`~repro.service.queue.AdmissionQueue`; a full queue answers
  ``429`` with a ``Retry-After`` hint instead of buffering without
  bound.
* **Dispatch** -- worker threads pop jobs in priority order and run
  each through a fresh :class:`~repro.engine.scheduler.ExecutionEngine`
  against the **shared result store**, so a job resubmitted by any
  tenant is served from cache and two jobs racing on one key settle it
  via claim files, not duplicate computation.  Engines run with
  ``handle_signals=False``: the daemon owns signal policy.
* **Shutdown** -- SIGINT/SIGTERM (or ``POST /v1/shutdown``) stops
  admission (503), cancels queued jobs, drains in-flight ones, prunes
  the store to its configured bounds, writes the service trace
  artifact, and reports whether the stop came from a signal so the CLI
  can exit with the distinct interrupted code.

Routes::

    GET  /healthz                   liveness + population counts
    POST /v1/jobs                   submit a sweep      -> 202 | 429
    GET  /v1/jobs[?tenant=]         list jobs
    GET  /v1/jobs/<id>              one job, records included
    GET  /v1/jobs/<id>/events       JSONL event stream [?follow=1]
    GET  /v1/jobs/<id>/result       results payload of a done job
    POST /v1/jobs/<id>/cancel       cancel while queued -> 200 | 409
    GET  /v1/stats[?format=prom]    service metrics registry
    GET  /v1/store                  shared store stats
    POST /v1/store/prune            apply the configured store bounds
    POST /v1/shutdown               graceful remote stop
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.scheduler import EXECUTOR_INLINE, EXECUTOR_PROCESS
from repro.errors import ReproError
from repro.reliability.backoff import BackoffPolicy
from repro.obs import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    FORMAT_JSON,
    HistorySampler,
    SamplingProfiler,
    TimeSeriesBuffer,
    Trace,
    activate,
    add_counter,
    configure_logging,
    deactivate,
    get_logger,
    new_trace_id,
    observe,
    registry_summary,
    sample_resources,
    span,
    to_prometheus,
    trace_context,
    write_trace,
)
from repro.obs.log import LEVELS
from repro.service.jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    REASON_DEADLINE,
    REASON_RECOVERED,
    REASON_RECOVERY_EXHAUSTED,
    REASON_STALL,
    Job,
    JobEventLog,
    JobSpec,
    json_safe,
    next_job_id,
)
from repro.service.queue import AdmissionQueue, QueueConfig, QueueFullError
from repro.service.store import StoreManager
from repro.service.wal import WAL_FILENAME, JobWAL, WalEntry

#: Bytes of request body the server is willing to buffer.
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral, announced on start
    cache_dir: Path = field(default_factory=lambda: Path(".repro_cache"))
    queue: QueueConfig = field(default_factory=QueueConfig)
    dispatchers: int = 1              # concurrent jobs (worker threads)
    executor: str = EXECUTOR_PROCESS  # engine executor for job sweeps
    trace_out: Path | None = None     # service trace artifact on stop
    #: Store bounds applied after every job and on demand; ``None``
    #: disables that bound.
    store_max_bytes: int | None = None
    store_max_entries: int | None = None
    store_max_age_s: float | None = None
    #: Watchdog: a running job whose engine reports no progress for
    #: this long is treated as stalled, aborted, and requeued.
    stall_timeout_s: float = 300.0
    #: How often the watchdog scans running jobs.
    watchdog_poll_s: float = 0.25
    #: Times an orphaned (crash) or stalled run may be requeued before
    #: the job fails with reason ``recovery_exhausted``.
    max_recovery_attempts: int = 3
    #: Jittered exponential backoff between recovery requeues.
    recovery_backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base_s=0.5, max_s=30.0))
    #: Terminal job stubs retained in the WAL across compactions.
    wal_keep_terminal: int = 256
    #: Structured-log sink; ``None`` defaults to
    #: ``<cache_dir>/service/service.log.jsonl``.
    log_path: Path | None = None
    #: Log level (``debug``/``info``/``warning``/``error``); ``None``
    #: defers to ``REPRO_LOG_LEVEL`` (else ``info``).
    log_level: str | None = None
    #: Metrics-history sampling cadence and window.
    history_interval_s: float = 1.0
    history_capacity: int = 600
    #: Sampling interval for per-job profilers (``submit --profile``).
    profile_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.dispatchers < 1:
            raise ValueError(
                f"dispatchers must be >= 1, got {self.dispatchers}")
        if self.executor not in (EXECUTOR_PROCESS, EXECUTOR_INLINE):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be > 0, got {self.stall_timeout_s}")
        if self.watchdog_poll_s <= 0:
            raise ValueError(
                f"watchdog_poll_s must be > 0, got {self.watchdog_poll_s}")
        if self.max_recovery_attempts < 0:
            raise ValueError(
                f"max_recovery_attempts must be >= 0, "
                f"got {self.max_recovery_attempts}")
        if self.log_level is not None and self.log_level not in LEVELS:
            raise ValueError(
                f"log_level must be one of {sorted(LEVELS)}, "
                f"got {self.log_level!r}")
        if self.history_interval_s <= 0:
            raise ValueError(
                f"history_interval_s must be > 0, "
                f"got {self.history_interval_s}")
        if self.history_capacity < 1:
            raise ValueError(
                f"history_capacity must be >= 1, "
                f"got {self.history_capacity}")
        if self.profile_interval_s <= 0:
            raise ValueError(
                f"profile_interval_s must be > 0, "
                f"got {self.profile_interval_s}")


@dataclass
class _RunningJob:
    """Watchdog bookkeeping for one in-flight job."""

    job: Job
    engine: ExecutionEngine
    started: float    # monotonic
    heartbeat: float  # monotonic, advanced by engine progress
    #: Set once by the watchdog (``stall`` / ``deadline``) so the
    #: dispatcher knows why its engine run came back dead.
    verdict: str | None = None

    def beat(self) -> None:
        self.heartbeat = time.monotonic()


class ExperimentService:
    """Daemon state: job table, queue, store, WAL, worker threads."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.queue = AdmissionQueue(self.config.queue)
        self.store = StoreManager(self.config.cache_dir)
        self.trace = Trace("repro-service")
        self.wal = JobWAL(Path(self.config.cache_dir) / "service"
                          / WAL_FILENAME)
        self.jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        #: idempotency key -> job id, rebuilt from the WAL on startup.
        self._idempotency: dict[str, str] = {}
        self._running: dict[str, _RunningJob] = {}
        self._running_lock = threading.Lock()
        self._work = threading.Event()
        self._draining = threading.Event()
        self._threads: list[threading.Thread] = []
        self.history = TimeSeriesBuffer(self.config.history_capacity)
        self._sampler: HistorySampler | None = None
        self._log = get_logger("service.daemon")
        #: Jobs re-admitted by the last startup recovery.
        self.recovered_jobs = 0
        #: Set when shutdown came from SIGINT/SIGTERM rather than the
        #: shutdown route; the CLI maps it to the interrupted exit code.
        self.signalled = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        log_path = (Path(self.config.log_path)
                    if self.config.log_path is not None
                    else Path(self.config.cache_dir) / "service"
                    / "service.log.jsonl")
        configure_logging(log_path, level=self.config.log_level)
        activate(self.trace)
        self._log.info("service.start",
                       dispatchers=self.config.dispatchers,
                       executor=self.config.executor,
                       log_path=str(log_path))
        self._recover()
        for index in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)
        watchdog = threading.Thread(target=self._watchdog_loop,
                                    name="repro-watchdog", daemon=True)
        watchdog.start()
        self._threads.append(watchdog)
        self._sampler = HistorySampler(
            self._history_sample, self.history,
            interval_s=self.config.history_interval_s)
        self._sampler.start()

    def stop(self, *, drain_timeout_s: float = 60.0) -> None:
        """Drain and shut down; idempotent."""
        if self._draining.is_set():
            return
        self._draining.set()
        self._log.info("service.stop", signalled=self.signalled)
        self._work.set()  # wake dispatchers so they observe the drain
        for job in self.queue.pending():
            self.queue.cancel(job.id)
        for thread in self._threads:
            thread.join(timeout=drain_timeout_s)
        if self._sampler is not None:
            self._sampler.stop()
        self.prune_store()
        self.wal.compact(self._wal_entries(),
                         keep_terminal=self.config.wal_keep_terminal)
        deactivate()
        if self.config.trace_out is not None:
            try:
                write_trace(self.trace, self.config.trace_out,
                            format=FORMAT_JSON)
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- metrics history ----------------------------------------------

    def _history_sample(self) -> dict:
        """One cadence sample: load, latency quantiles, resources."""
        with self._running_lock:
            running = len(self._running)
        with self._jobs_lock:
            jobs = len(self.jobs)
        counters = self.trace.counters.as_dict()
        sample = {
            "queued": self.queue.depth(),
            "running": running,
            "jobs": jobs,
            "rss_peak_kb": sample_resources().rss_peak_kb,
            "jobs_done": counters.get("service.jobs_done", 0),
            "jobs_failed": counters.get("service.jobs_failed", 0),
            "requests": counters.get("service.requests", 0),
        }
        series = self.trace.metrics.histograms()
        for name in ("service.job_wall_s", "engine.run_s"):
            matching = [h for n, _, h in series if n == name and h.count]
            if not matching:
                continue
            # Quantiles over the label-merged series would need a
            # rebuild; sample the largest series instead (label splits
            # are usually singular in practice).
            biggest = max(matching, key=lambda h: h.count)
            for q_name, q in (("p50", 0.50), ("p99", 0.99)):
                value = biggest.quantile(q)
                if value is not None:
                    sample[f"{name}.{q_name}"] = round(value, 6)
        return sample

    # -- crash recovery -----------------------------------------------

    def _event_log_path(self, job_id: str) -> Path:
        return (Path(self.config.cache_dir) / "service"
                / f"{job_id}.events.jsonl")

    def _wal_entries(self) -> list[WalEntry]:
        """Current job table as WAL entries, in submission order."""
        with self._jobs_lock:
            jobs = sorted(self.jobs.values(),
                          key=lambda job: (job.submitted_at, job.id))
        return [WalEntry(job_id=job.id, spec=job.spec,
                         submitted_at=job.submitted_at,
                         state=job.state, reason=job.reason,
                         error=job.error,
                         recovery_attempts=job.recovery_attempts,
                         arrival=index)
                for index, job in enumerate(jobs)]

    def _recover(self) -> None:
        """Rebuild the job table from the WAL after a crash/restart.

        Queued jobs are re-admitted in original priority/arrival order
        (``force=True``: they were already acknowledged, backpressure
        does not apply to them twice).  Jobs that were ``running`` when
        the previous process died are orphans: requeued with a bounded
        ``recovery_attempts`` counter and jittered exponential backoff,
        or failed with reason ``recovery_exhausted`` once the bound is
        hit.  Terminal jobs come back as state-only stubs -- their
        results died with the old process, their outcome did not.
        """
        report = self.wal.replay()
        if report.skipped:
            add_counter("wal.skipped_lines", report.skipped)
        if report.dangling:
            add_counter("wal.dangling_records", report.dangling)
        if not report.entries:
            return
        now = time.monotonic()
        ordered = sorted(report.entries.values(),
                         key=lambda entry: entry.arrival)
        for entry in ordered:
            log = JobEventLog(self._event_log_path(entry.job_id))
            events, skipped = log.replay()
            if skipped:
                add_counter("service.events_skipped", skipped)
            job = Job(id=entry.job_id, spec=entry.spec,
                      state=entry.state,
                      submitted_at=entry.submitted_at,
                      error=entry.error,
                      recovery_attempts=entry.recovery_attempts,
                      reason=entry.reason,
                      events=events, event_log=log, wal=self.wal)
            with self._jobs_lock:
                self.jobs[job.id] = job
                if entry.spec.idempotency_key:
                    self._idempotency[entry.spec.idempotency_key] \
                        = job.id
            if entry.terminal:
                continue
            if entry.orphaned:
                attempts = entry.recovery_attempts + 1
                if attempts > self.config.max_recovery_attempts:
                    job.error = (
                        "orphaned run exceeded "
                        f"{self.config.max_recovery_attempts} recovery "
                        "attempt(s)")
                    job.transition(JOB_FAILED,
                                   reason=REASON_RECOVERY_EXHAUSTED,
                                   error=job.error)
                    add_counter("jobs.recovery_exhausted")
                    add_counter("service.jobs_failed")
                    self._log.warning(
                        "recovery.exhausted", job_id=job.id,
                        trace_id=job.spec.trace_id,
                        attempts=attempts - 1)
                    continue
                job.recovery_attempts = attempts
                delay = self.config.recovery_backoff.delay_s(
                    job.id, attempts)
                job.not_before = now + delay
                job.transition(JOB_QUEUED, reason=REASON_RECOVERED,
                               recovery_attempts=attempts,
                               backoff_s=round(delay, 3))
                add_counter("jobs.recovered")
                self.recovered_jobs += 1
                self._log.info("recovery.requeued", job_id=job.id,
                               trace_id=job.spec.trace_id,
                               attempt=attempts,
                               backoff_s=round(delay, 3))
            self.queue.submit(job, force=True)
        # leases the dead process held will never be released by it
        self.store.cache.sweep_stale_claims()
        self.wal.compact(self._wal_entries(),
                         keep_terminal=self.config.wal_keep_terminal)
        if self.recovered_jobs or self.queue.depth():
            self._work.set()

    # -- watchdog -----------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Abort runs past their deadline or with stale heartbeats."""
        while not self._draining.is_set():
            now = time.monotonic()
            with self._running_lock:
                entries = list(self._running.values())
            for entry in entries:
                if entry.verdict is not None:
                    continue
                deadline_s = entry.job.spec.deadline_s
                if (deadline_s is not None
                        and now - entry.started > deadline_s):
                    entry.verdict = "deadline"
                    self._log.warning(
                        "watchdog.deadline", job_id=entry.job.id,
                        trace_id=entry.job.spec.trace_id,
                        deadline_s=deadline_s)
                    entry.engine.abort(
                        f"deadline_s={deadline_s:g} exceeded")
                    continue
                if now - entry.heartbeat > self.config.stall_timeout_s:
                    entry.verdict = "stall"
                    self._log.warning(
                        "watchdog.stall", job_id=entry.job.id,
                        trace_id=entry.job.spec.trace_id,
                        stall_timeout_s=self.config.stall_timeout_s)
                    entry.engine.abort(
                        "no progress for "
                        f"{self.config.stall_timeout_s:g} s")
            self._draining.wait(timeout=self.config.watchdog_poll_s)

    # -- job submission / lookup --------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit a job; returns ``(job, created)``.

        ``created`` is False when ``spec.idempotency_key`` matched an
        existing job, which is returned instead of admitting a
        duplicate.  The submission is journalled to the WAL **before**
        this returns, so an acknowledged job survives a crash.  Raises
        QueueFullError / ReproError.
        """
        if self._draining.is_set():
            raise ReproError("service is shutting down")
        # Mint the correlation id before the WAL sees the spec, so a
        # recovered job keeps the same trace_id across a crash.  Direct
        # submissions (no client-minted id) get a daemon-side one.
        if spec.trace_id is None:
            spec = replace(spec, trace_id=new_trace_id())
        with self._jobs_lock:
            key = spec.idempotency_key
            if key is not None:
                existing_id = self._idempotency.get(key)
                existing = (self.jobs.get(existing_id)
                            if existing_id is not None else None)
                if existing is not None:
                    add_counter("service.idempotent_hits")
                    return existing, False
            job_id = next_job_id()
            job = Job(id=job_id, spec=spec,
                      event_log=JobEventLog(
                          self._event_log_path(job_id)),
                      wal=self.wal)
            self.jobs[job_id] = job
            if key is not None:
                self._idempotency[key] = job_id
        # Journal before admission: a dispatcher may transition the job
        # the instant it is queued, and a state record must never reach
        # the WAL ahead of its submit record.
        self.wal.log_submit(job_id, spec, job.submitted_at)
        try:
            self.queue.submit(job)
        except QueueFullError:
            with self._jobs_lock:
                del self.jobs[job_id]
                if key is not None:
                    self._idempotency.pop(key, None)
            self.wal.log_state(job_id, JOB_CANCELLED,
                               reason="rejected: backpressure")
            raise
        job.add_event(JOB_QUEUED, tenant=spec.tenant,
                      priority=spec.priority,
                      experiments=list(spec.experiment_ids))
        self._log.info("job.submit", trace_id=spec.trace_id,
                       job_id=job_id, tenant=spec.tenant,
                       priority=spec.priority,
                       experiments=len(spec.experiment_ids),
                       profile=spec.profile)
        self._work.set()
        return job, True

    def job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self.jobs.get(job_id)

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        with self._jobs_lock:
            jobs = list(self.jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.spec.tenant == tenant]
        return sorted(jobs, key=lambda job: job.submitted_at)

    def cancel(self, job_id: str) -> tuple[bool, str]:
        """(ok, reason).  Only queued jobs are cancellable."""
        job = self.job(job_id)
        if job is None:
            return False, "unknown job"
        if self.queue.cancel(job_id) is not None:
            return True, "cancelled"
        return False, f"job is {job.state}, not queued"

    def prune_store(self):
        return self.store.prune(
            max_age_s=self.config.store_max_age_s,
            max_entries=self.config.store_max_entries,
            max_bytes=self.config.store_max_bytes)

    # -- dispatch -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                if self._draining.is_set():
                    return
                self._work.wait(timeout=0.2)
                self._work.clear()
                continue
            self._run_job(job)

    def _engine_config(self, job: Job,
                       progress=None) -> EngineConfig:
        spec = job.spec
        return EngineConfig(
            jobs=spec.workers,
            timeout_s=spec.timeout_s,
            retries=spec.retries,
            cache_enabled=spec.use_cache,
            cache_dir=Path(self.config.cache_dir),
            executor=self.config.executor,
            handle_signals=False,  # worker thread; daemon owns signals
            progress=progress,
            trace_context={"trace_id": spec.trace_id,
                           "job_id": job.id, "tenant": spec.tenant},
        )

    def _requeue_stalled(self, job: Job) -> None:
        """Requeue a watchdog-stalled job, bounded by recovery limits."""
        add_counter("jobs.stalled")
        attempts = job.recovery_attempts + 1
        if (attempts > self.config.max_recovery_attempts
                or self._draining.is_set()):
            job.error = ("stalled run exceeded "
                         f"{self.config.max_recovery_attempts} "
                         "recovery attempt(s)"
                         if not self._draining.is_set()
                         else "stalled while the service was draining")
            job.transition(JOB_FAILED,
                           reason=(REASON_RECOVERY_EXHAUSTED
                                   if not self._draining.is_set()
                                   else REASON_STALL),
                           error=job.error)
            add_counter("service.jobs_failed")
            return
        job.recovery_attempts = attempts
        delay = self.config.recovery_backoff.delay_s(job.id, attempts)
        job.not_before = time.monotonic() + delay
        job.transition(JOB_QUEUED, reason=REASON_STALL,
                       recovery_attempts=attempts,
                       backoff_s=round(delay, 3))
        self.queue.submit(job, force=True)
        self._work.set()

    def _profile_path(self, job_id: str) -> Path:
        return (Path(self.config.cache_dir) / "service"
                / f"{job_id}.profile.txt")

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        with trace_context(trace_id=spec.trace_id, job_id=job.id,
                           tenant=spec.tenant):
            self._run_job_in_context(job)

    def _run_job_in_context(self, job: Job) -> None:
        spec = job.spec
        job.transition(JOB_RUNNING, tenant=spec.tenant)
        wait_s = job.queue_wait_s() or 0.0
        observe("service.queue_wait_s", wait_s, DURATION_BUCKETS,
                tenant=spec.tenant)
        add_counter("service.jobs_started")
        self._log.info("job.dispatch",
                       queue_wait_s=round(wait_s, 6),
                       priority=spec.priority)
        now = time.monotonic()
        entry = _RunningJob(job=job, engine=None, started=now,
                            heartbeat=now)
        engine = ExecutionEngine(
            self._engine_config(job, progress=entry.beat))
        entry.engine = engine
        with self._running_lock:
            self._running[job.id] = entry
        profiler = (SamplingProfiler(self.config.profile_interval_s)
                    if spec.profile else None)
        try:
            if profiler is not None:
                profiler.start()
            with span("service.job", job=job.id, tenant=spec.tenant,
                      priority=spec.priority):
                sweep = engine.run(spec.experiment_ids or None)
        except (ReproError, Exception) as exc:  # job must never kill us
            job.error = f"{type(exc).__name__}: {exc}"
            job.transition(JOB_FAILED, error=job.error)
            add_counter("service.jobs_failed")
            self._log.error("job.crashed", error=job.error)
            return
        finally:
            if profiler is not None:
                profiler.stop()
                self._store_profile(job, profiler)
            with self._running_lock:
                self._running.pop(job.id, None)
        job.records = [record.to_json_dict()
                       for record in sweep.records]
        job.metrics = sweep.metrics.to_json_dict()
        job.results = json_safe(sweep.results)
        job.interrupted = sweep.interrupted
        for record in sweep.records:
            job.add_event("record", experiment_id=record.experiment_id,
                          status=record.status,
                          cache_hit=record.cache_hit,
                          wall_time_s=record.wall_time_s)
        # Measured from dispatch, not job.wall_s(): finished_at is only
        # stamped by the terminal transition below, and a stalled job
        # requeues without one -- wall_s() here would always be None.
        observe("service.job_wall_s", time.monotonic() - now,
                DURATION_BUCKETS, tenant=spec.tenant)
        if entry.verdict == "deadline":
            job.error = (f"deadline_s={spec.deadline_s:g} exceeded "
                         "(run aborted by the watchdog)")
            job.transition(JOB_FAILED, reason=REASON_DEADLINE,
                           error=job.error)
            add_counter("jobs.deadline_exceeded")
            add_counter("service.jobs_failed")
            self._log.warning("job.deadline_exceeded",
                              deadline_s=spec.deadline_s)
        elif entry.verdict == "stall":
            self._log.warning("job.stalled",
                              stall_timeout_s=
                              self.config.stall_timeout_s)
            self._requeue_stalled(job)
        elif sweep.metrics.all_ok:
            job.transition(JOB_DONE, ok=sweep.metrics.ok,
                           cache_hits=sweep.metrics.cache_hits)
            add_counter("service.jobs_done")
            add_counter(f"service.jobs_done.{spec.tenant}")
            self._log.info("job.done", ok=sweep.metrics.ok,
                           cache_hits=sweep.metrics.cache_hits,
                           wall_s=round(job.wall_s() or 0.0, 6))
        else:
            failed = [record.experiment_id for record in sweep.records
                      if not record.ok]
            job.error = f"{len(failed)} experiment(s) not ok: {failed}"
            job.transition(JOB_FAILED, error=job.error)
            add_counter("service.jobs_failed")
            self._log.warning("job.failed", error=job.error)
        self.prune_store()

    def _store_profile(self, job: Job,
                       profiler: SamplingProfiler) -> None:
        """Keep the collapsed profile on the job and next to the WAL."""
        text = profiler.to_collapsed_text()
        job.profile_text = text
        observe("service.profile_samples", profiler.samples,
                COUNT_BUCKETS)
        self._log.info("job.profiled", samples=profiler.samples,
                       stacks=len(profiler.collapsed()),
                       duration_s=round(profiler.duration_s, 6))
        try:
            path = self._profile_path(job.id)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        except OSError:
            pass  # the in-memory copy still serves the route


# -- HTTP plumbing ----------------------------------------------------


class _BadRequest(Exception):
    pass


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, str]
    body: bytes
    #: Header names lowercased by the parser.
    headers: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, raw_query = target.partition("?")
    return _Request(method=method.upper(), path=path,
                    query=_parse_query(raw_query), body=body,
                    headers=headers)


def _response(status: int, payload: Any, *,
              headers: dict[str, str] | None = None) -> bytes:
    body = (json.dumps(json_safe(payload), sort_keys=True) + "\n"
            ).encode("utf-8")
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _stream_head(status: int = 200) -> bytes:
    return (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/jsonl\r\n"
            "Connection: close\r\n\r\n").encode("latin-1")


class ServiceServer:
    """Binds the HTTP front end to an :class:`ExperimentService`."""

    def __init__(self, service: ExperimentService) -> None:
        self.service = service
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        config = self.service.config
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, config.host, config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until a drain signal or shutdown request arrives."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, self._initiate_stop, True)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        await self._stopping.wait()
        await self._shutdown()

    def _initiate_stop(self, signalled: bool = False) -> None:
        if signalled:
            self.service.signalled = True
            add_counter("service.drain_signals")
        self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain runs in a thread: in-flight jobs may take a while and
        # must not block the loop (follow-streams still read events).
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.stop)

    # -- request handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                writer.write(_response(400, {"error": str(exc)}))
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            try:
                await self._route(request, writer)
            except _BadRequest as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except ReproError as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except Exception as exc:
                writer.write(_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: _Request,
                     writer: asyncio.StreamWriter) -> None:
        service = self.service
        method, path = request.method, request.path
        add_counter("service.requests")

        if path == "/healthz" and method == "GET":
            with service._running_lock:
                running = len(service._running)
            writer.write(_response(200, {
                "ok": True,
                "draining": service.draining,
                "jobs": len(service.jobs),
                "queued": service.queue.depth(),
                "running": running,
                "recovered": service.recovered_jobs,
            }))
            return

        if path == "/v1/jobs" and method == "POST":
            if service.draining:
                writer.write(_response(
                    503, {"error": "service is shutting down"}))
                return
            payload = request.json()
            # A client-minted X-Repro-Trace-Id header wins over nothing
            # but never over an explicit spec field.
            header_trace = request.headers.get("x-repro-trace-id")
            if (header_trace and isinstance(payload, dict)
                    and not payload.get("trace_id")):
                payload["trace_id"] = header_trace
            spec = JobSpec.from_json_dict(payload)
            try:
                job, created = service.submit(spec)
            except QueueFullError as exc:
                writer.write(_response(
                    429, {"error": str(exc), "reason": exc.reason,
                          "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After":
                             f"{max(1, round(exc.retry_after_s))}"}))
                return
            payload = job.to_json_dict(include_records=False)
            payload["deduplicated"] = not created
            writer.write(_response(202 if created else 200, payload))
            return

        if path == "/v1/jobs" and method == "GET":
            tenant = request.query.get("tenant") or None
            writer.write(_response(200, {
                "jobs": [job.to_json_dict(include_records=False)
                         for job in service.list_jobs(tenant)]}))
            return

        if path.startswith("/v1/jobs/"):
            await self._route_job(request, writer)
            return

        if path == "/v1/stats" and method == "GET":
            if request.query.get("format") == "prom":
                body = to_prometheus(service.trace.metrics).encode()
                writer.write(
                    (f"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
                     f"Content-Length: {len(body)}\r\n"
                     "Connection: close\r\n\r\n").encode("latin-1")
                    + body)
                return
            writer.write(_response(200, {
                "metrics": registry_summary(service.trace.metrics),
                "counters": service.trace.counters.as_dict(),
                "queue": {"depth": service.queue.depth(),
                          "admitted": service.queue.admitted,
                          "rejected": service.queue.rejected},
                "recovery": {
                    "recovered_jobs": service.recovered_jobs,
                    "wal_write_errors": service.wal.write_errors,
                    "max_recovery_attempts":
                        service.config.max_recovery_attempts,
                },
            }))
            return

        if path == "/metrics/history" and method == "GET":
            try:
                since = int(request.query.get("since", "0") or "0")
                raw_limit = request.query.get("limit")
                limit = int(raw_limit) if raw_limit else None
            except ValueError:
                raise _BadRequest(
                    "since/limit must be integers") from None
            writer.write(_response(200, {
                "samples": service.history.samples(
                    since_seq=since or None, limit=limit),
                "next_seq": service.history.next_seq(),
                "evicted": service.history.evicted,
                "interval_s": service.config.history_interval_s,
                "capacity": service.config.history_capacity,
            }))
            return

        if path == "/v1/store" and method == "GET":
            writer.write(_response(
                200, service.store.stats().to_json_dict()))
            return

        if path == "/v1/store/prune" and method == "POST":
            writer.write(_response(
                200, service.prune_store().to_json_dict()))
            return

        if path == "/v1/shutdown" and method == "POST":
            writer.write(_response(200, {"ok": True,
                                         "stopping": True}))
            await writer.drain()
            self._initiate_stop(False)
            return

        writer.write(_response(404, {
            "error": f"no route for {method} {path}"}))

    async def _route_job(self, request: _Request,
                         writer: asyncio.StreamWriter) -> None:
        service = self.service
        parts = request.path.split("/")  # '', 'v1', 'jobs', id[, sub]
        job_id = parts[3] if len(parts) > 3 else ""
        sub = parts[4] if len(parts) > 4 else None
        job = service.job(job_id)
        if job is None:
            writer.write(_response(
                404, {"error": f"unknown job {job_id!r}"}))
            return

        if sub is None and request.method == "GET":
            writer.write(_response(200, job.to_json_dict()))
            return

        if sub == "events" and request.method == "GET":
            try:
                since = int(request.query.get("since", "0") or "0")
            except ValueError:
                raise _BadRequest("since must be an integer") from None
            await self._stream_events(
                job, writer,
                follow=request.query.get("follow") in ("1", "true"),
                since=since)
            return

        if sub == "result" and request.method == "GET":
            if not job.terminal:
                writer.write(_response(409, {
                    "error": f"job is {job.state}; results are "
                             "available once it finishes"}))
                return
            writer.write(_response(200, {
                "id": job.id, "state": job.state, "error": job.error,
                "interrupted": job.interrupted,
                "results": job.results, "metrics": job.metrics}))
            return

        if sub == "cancel" and request.method == "POST":
            ok, reason = service.cancel(job.id)
            writer.write(_response(
                200 if ok else 409,
                {"id": job.id, "cancelled": ok, "reason": reason}))
            return

        if sub == "profile" and request.method == "GET":
            text = job.profile_text
            if text is None:
                try:
                    text = service._profile_path(job.id).read_text(
                        encoding="utf-8")
                except OSError:
                    text = None
            if text is None:
                writer.write(_response(404, {
                    "error": (f"job {job.id} has no profile; submit "
                              "with profile=true and wait for it to "
                              "finish")}))
                return
            body = text.encode("utf-8")
            writer.write(
                (f"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 "Connection: close\r\n\r\n").encode("latin-1")
                + body)
            return

        writer.write(_response(405, {
            "error": f"no route for {request.method} {request.path}"}))

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter,
                             follow: bool, since: int = 0) -> None:
        """Stream events as JSONL, optionally skipping ``seq < since``.

        ``since`` is what lets a reconnecting follower resume where its
        dropped connection left off instead of re-reading (and
        re-yielding) the whole history.
        """
        writer.write(_stream_head())
        sent = max(0, since)
        while True:
            with job.lock:
                fresh = [event for event in job.events
                         if event["seq"] >= sent]
            for event in fresh:
                writer.write(
                    (json.dumps(json_safe(event), sort_keys=True)
                     + "\n").encode("utf-8"))
            if fresh:
                sent = fresh[-1]["seq"] + 1
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not follow or job.terminal:
                return
            await asyncio.sleep(0.05)


async def _serve(config: ServiceConfig,
                 announce=print) -> ExperimentService:
    service = ExperimentService(config)
    server = ServiceServer(service)
    await server.start()
    announce(f"repro service listening on "
             f"http://{config.host}:{server.port}")
    await server.serve_forever()
    return service


def run_service(config: ServiceConfig, announce=print) -> bool:
    """Run the daemon until shutdown; True when a signal stopped it."""
    service = asyncio.run(_serve(config, announce))
    return service.signalled
