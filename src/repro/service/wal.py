"""Write-ahead job journal: durable job state for the daemon.

Before this module existed, every job's state lived only in the
daemon's memory: a crash or SIGKILL silently lost every queued and
running job.  :class:`JobWAL` is the fix -- an append-only JSONL
journal in the service state directory
(``<cache_dir>/service/wal.jsonl``) that records every submission and
every state transition **before** the daemon acknowledges it, each
append flushed and fsync'd so an acknowledged job survives the
process.

Record schema (one JSON object per line)::

    {"op": "submit", "job": "j-00042-000001", "ts": 1754380800.1,
     "spec": {"experiments": [...], "tenant": "alice", ...}}
    {"op": "state", "job": "j-00042-000001", "state": "running",
     "ts": 1754380800.4, "reason": null, "recovery_attempts": 0}

Recovery mirrors the engine's run journal: :meth:`JobWAL.replay`
parses what it can and skips torn or interleaved lines (a writer
killed mid-append costs that one line, never the journal), returning
per-job :class:`WalEntry` state in original arrival order.  The daemon
uses it on startup to rebuild the job table: still-queued jobs are
re-admitted in priority/arrival order, jobs that were ``running`` when
the process died are *orphans* and are requeued with a bounded
``recovery_attempts`` counter, and terminal jobs become state-only
stubs (their in-memory results are gone, their outcome is not).

:meth:`JobWAL.compact` atomically rewrites the journal down to the
live set (plus a bounded tail of terminal stubs) so the WAL does not
grow without bound across restarts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs import add_counter, wall_now
from repro.service.jobs import JOB_QUEUED, JOB_STATES, JobSpec, TERMINAL_STATES

#: WAL record operations.
OP_SUBMIT = "submit"
OP_STATE = "state"

#: Default file name under the service state directory.
WAL_FILENAME = "wal.jsonl"


@dataclass
class WalEntry:
    """One job's state as reconstructed from the journal."""

    job_id: str
    spec: JobSpec
    submitted_at: float
    state: str = JOB_QUEUED
    reason: str | None = None
    error: str | None = None
    recovery_attempts: int = 0
    #: Arrival index from the submit record's position in the journal;
    #: recovery re-admits queued jobs in this order within a priority.
    arrival: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def orphaned(self) -> bool:
        """The job was mid-run when the writing process died."""
        return self.state == "running"


@dataclass
class ReplayReport:
    """What one :meth:`JobWAL.replay` pass reconstructed."""

    entries: dict[str, WalEntry] = field(default_factory=dict)
    #: Lines lost to truncation or interleaving (a torn final line from
    #: a killed writer is the expected case).
    skipped: int = 0
    #: ``state`` records naming a job with no surviving submit record.
    dangling: int = 0

    @property
    def live(self) -> list[WalEntry]:
        """Non-terminal jobs in arrival order."""
        return [entry for entry in self.entries.values()
                if not entry.terminal]

    @property
    def orphans(self) -> list[WalEntry]:
        return [entry for entry in self.entries.values()
                if entry.orphaned]


class JobWAL:
    """Append-only, fsync'd, truncation-tolerant job state journal."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        #: Appends that failed at the OS level (counted, never raised:
        #: a read-only state dir must degrade durability, not service).
        self.write_errors = 0

    # -- appends ------------------------------------------------------

    def _append(self, record: dict) -> bool:
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as stream:
                stream.write(line)
                stream.flush()
                os.fsync(stream.fileno())
        except OSError:
            self.write_errors += 1
            add_counter("wal.write_errors")
            return False
        return True

    def log_submit(self, job_id: str, spec: JobSpec,
                   submitted_at: float | None = None) -> bool:
        """Journal a submission; call **before** acknowledging it."""
        return self._append({
            "op": OP_SUBMIT,
            "job": job_id,
            "ts": wall_now() if submitted_at is None else submitted_at,
            "spec": spec.to_json_dict(),
        })

    def log_state(self, job_id: str, state: str, *,
                  reason: str | None = None,
                  error: str | None = None,
                  recovery_attempts: int = 0) -> bool:
        """Journal a state transition (queued/running/terminal)."""
        record = {
            "op": OP_STATE,
            "job": job_id,
            "ts": wall_now(),
            "state": state,
            "recovery_attempts": recovery_attempts,
        }
        if reason is not None:
            record["reason"] = reason
        if error is not None:
            record["error"] = error
        return self._append(record)

    # -- recovery -----------------------------------------------------

    def replay(self) -> ReplayReport:
        """Rebuild per-job state from the journal, tolerating tears.

        A line that does not parse as JSON, is not a dict, or carries a
        malformed spec/state is counted in ``skipped`` and dropped --
        exactly the behaviour of the engine's
        :meth:`~repro.engine.records.RunJournal.recover`.  A ``state``
        record whose submit line was lost is counted in ``dangling``.
        """
        report = ReplayReport()
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return report
        except OSError:
            return report
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("WAL record is not an object")
                self._apply(record, report)
            except (ValueError, KeyError, TypeError):
                report.skipped += 1
        return report

    @staticmethod
    def _apply(record: dict, report: ReplayReport) -> None:
        op = record["op"]
        job_id = str(record["job"])
        if op == OP_SUBMIT:
            spec = JobSpec.from_json_dict(record["spec"])
            report.entries[job_id] = WalEntry(
                job_id=job_id,
                spec=spec,
                submitted_at=float(record["ts"]),
                arrival=len(report.entries),
            )
            return
        if op == OP_STATE:
            entry = report.entries.get(job_id)
            if entry is None:
                report.dangling += 1
                return
            state = str(record["state"])
            if state not in JOB_STATES:
                raise ValueError(f"unknown WAL state {state!r}")
            entry.state = state
            entry.reason = record.get("reason")
            entry.error = record.get("error")
            entry.recovery_attempts = max(
                entry.recovery_attempts,
                int(record.get("recovery_attempts", 0)))
            return
        raise ValueError(f"unknown WAL op {op!r}")

    # -- compaction ---------------------------------------------------

    def compact(self, entries: Iterable[WalEntry], *,
                keep_terminal: int = 256) -> int:
        """Atomically rewrite the journal down to the given entries.

        Live (non-terminal) entries are always kept; terminal stubs are
        capped at the ``keep_terminal`` most recent so the WAL stays
        bounded across restarts.  Each kept entry becomes one submit
        line plus (when not freshly queued) one state line.  Returns
        the number of entries written; on any I/O error the existing
        journal is left untouched.
        """
        ordered = sorted(entries, key=lambda entry: entry.arrival)
        terminal = [entry for entry in ordered if entry.terminal]
        drop = (set(id(entry) for entry
                    in terminal[:max(0, len(terminal) - keep_terminal)])
                if keep_terminal >= 0 else set())
        lines: list[str] = []
        kept = 0
        for entry in ordered:
            if id(entry) in drop:
                continue
            lines.append(json.dumps({
                "op": OP_SUBMIT, "job": entry.job_id,
                "ts": entry.submitted_at,
                "spec": entry.spec.to_json_dict(),
            }, sort_keys=True) + "\n")
            if entry.state != JOB_QUEUED or entry.recovery_attempts:
                record = {
                    "op": OP_STATE, "job": entry.job_id,
                    "ts": wall_now(), "state": entry.state,
                    "recovery_attempts": entry.recovery_attempts,
                }
                if entry.reason is not None:
                    record["reason"] = entry.reason
                if entry.error is not None:
                    record["error"] = entry.error
                lines.append(json.dumps(record, sort_keys=True) + "\n")
            kept += 1
        tmp = self.path.parent / f".{self.path.name}.{os.getpid()}.tmp"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as stream:
                stream.writelines(lines)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, self.path)
        except OSError:
            self.write_errors += 1
            add_counter("wal.write_errors")
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return 0
        return kept
