"""Compact MOSFET models (Section 3 of the paper).

Implements the paper's Eqs. (2)-(4): the velocity-saturated drain current
``Idsat0`` (Eq. 3), the source-resistance-degraded on-current ``Ion``
(Eq. 2) and the exponential subthreshold off-current ``Ioff`` (Eq. 4),
plus the electrical-oxide-thickness correction discussed around Table 2,
per-node fitted model cards, the published-device database of Table 1, and
the dual-Vth scaling analysis of Fig. 2.
"""

from repro.devices.oxide import GateStack, GateType
from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.devices.solver import (
    fit_mobility_for_vth,
    solve_vth_for_ion,
)
from repro.devices.params import device_for_node, DEVICES_BY_NODE
from repro.devices.published import (
    PublishedDevice,
    PUBLISHED_DEVICES,
    ITRS_TABLE1_ROWS,
    table1_rows,
)
from repro.devices.dual_vth import (
    DualVthPoint,
    dual_vth_scaling,
    ioff_penalty_for_ion_gain,
    ion_gain_for_vth_reduction,
    soi_vth_relief,
)

__all__ = [
    "GateStack",
    "GateType",
    "DeviceParams",
    "MosfetModel",
    "fit_mobility_for_vth",
    "solve_vth_for_ion",
    "device_for_node",
    "DEVICES_BY_NODE",
    "PublishedDevice",
    "PUBLISHED_DEVICES",
    "ITRS_TABLE1_ROWS",
    "table1_rows",
    "DualVthPoint",
    "dual_vth_scaling",
    "ioff_penalty_for_ion_gain",
    "ion_gain_for_vth_reduction",
    "soi_vth_relief",
]
