"""Table 1: recent published NMOS device results vs ITRS projections.

The paper surveys six advanced-CMOS publications (IEDM/VLSI 1995-2000) and
compares their Ion/Ioff/Vdd/Tox against the ITRS targets for the 100, 70
and 50 nm nodes.  Its key observation: excellent Ion/Ioff ratios exist,
but *no sub-1 V technology* comes close to ITRS expectations -- e.g. the
70 nm-class devices of [26, 28] need Vdd = 1.2 V rather than the 0.9 V the
roadmap assumes, a (1.2/0.9)^2 - 1 = 78 % dynamic-power penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class PublishedDevice:
    """One row of the paper's Table 1."""

    #: Citation key as used by the paper, e.g. "[24]".
    ref: str
    #: First author / venue, for readability.
    label: str
    #: ITRS node class the paper assigns [nm] (lower bound of a range).
    node_nm: int
    #: Gate oxide thickness [Angstrom].
    tox_a: float
    #: True when the quoted Tox is electrical rather than physical.
    tox_is_electrical: bool
    #: Supply voltage [V].
    vdd_v: float
    #: NMOS drive current [uA/um].
    ion_ua_um: float
    #: NMOS off current [nA/um].
    ioff_na_um: float

    def __post_init__(self) -> None:
        if min(self.tox_a, self.vdd_v, self.ion_ua_um, self.ioff_na_um) <= 0:
            raise ModelParameterError(
                f"published device {self.ref} has non-positive entries"
            )

    @property
    def on_off_ratio(self) -> float:
        """Ion/Ioff (dimensionless)."""
        return self.ion_ua_um * 1e3 / self.ioff_na_um

    @property
    def is_sub_1v(self) -> bool:
        """True for supply voltages below 1 V."""
        return self.vdd_v < 1.0


#: The six published devices of Table 1, transcribed from the paper.
PUBLISHED_DEVICES: tuple[PublishedDevice, ...] = (
    PublishedDevice(ref="[24]", label="Chau, IEDM 2000 (30 nm Lgate)",
                    node_nm=50, tox_a=18.0, tox_is_electrical=True,
                    vdd_v=0.85, ion_ua_um=514.0, ioff_na_um=100.0),
    PublishedDevice(ref="[25]", label="Song, IEDM 2000",
                    node_nm=100, tox_a=21.0, tox_is_electrical=False,
                    vdd_v=1.2, ion_ua_um=860.0, ioff_na_um=10.0),
    PublishedDevice(ref="[26]", label="Wakabayashi, IEDM 2000 (45 nm)",
                    node_nm=70, tox_a=25.0, tox_is_electrical=False,
                    vdd_v=1.2, ion_ua_um=697.0, ioff_na_um=10.0),
    PublishedDevice(ref="[27]", label="Mehrotra, IEDM 1999",
                    node_nm=100, tox_a=27.0, tox_is_electrical=False,
                    vdd_v=1.2, ion_ua_um=800.0, ioff_na_um=10.0),
    PublishedDevice(ref="[28]", label="Yang, IEDM 1999 (sub-60 nm SOI)",
                    node_nm=70, tox_a=32.0, tox_is_electrical=False,
                    vdd_v=1.2, ion_ua_um=650.0, ioff_na_um=3.0),
    PublishedDevice(ref="[29]", label="Ono, VLSI 2000 (70 nm Lgate)",
                    node_nm=100, tox_a=13.0, tox_is_electrical=False,
                    vdd_v=1.0, ion_ua_um=723.0, ioff_na_um=16.0),
)


@dataclass(frozen=True)
class ItrsTable1Row:
    """An ITRS comparison row of Table 1."""

    node_nm: int
    tox_min_a: float
    tox_max_a: float
    vdd_v: float
    ion_ua_um: float
    ioff_na_um: float

    @property
    def tox_mid_a(self) -> float:
        """Midpoint of the quoted physical-Tox range [Angstrom]."""
        return 0.5 * (self.tox_min_a + self.tox_max_a)


#: The three ITRS rows of Table 1 (physical Tox ranges), as printed.
ITRS_TABLE1_ROWS: tuple[ItrsTable1Row, ...] = (
    ItrsTable1Row(node_nm=100, tox_min_a=12.0, tox_max_a=15.0,
                  vdd_v=1.2, ion_ua_um=750.0, ioff_na_um=13.0),
    ItrsTable1Row(node_nm=70, tox_min_a=8.0, tox_max_a=12.0,
                  vdd_v=0.9, ion_ua_um=750.0, ioff_na_um=40.0),
    ItrsTable1Row(node_nm=50, tox_min_a=6.0, tox_max_a=8.0,
                  vdd_v=0.6, ion_ua_um=750.0, ioff_na_um=80.0),
)


def table1_rows() -> list[dict[str, object]]:
    """Return Table 1 as a list of dictionaries (published + ITRS rows)."""
    rows: list[dict[str, object]] = []
    for device in PUBLISHED_DEVICES:
        rows.append({
            "ref": device.ref,
            "node_nm": device.node_nm,
            "tox_a": device.tox_a,
            "tox_kind": ("electrical" if device.tox_is_electrical
                         else "physical"),
            "vdd_v": device.vdd_v,
            "ion_ua_um": device.ion_ua_um,
            "ioff_na_um": device.ioff_na_um,
        })
    for itrs in ITRS_TABLE1_ROWS:
        rows.append({
            "ref": "ITRS",
            "node_nm": itrs.node_nm,
            "tox_a": itrs.tox_mid_a,
            "tox_kind": "physical",
            "vdd_v": itrs.vdd_v,
            "ion_ua_um": itrs.ion_ua_um,
            "ioff_na_um": itrs.ioff_na_um,
        })
    return rows


def sub_1v_gap_summary() -> dict[str, float]:
    """Quantify the paper's headline Table 1 observation.

    Returns the count of sub-1 V published devices meeting the ITRS
    (Ion >= 750 uA/um at their node's target Ioff) and the dynamic-power
    penalty of running a 70 nm-class design at the published 1.2 V instead
    of the projected 0.9 V.
    """
    sub_1v_meeting_itrs = sum(
        1 for device in PUBLISHED_DEVICES
        if device.is_sub_1v and device.ion_ua_um >= 750.0
    )
    penalty = (1.2 / 0.9) ** 2 - 1.0
    return {
        "sub_1v_devices_meeting_itrs_ion": float(sub_1v_meeting_itrs),
        "dynamic_power_penalty_at_1v2": penalty,
    }
