"""Per-node fitted device model cards.

The paper's Table 2 solves Vth at each node so that Ion = 750 uA/um, using
Eqs. (2)-(3) with parameters from the ITRS and from [32].  The effective
mobility is not published, so we recover it per node (see
``scripts/calibrate_devices.py``): ``mu_eff_cm2`` is fitted so that the
solved Vth reproduces the paper's Table 2 threshold row

    180 nm: 0.30 V   130 nm: 0.29 V   100 nm: 0.22 V
     70 nm: 0.14 V    50 nm: 0.04 V    35 nm: 0.11 V

with the node's nominal Vdd, physical Tox from the roadmap, a poly gate,
vsat = 1.0e5 m/s, and ITRS-style source resistances.  Everything else in
Table 2 (the Ioff rows, the metal-gate variant, the 0.7 V alternative at
50 nm) then follows from the model without further tuning.

The fitted mobilities land in the physically sensible 170-340 cm^2/Vs
band (the 50 nm value is highest because its unusually low 0.04 V
threshold leaves very little overdrive at Vdd = 0.6 V, so meeting
750 uA/um demands a strong channel).
"""

from __future__ import annotations

from repro.devices.mosfet import DeviceParams
from repro.devices.oxide import GateStack
from repro.errors import UnknownNodeError
from repro.itrs import ITRS_2000

#: Saturation velocity used for every node [m/s].
VSAT_M_S = 1.0e5

#: Parasitic source resistance per node [ohm*um] (ITRS-style targets).
RS_BY_NODE_OHM_UM: dict[int, float] = {
    180: 250.0,
    130: 230.0,
    100: 200.0,
    70: 180.0,
    50: 160.0,
    35: 140.0,
}

#: Paper Table 2 threshold row [V] -- the calibration target.
PAPER_VTH_BY_NODE_V: dict[int, float] = {
    180: 0.30,
    130: 0.29,
    100: 0.22,
    70: 0.14,
    50: 0.04,
    35: 0.11,
}

#: Fitted effective mobilities [cm^2/Vs]; output of
#: ``scripts/calibrate_devices.py`` (do not edit by hand).
FITTED_MU_EFF_CM2: dict[int, float] = {
    180: 198.7,
    130: 177.2,
    100: 183.5,
    70: 211.0,
    50: 330.6,
    35: 243.6,
}


def _build_device(node_nm: int) -> DeviceParams:
    record = ITRS_2000.node(node_nm)
    return DeviceParams(
        node_nm=node_nm,
        vdd_v=record.vdd_v,
        leff_nm=record.leff_nm,
        gate_stack=GateStack(tox_physical_a=record.tox_physical_a),
        mu_eff_cm2=FITTED_MU_EFF_CM2[node_nm],
        vsat_m_s=VSAT_M_S,
        rs_ohm_um=RS_BY_NODE_OHM_UM[node_nm],
        vth_v=PAPER_VTH_BY_NODE_V[node_nm],
    )


#: Calibrated NMOS model cards per node.
DEVICES_BY_NODE: dict[int, DeviceParams] = {
    node_nm: _build_device(node_nm) for node_nm in FITTED_MU_EFF_CM2
}


def device_for_node(node_nm: int) -> DeviceParams:
    """Return the calibrated NMOS model card for a roadmap node."""
    try:
        return DEVICES_BY_NODE[node_nm]
    except KeyError as exc:
        raise UnknownNodeError(
            f"no calibrated device for {node_nm} nm; available: "
            f"{sorted(DEVICES_BY_NODE)}"
        ) from exc
