"""Root-finding utilities for the compact device model.

Two inversions are needed to reproduce Table 2:

* ``solve_vth_for_ion``: the paper sets "the Vth for each technology ...
  to meet 750 uA/um for Ion".  Ion (Eq. 2) is monotonically decreasing in
  Vth, so this is a bracketed scalar root find.
* ``fit_mobility_for_vth``: the paper does not publish per-node effective
  mobilities; we recover them by requiring that the solved Vth equal the
  paper's Table 2 value (run offline; results frozen in
  :mod:`repro.devices.params`).
"""

from __future__ import annotations

from repro.devices.mosfet import DeviceParams, MosfetModel
from repro.errors import CalibrationError
from repro.obs import span
from repro.reliability.guard import guarded_solve

#: Lowest threshold voltage the solver will consider [V].  Slightly
#: negative thresholds are physical for aggressive low-Vth devices.
VTH_SEARCH_MIN_V = -0.3


def solve_vth_for_ion(params: DeviceParams, ion_target_ua_um: float,
                      vdd_v: float | None = None, *,
                      xtol: float = 1e-6,
                      max_iter: int = 100) -> float:
    """Return the Vth at which Ion(Vth) equals ``ion_target_ua_um``.

    Raises :class:`CalibrationError` if the target is unreachable even at
    the lowest admissible threshold (i.e. the device is too weak), or --
    with full iteration diagnostics -- if the guarded root find fails to
    converge within ``max_iter`` iterations at tolerance ``xtol``.
    """
    if ion_target_ua_um <= 0:
        raise CalibrationError("Ion target must be positive")
    vdd = params.vdd_v if vdd_v is None else vdd_v
    model = MosfetModel(params)
    vth_max = vdd - 1e-3

    def residual(vth_v: float) -> float:
        return model.ion_ua_um(vdd_v=vdd, vth_v=vth_v) - ion_target_ua_um

    if residual(VTH_SEARCH_MIN_V) < 0:
        best = model.ion_ua_um(vdd_v=vdd, vth_v=VTH_SEARCH_MIN_V)
        raise CalibrationError(
            f"device at node {params.node_nm} nm cannot reach "
            f"{ion_target_ua_um} uA/um at Vdd = {vdd} V; best achievable is "
            f"{best:.0f} uA/um at Vth = {VTH_SEARCH_MIN_V} V"
        )
    if residual(vth_max) > 0:
        raise CalibrationError(
            f"Ion target {ion_target_ua_um} uA/um met even with zero "
            f"overdrive at node {params.node_nm} nm; target is too low"
        )
    with span("device.vth_for_ion", node_nm=params.node_nm):
        return guarded_solve(
            residual, VTH_SEARCH_MIN_V, vth_max,
            name=f"vth-for-ion@{params.node_nm}nm",
            xtol=xtol, max_iter=max_iter).root


def fit_mobility_for_vth(params: DeviceParams, vth_target_v: float,
                         ion_target_ua_um: float,
                         mu_min_cm2: float = 30.0,
                         mu_max_cm2: float = 1500.0, *,
                         xtol: float = 1e-3,
                         max_iter: int = 100) -> float:
    """Return the mobility at which Ion(vth_target) equals the target.

    Used offline to build the model cards in :mod:`repro.devices.params`.
    Ion is monotonically increasing in mobility (velocity saturation makes
    the dependence sub-linear but never non-monotonic), so a bracketed
    root find applies.
    """

    def residual(mu_cm2: float) -> float:
        model = MosfetModel(params.with_mobility(mu_cm2))
        return model.ion_ua_um(vth_v=vth_target_v) - ion_target_ua_um

    low, high = residual(mu_min_cm2), residual(mu_max_cm2)
    if low > 0:
        raise CalibrationError(
            f"even mu = {mu_min_cm2} cm^2/Vs overshoots the Ion target at "
            f"node {params.node_nm} nm (residual {low:+.0f} uA/um)"
        )
    if high < 0:
        raise CalibrationError(
            f"mu = {mu_max_cm2} cm^2/Vs cannot reach the Ion target at "
            f"node {params.node_nm} nm (residual {high:+.0f} uA/um); "
            f"Rs or vsat is too restrictive"
        )
    with span("device.fit_mobility", node_nm=params.node_nm):
        return guarded_solve(
            residual, mu_min_cm2, mu_max_cm2,
            name=f"mobility-for-vth@{params.node_nm}nm",
            xtol=xtol, max_iter=max_iter).root
