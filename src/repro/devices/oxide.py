"""Gate-stack model: physical vs electrical oxide thickness.

Table 2 of the paper stresses that the *electrical* oxide thickness -- the
physical dielectric plus the finite inversion-layer thickness plus
poly-gate depletion (GDE) -- is what sets the gate capacitance seen by the
channel.  The paper quotes a net effect of ~0.7 nm (7 Angstrom) for a
conventional poly-gate stack and shows that a metal gate (which removes
the depletion component but not inversion-layer quantization) cuts Ioff by
78 % at 35 nm by allowing a 55 mV higher Vth at constant Ion.

We split the 7 Angstrom into a 4.5 A inversion-layer component and a
2.5 A gate-depletion component; the split is a calibration choice (the
paper quotes only the 7 A total) tuned so the 35 nm metal-gate row of
Table 2 reproduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro import units
from repro.errors import ModelParameterError

#: Electrical thickening from inversion-layer quantization [Angstrom].
INVERSION_LAYER_A = 4.5

#: Electrical thickening from poly-gate depletion [Angstrom].
GATE_DEPLETION_A = 2.5


class GateType(enum.Enum):
    """Gate electrode technology."""

    #: Conventional n+/p+ polysilicon gate: suffers gate depletion.
    POLY = "poly"
    #: Metal gate: no depletion; inversion-layer thickness remains.
    METAL = "metal"


@dataclass(frozen=True)
class GateStack:
    """A gate dielectric stack.

    Parameters
    ----------
    tox_physical_a:
        Physical (equivalent SiO2) oxide thickness [Angstrom].
    gate_type:
        Poly or metal gate electrode.
    """

    tox_physical_a: float
    gate_type: GateType = GateType.POLY

    def __post_init__(self) -> None:
        if self.tox_physical_a <= 0:
            raise ModelParameterError(
                f"physical oxide thickness must be positive, "
                f"got {self.tox_physical_a} A"
            )

    @property
    def tox_electrical_a(self) -> float:
        """Electrical oxide thickness [Angstrom].

        Physical thickness plus inversion-layer quantization, plus gate
        depletion for poly gates only.
        """
        thickness = self.tox_physical_a + INVERSION_LAYER_A
        if self.gate_type is GateType.POLY:
            thickness += GATE_DEPLETION_A
        return thickness

    @property
    def cox_physical(self) -> float:
        """Capacitance of the physical dielectric alone [F/m^2]."""
        return units.EPSILON_OX / units.angstrom(self.tox_physical_a)

    @property
    def coxe(self) -> float:
        """Electrical gate capacitance per unit area [F/m^2].

        This is the ``Coxe`` of Eq. (3).
        """
        return units.EPSILON_OX / units.angstrom(self.tox_electrical_a)

    def with_metal_gate(self) -> "GateStack":
        """Return the same stack with a metal (depletion-free) gate."""
        return replace(self, gate_type=GateType.METAL)

    def with_poly_gate(self) -> "GateStack":
        """Return the same stack with a conventional poly gate."""
        return replace(self, gate_type=GateType.POLY)
