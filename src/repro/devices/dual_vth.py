"""Dual-Vth device-pair scaling analysis (Fig. 2 of the paper).

Section 3.2.2 considers two NMOS devices in the same technology with
thresholds offset by 100 mV.  The high-Vth device meets the 750 uA/um Ion
target; the figure tracks, across the roadmap:

* the Ion *increase* of the low-Vth device (left axis) -- which grows with
  scaling because sub-1 V overdrives make Ion very sensitive to Vth;
* the Ioff increase required for a fixed +20 % Ion gain (right axis) --
  which shrinks with scaling (the paper quotes 54x "today" falling to 7x
  at 35 nm), demonstrating that dual-Vth leakage control is "inherently
  scalable";
* the constant ~15x Ioff cost of a fixed 100 mV Vth reduction
  (10^(100/85) with the paper's 85 mV/decade swing).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.devices.mosfet import MosfetModel, SUBTHRESHOLD_SWING_300K_MV
from repro.devices.params import device_for_node
from repro.devices.solver import solve_vth_for_ion, VTH_SEARCH_MIN_V
from repro.errors import CalibrationError
from repro.itrs import ITRS_2000

#: The Vth offset considered by Fig. 2 [V].
VTH_OFFSET_V = 0.100

#: The drive-current gain considered by Fig. 2's right axis.
ION_GAIN_TARGET = 0.20


def ioff_ratio_for_vth_reduction(delta_vth_v: float) -> float:
    """Ioff multiplier for lowering Vth by ``delta_vth_v`` (Eq. 4).

    Independent of node: 10^(delta/swing).  For 100 mV this is the ~15x
    the paper quotes.
    """
    return 10.0 ** (delta_vth_v / (SUBTHRESHOLD_SWING_300K_MV * 1e-3))


def ion_gain_for_vth_reduction(node_nm: int,
                               delta_vth_v: float = VTH_OFFSET_V) -> float:
    """Fractional Ion increase when Vth drops by ``delta_vth_v``.

    The high-Vth reference is solved to meet the node's Ion target.
    """
    params = device_for_node(node_nm)
    target = ITRS_2000.node(node_nm).ion_target_ua_um
    vth_high = solve_vth_for_ion(params, target)
    model = MosfetModel(params)
    ion_high = model.ion_ua_um(vth_v=vth_high)
    ion_low = model.ion_ua_um(vth_v=vth_high - delta_vth_v)
    return ion_low / ion_high - 1.0


def vth_reduction_for_ion_gain(node_nm: int,
                               gain: float = ION_GAIN_TARGET) -> float:
    """Vth reduction [V] needed for a fractional Ion ``gain``."""
    if gain <= 0:
        raise CalibrationError("Ion gain must be positive")
    params = device_for_node(node_nm)
    target = ITRS_2000.node(node_nm).ion_target_ua_um
    vth_high = solve_vth_for_ion(params, target)
    model = MosfetModel(params)
    ion_goal = model.ion_ua_um(vth_v=vth_high) * (1.0 + gain)

    def residual(delta: float) -> float:
        return model.ion_ua_um(vth_v=vth_high - delta) - ion_goal

    delta_max = vth_high - VTH_SEARCH_MIN_V
    if residual(delta_max) < 0:
        raise CalibrationError(
            f"+{gain:.0%} Ion is unreachable at {node_nm} nm even at "
            f"Vth = {VTH_SEARCH_MIN_V} V"
        )
    return float(brentq(residual, 0.0, delta_max, xtol=1e-6))


def ioff_penalty_for_ion_gain(node_nm: int,
                              gain: float = ION_GAIN_TARGET) -> float:
    """Ioff multiplier paid for a fractional Ion ``gain`` (Fig. 2, right)."""
    delta = vth_reduction_for_ion_gain(node_nm, gain)
    return ioff_ratio_for_vth_reduction(delta)


def soi_vth_relief(node_nm: int,
                   swing_reduction: float = 0.20) -> dict[str, float]:
    """Footnote 3: fully-depleted SOI's steeper subthreshold swing.

    "Technologies such as fully-depleted SOI may reduce this value
    [the 85 mV/decade swing] considerably (i.e. by 20%), making lower
    thresholds feasible given fixed Ioff constraints."

    With the swing scaled by ``1 - swing_reduction``, the same Ioff is
    reached at a proportionally lower Vth (Eq. 4 is exponential in
    Vth/swing), and the freed threshold headroom buys drive current.
    Returns the allowed Vth reduction and the resulting Ion gain at the
    node's operating point.
    """
    if not 0.0 < swing_reduction < 1.0:
        raise CalibrationError("swing reduction must lie in (0, 1)")
    params = device_for_node(node_nm)
    target = ITRS_2000.node(node_nm).ion_target_ua_um
    vth_bulk = solve_vth_for_ion(params, target)
    # Same Ioff at the steeper swing: Vth scales with the swing.
    vth_soi = vth_bulk * (1.0 - swing_reduction)
    model = MosfetModel(params)
    ion_gain = model.ion_ua_um(vth_v=vth_soi) \
        / model.ion_ua_um(vth_v=vth_bulk) - 1.0
    return {
        "node_nm": float(node_nm),
        "vth_bulk_v": vth_bulk,
        "vth_soi_v": vth_soi,
        "vth_relief_mv": (vth_bulk - vth_soi) * 1e3,
        "ion_gain": ion_gain,
    }


@dataclass(frozen=True)
class DualVthPoint:
    """One node's Fig. 2 data."""

    node_nm: int
    #: Ion increase for a 100 mV Vth reduction [%].
    ion_gain_pct: float
    #: Ioff multiplier for a +20 % Ion gain.
    ioff_penalty_for_20pct: float
    #: Ioff multiplier for the fixed 100 mV reduction (constant ~15x).
    ioff_ratio_100mv: float


def dual_vth_scaling(nodes_nm: tuple[int, ...] | None = None
                     ) -> list[DualVthPoint]:
    """Compute Fig. 2 across the roadmap."""
    if nodes_nm is None:
        nodes_nm = ITRS_2000.node_sizes
    points = []
    for node_nm in nodes_nm:
        points.append(DualVthPoint(
            node_nm=node_nm,
            ion_gain_pct=100.0 * ion_gain_for_vth_reduction(node_nm),
            ioff_penalty_for_20pct=ioff_penalty_for_ion_gain(node_nm),
            ioff_ratio_100mv=ioff_ratio_for_vth_reduction(VTH_OFFSET_V),
        ))
    return points
