"""Compact MOSFET I-V model: Eqs. (2)-(4) of the paper.

The paper's static-power analysis (Table 2, Figs. 1-4) is driven by three
compact expressions from Chen & Hu [32] and Hu [33]:

* Eq. (3) -- the velocity-saturated intrinsic saturation current::

      Idsat0 = (W mu_eff Coxe / 2 Leff) (Vdd - Vth)^2
               / (1 + (Vdd - Vth) / (Esat Leff))

* Eq. (2) -- Ion degraded by parasitic source resistance Rs::

      Ion = Idsat0 / (1 + 2 Idsat0 Rs / (Vdd - Vth)
                        - Idsat0 Rs / (Vdd - Vth + Esat Leff))

* Eq. (4) -- exponential subthreshold leakage with an assumed 85 mV/decade
  swing at room temperature::

      Ioff = 10 uA/um * 10^(-Vth / 85 mV)

We extend Eq. (4) with two standard effects the paper invokes
qualitatively but does not write out:

* **DIBL**: Section 3.3 states that "static power decays roughly
  quadratically with Vdd reductions (given a fixed Vth) due to shrinking
  Ioff and a smaller Vdd value".  At fixed Vth the only mechanism that
  shrinks Ioff when Vdd drops is drain-induced barrier lowering; a DIBL
  coefficient of ~0.1 V/V reproduces the quoted quadratic decay and the
  Fig. 3/4 headline numbers.
* **Temperature**: Fig. 1 is evaluated at 85 C.  The swing scales as
  kT/q and the threshold drops with temperature at ~0.7 mV/K, both
  textbook behaviours.

All currents are per unit transistor width, expressed in uA/um (equal to
A/m), matching the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.devices.oxide import GateStack
from repro.errors import ModelParameterError

#: Subthreshold swing assumed by the paper at room temperature [mV/decade].
SUBTHRESHOLD_SWING_300K_MV = 85.0

#: Prefactor of Eq. (4) [uA/um]: leakage at Vth = 0.
IOFF_PREFACTOR_UA_UM = 10.0

#: Default DIBL coefficient [V/V] (see module docstring; fitted within
#: the physical 0.05-0.15 V/V range to the Fig. 3 headline points).
DEFAULT_DIBL_V_PER_V = 0.12

#: Threshold-voltage temperature coefficient [V/K] (Vth falls as T rises).
#: Physical values span ~0.4-1 mV/K; the low end is used, fitted jointly
#: with the Fig. 1 / Fig. 4 operating points (see DESIGN.md section 5).
VTH_TEMPERATURE_COEFF_V_PER_K = 0.4e-3

#: Minimum gate overdrive accepted by the saturation-current expressions [V].
_MIN_OVERDRIVE_V = 1e-4


@dataclass(frozen=True)
class DeviceParams:
    """Physical parameters of one NMOS technology (a "model card").

    ``mu_eff_cm2`` is the only per-node fitted parameter (the paper does
    not publish mobilities); everything else is either quoted by the paper
    or a fixed physical constant.  See :mod:`repro.devices.params`.
    """

    #: Label, e.g. the technology node in nm.
    node_nm: int
    #: Nominal supply voltage [V].
    vdd_v: float
    #: Effective channel length [nm].
    leff_nm: float
    #: Gate stack (physical thickness + electrode type).
    gate_stack: GateStack
    #: Effective channel mobility [cm^2/Vs] (fitted).
    mu_eff_cm2: float
    #: Saturation velocity [m/s].
    vsat_m_s: float
    #: Parasitic source resistance [ohm*um], per the ITRS.
    rs_ohm_um: float
    #: Threshold voltage at nominal Vdd, room temperature [V].
    vth_v: float
    #: DIBL coefficient [V per V of drain bias].
    dibl_v_per_v: float = DEFAULT_DIBL_V_PER_V

    def __post_init__(self) -> None:
        for name in ("vdd_v", "leff_nm", "mu_eff_cm2", "vsat_m_s"):
            if getattr(self, name) <= 0:
                raise ModelParameterError(
                    f"DeviceParams.{name} must be positive, "
                    f"got {getattr(self, name)!r}"
                )
        if self.rs_ohm_um < 0:
            raise ModelParameterError("source resistance cannot be negative")
        if self.dibl_v_per_v < 0:
            raise ModelParameterError("DIBL coefficient cannot be negative")
        if self.vth_v >= self.vdd_v:
            raise ModelParameterError(
                f"Vth {self.vth_v} V leaves no overdrive at Vdd {self.vdd_v} V"
            )

    def with_vth(self, vth_v: float) -> "DeviceParams":
        """Return a copy with a different threshold voltage."""
        return replace(self, vth_v=vth_v)

    def with_gate_stack(self, gate_stack: GateStack) -> "DeviceParams":
        """Return a copy with a different gate stack."""
        return replace(self, gate_stack=gate_stack)

    def with_mobility(self, mu_eff_cm2: float) -> "DeviceParams":
        """Return a copy with a different effective mobility."""
        return replace(self, mu_eff_cm2=mu_eff_cm2)


class MosfetModel:
    """Evaluates Eqs. (2)-(4) for a :class:`DeviceParams` card."""

    def __init__(self, params: DeviceParams):
        self.params = params

    # --- geometry / derived constants ------------------------------------

    @property
    def esat_v_per_m(self) -> float:
        """Lateral field that saturates carrier velocity [V/m].

        Standard velocity-saturation relation Esat = 2 vsat / mu_eff.
        """
        mu_si = units.cm2_per_vs(self.params.mu_eff_cm2)
        return 2.0 * self.params.vsat_m_s / mu_si

    @property
    def esat_leff_v(self) -> float:
        """The Esat * Leff product of Eqs. (2)-(3) [V]."""
        return self.esat_v_per_m * units.nm(self.params.leff_nm)

    # --- Eq. (3): intrinsic saturation current ----------------------------

    def idsat0_ua_um(self, vdd_v: float | None = None,
                     vth_v: float | None = None) -> float:
        """Intrinsic saturation current per Eq. (3) [uA/um]."""
        vdd = self.params.vdd_v if vdd_v is None else vdd_v
        vth = self.params.vth_v if vth_v is None else vth_v
        overdrive = vdd - vth
        if overdrive < _MIN_OVERDRIVE_V:
            return 0.0
        mu_si = units.cm2_per_vs(self.params.mu_eff_cm2)
        coxe = self.params.gate_stack.coxe
        leff = units.nm(self.params.leff_nm)
        width = 1e-6  # per micron of width
        prefactor = width * mu_si * coxe / (2.0 * leff)
        current_a = (prefactor * overdrive ** 2
                     / (1.0 + overdrive / self.esat_leff_v))
        return current_a * 1e6  # A per um of width -> uA/um

    # --- Eq. (2): Ion with source resistance ------------------------------

    def ion_ua_um(self, vdd_v: float | None = None,
                  vth_v: float | None = None) -> float:
        """On-current per Eq. (2) [uA/um]."""
        vdd = self.params.vdd_v if vdd_v is None else vdd_v
        vth = self.params.vth_v if vth_v is None else vth_v
        overdrive = vdd - vth
        if overdrive < _MIN_OVERDRIVE_V:
            return 0.0
        idsat0_ua = self.idsat0_ua_um(vdd, vth)
        # Rs is in ohm*um; current is per-um, so (uA/um)*(ohm*um) = uV.
        ir_drop_v = idsat0_ua * self.params.rs_ohm_um * 1e-6
        divisor = (1.0
                   + 2.0 * ir_drop_v / overdrive
                   - ir_drop_v / (overdrive + self.esat_leff_v))
        if divisor <= 0:
            raise ModelParameterError(
                f"source-resistance correction diverged (divisor {divisor}); "
                f"Rs = {self.params.rs_ohm_um} ohm*um is unphysically large"
            )
        return idsat0_ua / divisor

    # --- Eq. (4): subthreshold leakage -------------------------------------

    def subthreshold_swing_mv(self, temperature_k: float = 300.0) -> float:
        """Subthreshold swing at the given temperature [mV/decade].

        85 mV/decade at 300 K (the paper's assumption), scaling linearly
        with absolute temperature as kT/q does.
        """
        if temperature_k <= 0:
            raise ModelParameterError("temperature must be positive")
        return SUBTHRESHOLD_SWING_300K_MV * temperature_k / 300.0

    def ioff_na_um(self, vdd_v: float | None = None,
                   vth_v: float | None = None,
                   temperature_k: float = 300.0) -> float:
        """Off-current per Eq. (4), extended with DIBL/temperature [nA/um].

        At ``vdd_v == params.vdd_v`` and 300 K this reduces exactly to the
        paper's Eq. (4): ``10 uA/um * 10^(-Vth/85 mV)``.
        """
        vdd = self.params.vdd_v if vdd_v is None else vdd_v
        vth = self.params.vth_v if vth_v is None else vth_v
        if vdd < 0:
            raise ModelParameterError("Vdd cannot be negative")
        swing_v = self.subthreshold_swing_mv(temperature_k) * 1e-3
        effective_vth = (vth
                         - self.params.dibl_v_per_v * (vdd - self.params.vdd_v)
                         - VTH_TEMPERATURE_COEFF_V_PER_K
                         * (temperature_k - 300.0))
        ioff_ua = IOFF_PREFACTOR_UA_UM * 10.0 ** (-effective_vth / swing_v)
        return ioff_ua * 1e3  # uA/um -> nA/um

    # --- convenience -------------------------------------------------------

    def static_power_w_per_um(self, vdd_v: float | None = None,
                              vth_v: float | None = None,
                              temperature_k: float = 300.0) -> float:
        """Standby power Vdd * Ioff per micron of device width [W/um]."""
        vdd = self.params.vdd_v if vdd_v is None else vdd_v
        ioff_na = self.ioff_na_um(vdd, vth_v, temperature_k)
        return vdd * ioff_na * 1e-9

    def on_off_ratio(self, vdd_v: float | None = None,
                     vth_v: float | None = None,
                     temperature_k: float = 300.0) -> float:
        """Ion / Ioff ratio (dimensionless)."""
        ion_ua = self.ion_ua_um(vdd_v, vth_v)
        ioff_ua = self.ioff_na_um(vdd_v, vth_v, temperature_k) * 1e-3
        if ioff_ua == 0:
            raise ModelParameterError("Ioff underflowed to zero")
        return ion_ua / ioff_ua
