"""Distribution-level metrics: gauges, fixed-bucket histograms, exports.

:class:`~repro.obs.counters.Counters` answers "how many"; this module
answers "how are they distributed".  A :class:`MetricsRegistry` bundles

* the flat **counters** map (shared with the owning
  :class:`~repro.obs.trace.Trace` so ``add_counter`` and registry
  increments land in one place);
* **gauges** -- last-written point-in-time values (peak RSS, settled
  junction temperature).  Merging two registries keeps the *maximum*
  per gauge, which is the meaningful fold for the peak-style gauges the
  engine ships across its worker pool;
* **histograms** -- fixed-bucket distributions with optional labels
  (``observe("engine.run_s", dt, family="table")``).  Buckets are
  cumulative-style upper bounds plus an implicit ``+Inf`` overflow
  bucket; exact ``count`` / ``sum`` / ``min`` / ``max`` ride along, and
  p50/p90/p99 are interpolated from the bucket counts.

Fork-mergeability mirrors the trace payload contract: a registry
serialises to plain dicts (:meth:`MetricsRegistry.to_payload`) that
survive a pickle/JSON trip over the worker result pipe, and the parent
folds them in with :meth:`MetricsRegistry.merge_payload`.  Histogram
merges require identical bucket bounds -- both sides must be built
from the same helper (:func:`exponential_buckets` /
:func:`linear_buckets`) -- so merged distributions stay exact.

Two text exports:

* :func:`to_prometheus` -- Prometheus text exposition format
  (``# TYPE`` lines, ``_bucket{le=...}`` / ``_sum`` / ``_count``
  series), consumable by any Prometheus scraper or ``promtool``;
* :func:`registry_summary` -- a JSON-ready dict carrying the *full*
  histogram state (bounds + counts, so a registry can be
  reconstructed) plus the derived summary statistics.

Exported float values are rounded to :data:`EXPORT_DECIMALS` decimal
places (:func:`round_metric`): counter merges are float additions whose
low bits depend on merge order, and rounding at the export boundary is
what keeps snapshots diff-stable across equivalent sweeps.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.obs.counters import Counters

#: Decimal places kept by every JSON/Prometheus export of a metric
#: value.  Nine decimals preserve nanosecond-scale durations while
#: hiding the sub-femto float-addition noise that merge order injects.
EXPORT_DECIMALS = 9

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def round_metric(value: float) -> float | int:
    """Round an exported metric value to :data:`EXPORT_DECIMALS` places.

    Integral results come back as ``int`` so JSON snapshots of pure
    event counts stay integer-typed regardless of float promotion
    during merges.
    """
    rounded = round(float(value), EXPORT_DECIMALS)
    if rounded.is_integer():
        return int(rounded)
    return rounded


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` geometric upper bounds: start, start*factor, ...

    The standard bucket ladder for quantities spanning decades
    (durations, residuals, byte sizes).
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start!r}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor!r}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    return tuple(start * factor ** i for i in range(count))


def linear_buckets(start: float, width: float,
                   count: int) -> tuple[float, ...]:
    """``count`` evenly spaced upper bounds starting at ``start``."""
    if width <= 0:
        raise ValueError(f"width must be > 0, got {width!r}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    return tuple(start + width * i for i in range(count))


#: Default ladders for the quantities the instrumentation observes.
DURATION_BUCKETS = exponential_buckets(1e-6, 4.0, 14)     # 1 us .. ~67 s
COUNT_BUCKETS = exponential_buckets(1.0, 2.0, 16)         # 1 .. 32768
RESIDUAL_BUCKETS = exponential_buckets(1e-16, 10.0, 15)   # 1e-16 .. 0.1
SIZE_BUCKETS = exponential_buckets(64.0, 4.0, 12)         # 64 B .. ~268 MB
TEMPERATURE_BUCKETS = linear_buckets(25.0, 25.0, 16)      # 25 .. 400 C


class Histogram:
    """A fixed-bucket distribution (not thread-safe on its own;
    :class:`MetricsRegistry` serialises access through its lock)."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Iterable[float] = DURATION_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} bounds)")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = (other.min if self.min is None
                        else min(self.min, other.min))
        if other.max is not None:
            self.max = (other.max if self.max is None
                        else max(self.max, other.max))

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile by intra-bucket interpolation.

        Exact ``min``/``max`` clamp the first and overflow buckets, so
        the estimate never leaves the observed range.  ``None`` when
        nothing has been observed.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        target = q * self.count
        cumulative = 0
        for i, in_bucket in enumerate(self.counts):
            cumulative += in_bucket
            if cumulative >= target and in_bucket:
                lower = self.min if i == 0 else self.bounds[i - 1]
                upper = (self.max if i == len(self.bounds)
                         else min(self.bounds[i], self.max))
                lower = max(min(lower, upper), self.min)
                fraction = (target - (cumulative - in_bucket)) / in_bucket
                return lower + fraction * (upper - lower)
        return self.max

    def to_payload(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Histogram":
        histogram = cls(payload["bounds"])
        counts = [int(n) for n in payload["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram payload has {len(counts)} counts for "
                f"{len(histogram.bounds)} bounds")
        histogram.counts = counts
        histogram.count = int(payload["count"])
        histogram.sum = float(payload["sum"])
        histogram.min = (None if payload.get("min") is None
                         else float(payload["min"]))
        histogram.max = (None if payload.get("max") is None
                         else float(payload["max"]))
        return histogram

    def summary(self) -> dict:
        """Derived statistics, rounded for diff-stable export."""
        if self.count == 0:
            return {"count": 0, "sum": 0, "mean": None, "min": None,
                    "max": None, "p50": None, "p90": None, "p99": None}
        return {
            "count": self.count,
            "sum": round_metric(self.sum),
            "mean": round_metric(self.sum / self.count),
            "min": round_metric(self.min),
            "max": round_metric(self.max),
            "p50": round_metric(self.quantile(0.50)),
            "p90": round_metric(self.quantile(0.90)),
            "p99": round_metric(self.quantile(0.99)),
        }


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe, fork-mergeable counters + gauges + histograms."""

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters if counters is not None else Counters()
        self._lock = threading.Lock()
        self._gauges: dict[str, float] = {}
        self._histograms: dict[
            tuple[str, tuple[tuple[str, str], ...]], Histogram] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Increment the registry's counter ``name`` by ``value``."""
        self.counters.add(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins within a process)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: Iterable[float] | None = None,
                **labels: Any) -> None:
        """Record ``value`` into the histogram ``name`` (+ ``labels``).

        ``buckets`` only matters on first observation of a series; the
        series keeps its original bounds afterwards.
        """
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(
                    buckets if buckets is not None else DURATION_BUCKETS)
                self._histograms[key] = histogram
            histogram.observe(value)

    # -- reading ------------------------------------------------------

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def gauges(self) -> dict[str, float]:
        """Snapshot of every gauge, sorted by name."""
        with self._lock:
            return {name: self._gauges[name]
                    for name in sorted(self._gauges)}

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        """The live histogram for a series (None when never observed)."""
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    def histograms(self) -> list[tuple[str, dict[str, str], Histogram]]:
        """``(name, labels, histogram)`` triples, sorted by series."""
        with self._lock:
            items = sorted(self._histograms.items())
        return [(name, dict(label_key), histogram)
                for (name, label_key), histogram in items]

    def __len__(self) -> int:
        with self._lock:
            return (len(self._gauges) + len(self._histograms)
                    + len(self.counters))

    # -- cross-process shipping ---------------------------------------

    def to_payload(self) -> dict:
        """Picklable/JSON-able full state (exact, unrounded)."""
        with self._lock:
            gauges = dict(self._gauges)
            histograms = [
                {"name": name, "labels": dict(label_key),
                 **histogram.to_payload()}
                for (name, label_key), histogram
                in sorted(self._histograms.items())]
        return {
            "counters": self.counters.as_dict(),
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_payload(self, payload: Mapping[str, Any] | None) -> None:
        """Fold another registry's :meth:`to_payload` snapshot in.

        Counters add, gauges keep the maximum, histograms merge
        bucket-wise (identical bounds required).
        """
        if not payload:
            return
        self.counters.merge(payload.get("counters") or {})
        with self._lock:
            for name, value in (payload.get("gauges") or {}).items():
                value = float(value)
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            for entry in payload.get("histograms") or ():
                key = (str(entry["name"]),
                       _label_key(entry.get("labels") or {}))
                incoming = Histogram.from_payload(entry)
                existing = self._histograms.get(key)
                if existing is None:
                    self._histograms[key] = incoming
                else:
                    existing.merge(incoming)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_payload(other.to_payload())


# -- exports ----------------------------------------------------------


def registry_summary(registry: MetricsRegistry) -> dict:
    """JSON-ready digest: rounded values plus full histogram state.

    Each histogram entry carries both the raw ``bounds``/``counts``
    (enough to rebuild the registry via
    :meth:`MetricsRegistry.merge_payload`) and the derived summary
    statistics the ``repro stats`` tables print.
    """
    histograms = []
    for name, labels, histogram in registry.histograms():
        entry = {"name": name, "labels": labels,
                 "bounds": list(histogram.bounds),
                 "counts": list(histogram.counts)}
        entry.update(histogram.summary())
        histograms.append(entry)
    return {
        "counters": {name: round_metric(value) for name, value
                     in registry.counters.as_dict().items()},
        "gauges": {name: round_metric(value) for name, value
                   in registry.gauges().items()},
        "histograms": histograms,
    }


def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_PROM_NAME_RE.sub('_', name)}"


def _prom_value(value: float) -> str:
    return format(round_metric(value), "g")


def _prom_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash
    first (it is the escape character), then quotes and newlines."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{_PROM_NAME_RE.sub("_", k)}="{_prom_label_value(v)}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry,
                  prefix: str = "repro") -> str:
    """Render the registry in Prometheus text exposition format.

    Counters become ``counter`` series, gauges ``gauge``, histograms
    the standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple
    with cumulative bucket counts and a ``+Inf`` bucket.  Values are
    rounded via :func:`round_metric` so output is diff-stable.
    """
    lines: list[str] = []
    for name, value in registry.counters.as_dict().items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in registry.gauges().items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    typed: set[str] = set()
    for name, labels, histogram in registry.histograms():
        metric = _prom_name(name, prefix)
        if metric not in typed:
            lines.append(f"# TYPE {metric} histogram")
            typed.add(metric)
        cumulative = 0
        for bound, bucket_count in zip(histogram.bounds,
                                       histogram.counts):
            cumulative += bucket_count
            le = _prom_labels(labels, f'le="{format(bound, "g")}"')
            lines.append(f"{metric}_bucket{le} {cumulative}")
        inf = _prom_labels(labels, 'le="+Inf"')
        lines.append(f"{metric}_bucket{inf} {histogram.count}")
        suffix = _prom_labels(labels)
        lines.append(f"{metric}_sum{suffix} "
                     f"{_prom_value(histogram.sum)}")
        lines.append(f"{metric}_count{suffix} {histogram.count}")
    return "\n".join(lines) + "\n"


def validate_metrics_payload(payload: Any) -> list[str]:
    """Problems with a metrics payload/summary (empty list = valid).

    Accepts the output of either :meth:`MetricsRegistry.to_payload` or
    :func:`registry_summary`; used by ``scripts/check_trace.py`` to
    gate the metrics sections of JSON trace artifacts.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"metrics payload is {type(payload).__name__}, "
                f"expected object"]
    for section in ("counters", "gauges"):
        values = payload.get(section)
        if values is None:
            errors.append(f"missing {section} section")
            continue
        if not isinstance(values, dict):
            errors.append(f"{section} is not an object")
            continue
        for name, value in values.items():
            if not isinstance(value, (int, float)):
                errors.append(f"{section}[{name!r}] is not a number")
    histograms = payload.get("histograms")
    if histograms is None:
        errors.append("missing histograms section")
        return errors
    if not isinstance(histograms, list):
        return errors + ["histograms is not a list"]
    for index, entry in enumerate(histograms):
        if not isinstance(entry, dict):
            errors.append(f"histogram {index} is not an object")
            continue
        label = entry.get("name", f"#{index}")
        bounds = entry.get("bounds")
        counts = entry.get("counts")
        if not isinstance(bounds, list) or not bounds:
            errors.append(f"histogram {label}: missing bounds")
            continue
        if any(not isinstance(b, (int, float)) for b in bounds) \
                or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            errors.append(f"histogram {label}: bounds are not "
                          f"strictly increasing numbers")
        if not isinstance(counts, list) \
                or len(counts) != len(bounds) + 1 \
                or any(not isinstance(n, int) or n < 0 for n in counts):
            errors.append(f"histogram {label}: counts must be "
                          f"{len(bounds) + 1} non-negative integers")
            continue
        count = entry.get("count")
        if count != sum(counts):
            errors.append(f"histogram {label}: count {count!r} != "
                          f"sum of bucket counts {sum(counts)}")
        if count and (entry.get("min") is None
                      or entry.get("max") is None):
            errors.append(f"histogram {label}: non-empty but "
                          f"min/max missing")
    return errors


__all__ = [
    "COUNT_BUCKETS",
    "DURATION_BUCKETS",
    "EXPORT_DECIMALS",
    "Histogram",
    "MetricsRegistry",
    "RESIDUAL_BUCKETS",
    "SIZE_BUCKETS",
    "TEMPERATURE_BUCKETS",
    "exponential_buckets",
    "linear_buckets",
    "registry_summary",
    "round_metric",
    "to_prometheus",
    "validate_metrics_payload",
]
