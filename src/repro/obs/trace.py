"""Hierarchical spans and the per-sweep :class:`Trace`.

The tracing model is deliberately small:

* a **span** is a named, attributed interval measured on the monotonic
  clock.  ``with span("cache.read", experiment=eid): ...`` records one
  :class:`SpanRecord` (name, start, duration, pid/tid, nesting depth,
  parent span name, attributes) into the active trace;
* a **trace** is the thread-safe collection of finished spans plus a
  :class:`~repro.obs.counters.Counters` instance, created per sweep by
  whoever wants observability (the ``repro trace`` CLI, a benchmark, a
  test) and installed with :func:`activate` / :func:`tracing`;
* when **no trace is active** -- the default -- :func:`span` returns a
  shared no-op context manager and :func:`add_counter` /
  :func:`record_span` return immediately after one global ``is None``
  check, so instrumented hot paths cost effectively nothing.

Thread safety: threads share the active trace; each thread keeps its
own span stack (``threading.local``) for parent/depth bookkeeping, and
finished spans are appended under the trace's lock.

Process safety: worker processes never share a ``Trace`` object.  The
engine's worker entry point builds a fresh child trace, runs the
experiment, and ships ``Trace.to_payload()`` (plain picklable dicts)
back over the result pipe; the parent folds it in with
:meth:`Trace.merge_payload`, preserving the child's pid/tid so the
Chrome export shows one lane per worker.  Monotonic readings are
comparable across processes on one machine (``CLOCK_MONOTONIC`` is
system-wide on Linux), so child spans line up with parent spans.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.clock import wall_now
from repro.obs.context import context_fields
from repro.obs.counters import Counters
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start_s: float        # monotonic-clock reading at __enter__
    duration_s: float
    pid: int
    tid: int
    depth: int            # 0 = top level within its thread
    parent: str | None    # enclosing span's name, if any
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "parent": self.parent,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            duration_s=float(payload["duration_s"]),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            depth=int(payload.get("depth", 0)),
            parent=payload.get("parent"),
            attributes=dict(payload.get("attributes") or {}),
        )


class _Span:
    """Live span context manager bound to one trace."""

    __slots__ = ("_trace", "name", "attributes", "start_s")

    def __init__(self, trace: "Trace", name: str,
                 attributes: dict[str, Any]) -> None:
        self._trace = trace
        self.name = name
        self.attributes = attributes
        self.start_s = 0.0

    def set(self, **attributes: Any) -> "_Span":
        """Attach attributes discovered mid-span (e.g. matrix size)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_Span":
        self._trace._stack().append(self.name)
        self.start_s = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_s = time.monotonic() - self.start_s
        stack = self._trace._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        parent = stack[-1] if stack else None
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._trace._append(SpanRecord(
            name=self.name, start_s=self.start_s,
            duration_s=duration_s, pid=os.getpid(),
            tid=threading.get_ident(), depth=len(stack),
            parent=parent, attributes=self.attributes))
        return False


class _NoopSpan:
    """Shared do-nothing span for when tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Trace:
    """All spans and counters observed during one traced region."""

    def __init__(self, name: str = "trace", *,
                 span_histograms: bool = True) -> None:
        self.name = name
        self.epoch_s = wall_now()            # wall anchor for export
        self.start_monotonic_s = time.monotonic()
        self.metrics = MetricsRegistry()
        self.counters = self.metrics.counters
        #: With span_histograms on (the default), every finished span
        #: also lands its duration in the ``span.<name>`` histogram,
        #: so ``repro stats`` gets p50/p90/p99 per instrumented site
        #: without a second clock read anywhere.
        self.span_histograms = span_histograms
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._local = threading.local()

    # -- recording ----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _Span:
        return _Span(self, name, attributes)

    def record(self, name: str, start_s: float, duration_s: float,
               **attributes: Any) -> None:
        """Append an already-measured interval (no context manager).

        Used where the start and end of a phase are observed in
        different stack frames, e.g. the scheduler's launch/collect
        pair around a worker process.
        """
        stack = getattr(self._local, "stack", None)
        parent = stack[-1] if stack else None
        self._append(SpanRecord(
            name=name, start_s=start_s,
            duration_s=max(0.0, duration_s), pid=os.getpid(),
            tid=threading.get_ident(),
            depth=len(stack) if stack else 0, parent=parent,
            attributes=attributes))

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: SpanRecord, observe: bool = True) -> None:
        if observe:
            # Stamp the thread's correlation context (trace_id/job_id/
            # tenant) so filters like ``repro trace --job`` work.
            # setdefault: explicit span attributes win.  Merged worker
            # payloads arrive with observe=False and keep the fields
            # their own process stamped.
            for key, value in context_fields().items():
                record.attributes.setdefault(key, value)
        with self._lock:
            self._spans.append(record)
        if observe and self.span_histograms:
            self.metrics.observe(f"span.{record.name}",
                                 record.duration_s,
                                 buckets=DURATION_BUCKETS)

    # -- reading ------------------------------------------------------

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._spans)

    @property
    def duration_s(self) -> float:
        """Earliest span start to latest span end (0 when empty)."""
        spans = self.spans
        if not spans:
            return 0.0
        return (max(s.end_s for s in spans)
                - min(s.start_s for s in spans))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- cross-process shipping ---------------------------------------

    def to_payload(self) -> dict:
        """Picklable snapshot for shipping across a process pipe.

        Carries the spans plus the full metrics state (counters,
        gauges, histograms) so a worker's distributions merge into the
        parent sweep exactly.
        """
        payload = self.metrics.to_payload()
        payload["spans"] = [s.to_json_dict() for s in self.spans]
        return payload

    def merge_payload(self, payload: dict | None) -> None:
        """Fold a worker's :meth:`to_payload` snapshot into this trace."""
        if not payload:
            return
        self.metrics.merge_payload(
            {key: payload.get(key) for key in ("counters", "gauges",
                                               "histograms")})
        # observe=False: the worker already observed these spans into
        # its own span histograms, shipped in the metrics payload above.
        for span_dict in payload.get("spans", ()):
            self._append(SpanRecord.from_json_dict(span_dict),
                         observe=False)


# -- the active trace -------------------------------------------------

_ACTIVE: Trace | None = None


def activate(trace: Trace) -> Trace:
    """Install ``trace`` as the process-wide active trace."""
    global _ACTIVE
    _ACTIVE = trace
    return trace


def deactivate() -> Trace | None:
    """Remove the active trace; returns what was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def reset_tracing() -> None:
    """Drop any active trace -- e.g. one inherited across ``fork``."""
    global _ACTIVE
    _ACTIVE = None


def current_trace() -> Trace | None:
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def tracing(trace: Trace) -> Iterator[Trace]:
    """Activate ``trace`` for a ``with`` block, restoring the previous
    active trace (if any) on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = previous


def span(name: str, **attributes: Any) -> _Span | _NoopSpan:
    """A span on the active trace, or the shared no-op when disabled."""
    trace = _ACTIVE
    if trace is None:
        return _NOOP_SPAN
    return trace.span(name, **attributes)


def record_span(name: str, start_s: float, duration_s: float,
                **attributes: Any) -> None:
    """Record a pre-measured interval on the active trace (no-op when
    disabled)."""
    trace = _ACTIVE
    if trace is not None:
        trace.record(name, start_s, duration_s, **attributes)


def add_counter(name: str, value: float = 1) -> None:
    """Increment a counter on the active trace (no-op when disabled)."""
    trace = _ACTIVE
    if trace is not None:
        trace.counters.add(name, value)


def observe(name: str, value: float,
            buckets: Any = None, **labels: Any) -> None:
    """Record ``value`` into a histogram on the active trace's metrics
    registry (no-op when disabled)."""
    trace = _ACTIVE
    if trace is not None:
        trace.metrics.observe(name, value, buckets, **labels)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active trace's metrics registry (no-op when
    disabled)."""
    trace = _ACTIVE
    if trace is not None:
        trace.metrics.set_gauge(name, value)


def current_metrics() -> MetricsRegistry | None:
    """The active trace's metrics registry, or ``None`` when disabled."""
    trace = _ACTIVE
    return None if trace is None else trace.metrics
