"""Bounded metrics history: a ring buffer plus a cadence sampler.

The service daemon's ``MetricsRegistry`` answers "what happened since
start" -- totals and distributions -- but not "what was happening five
minutes ago".  This module adds the missing time axis with two small
pieces:

* :class:`TimeSeriesBuffer` -- a thread-safe, bounded
  (``deque(maxlen=...)``) buffer of sample dicts.  Memory is capped by
  construction: at the default one-second cadence and 600-sample
  capacity the daemon retains ten minutes of history in a few hundred
  kilobytes, forever, no compaction task needed.  Samples carry a
  monotonically increasing ``seq`` so pollers (``repro top``, the
  ``/metrics/history?since=`` route) can fetch increments without
  re-reading the window.
* :class:`HistorySampler` -- a daemon thread calling a sample function
  at a fixed cadence and appending whatever it returns.  A sampler
  tick that raises is counted and dropped, never fatal: history is
  observability, not control flow.

Sample dicts are produced by the owner (the daemon samples queue
depths, running jobs, RSS, and selected latency quantiles); the buffer
only guarantees ``ts`` (wall) and ``seq`` stamps.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

from repro.obs.clock import wall_now

DEFAULT_CAPACITY = 600
DEFAULT_INTERVAL_S = 1.0


class TimeSeriesBuffer:
    """Thread-safe bounded buffer of stamped sample dicts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        #: Samples pushed out of the window by the bound (telemetry).
        self.evicted = 0

    def append(self, sample: dict[str, Any]) -> dict:
        """Stamp and store one sample; returns the stored record."""
        with self._lock:
            record = dict(sample)
            record.setdefault("ts", wall_now())
            record["seq"] = self._seq
            self._seq += 1
            if len(self._samples) == self.capacity:
                self.evicted += 1
            self._samples.append(record)
            return record

    def samples(self, since_seq: int | None = None,
                limit: int | None = None) -> list[dict]:
        """Samples with ``seq >= since_seq``, newest-last.

        ``limit`` keeps the *newest* N of the selection -- a live view
        wants the most recent window, not the oldest.
        """
        with self._lock:
            selected = [dict(sample) for sample in self._samples
                        if since_seq is None
                        or sample["seq"] >= since_seq]
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return selected

    def latest(self) -> dict | None:
        with self._lock:
            return dict(self._samples[-1]) if self._samples else None

    def next_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class HistorySampler:
    """Daemon thread appending ``sample_fn()`` output at a cadence."""

    def __init__(self, sample_fn: Callable[[], dict[str, Any] | None],
                 buffer: TimeSeriesBuffer, *,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 name: str = "repro-history") -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be > 0, got {interval_s}")
        self.sample_fn = sample_fn
        self.buffer = buffer
        self.interval_s = interval_s
        #: Ticks whose sample function raised (dropped, not fatal).
        self.errors = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name,
                                        daemon=True)

    def start(self) -> None:
        self.tick()  # an immediate first sample: history never empty
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def tick(self) -> dict | None:
        """Take one sample now (also used by tests; never raises)."""
        try:
            sample = self.sample_fn()
        except Exception:
            self.errors += 1
            return None
        if sample is None:
            return None
        return self.buffer.append(sample)

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            self.tick()


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL_S",
    "HistorySampler",
    "TimeSeriesBuffer",
]
