"""Process resource telemetry: RSS, CPU time, GC pressure.

Everything here is stdlib (``resource``, ``gc``, ``time``) so the
telemetry is always available wherever the engine runs.  Two usage
shapes:

* **absolute** (:func:`record_resource_metrics`) -- snapshot the
  process's lifetime peaks/totals into a registry.  This is what a
  forked engine worker records just before shipping its payload home:
  the worker process *is* the task, so its ``ru_maxrss`` and CPU totals
  are the task's cost, and the parent's max-merge of the
  ``resource.rss_peak_kb`` gauge yields the sweep-wide worker peak.
* **delta** (:class:`ResourceSampler` / :func:`record_resource_delta`)
  -- bracket a region and record what it consumed.  Used for the
  per-sweep accounting in the scheduler (whose process outlives many
  sweeps) and by the benchmark fixtures.

``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the samples
normalise to kilobytes.  Note that a process's peak RSS is monotone,
so a *delta* of peaks is zero unless the region set a new high-water
mark -- which is why the peak is recorded as a max-merged gauge rather
than a differenced histogram.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from dataclasses import dataclass

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
)

_RSS_TO_KB = (1.0 / 1024.0) if sys.platform == "darwin" else 1.0


@dataclass(frozen=True)
class ResourceSample:
    """One snapshot of the process's cumulative resource usage."""

    rss_peak_kb: float
    cpu_user_s: float
    cpu_system_s: float
    gc_collections: int
    monotonic_s: float

    @property
    def cpu_s(self) -> float:
        """User plus system CPU seconds."""
        return self.cpu_user_s + self.cpu_system_s


def sample_resources() -> ResourceSample:
    """Snapshot this process's peak RSS, CPU totals, and GC count."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    collections = sum(stat["collections"] for stat in gc.get_stats())
    return ResourceSample(
        rss_peak_kb=usage.ru_maxrss * _RSS_TO_KB,
        cpu_user_s=usage.ru_utime,
        cpu_system_s=usage.ru_stime,
        gc_collections=collections,
        monotonic_s=time.monotonic(),
    )


def record_resource_metrics(metrics: MetricsRegistry,
                            scope: str = "process") -> ResourceSample:
    """Record this process's lifetime usage (gauges + scoped histograms)."""
    sample = sample_resources()
    metrics.set_gauge("resource.rss_peak_kb", sample.rss_peak_kb)
    metrics.observe("resource.cpu_s", sample.cpu_s,
                    buckets=DURATION_BUCKETS, scope=scope)
    metrics.observe("resource.gc_collections", sample.gc_collections,
                    buckets=COUNT_BUCKETS, scope=scope)
    return sample


def record_resource_delta(metrics: MetricsRegistry,
                          before: ResourceSample,
                          scope: str) -> ResourceSample:
    """Record the usage accrued since ``before`` under ``scope``.

    CPU and GC are differenced; the RSS peak is absolute (see module
    docstring) and lands as the max-merged gauge.
    """
    after = sample_resources()
    metrics.set_gauge("resource.rss_peak_kb", after.rss_peak_kb)
    metrics.observe("resource.cpu_s",
                    max(0.0, after.cpu_s - before.cpu_s),
                    buckets=DURATION_BUCKETS, scope=scope)
    metrics.observe("resource.gc_collections",
                    max(0, after.gc_collections - before.gc_collections),
                    buckets=COUNT_BUCKETS, scope=scope)
    metrics.observe("resource.wall_s",
                    max(0.0, after.monotonic_s - before.monotonic_s),
                    buckets=DURATION_BUCKETS, scope=scope)
    return after


class ResourceSampler:
    """Delta-samples resource usage around regions into one registry."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def measure(self, scope: str) -> "_Measurement":
        """``with sampler.measure("sweep"): ...`` records the region's
        CPU/GC deltas, wall time, and the process RSS peak."""
        return _Measurement(self.metrics, scope)


class _Measurement:
    __slots__ = ("_metrics", "_scope", "_before")

    def __init__(self, metrics: MetricsRegistry, scope: str) -> None:
        self._metrics = metrics
        self._scope = scope
        self._before: ResourceSample | None = None

    def __enter__(self) -> "_Measurement":
        self._before = sample_resources()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._before is not None:
            record_resource_delta(self._metrics, self._before,
                                  self._scope)
        return False


__all__ = [
    "ResourceSample",
    "ResourceSampler",
    "record_resource_delta",
    "record_resource_metrics",
    "sample_resources",
]
