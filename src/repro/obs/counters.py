"""Thread-safe event counters.

A :class:`Counters` instance is a flat ``name -> number`` map guarded
by one lock: cheap enough to sit on hot paths (one dict update per
event), mergeable across threads and -- via
:meth:`Counters.as_dict` / :meth:`Counters.merge` -- across the
process boundary the engine's worker pool introduces.

Counter names are dotted, lowest-level subsystem first, e.g.
``cache.hits``, ``solver.iterations``, ``engine.retries``.  Values are
numbers (``int`` increments are the norm; floats are accepted so
counters can also accumulate quantities like seconds slept).
"""

from __future__ import annotations

import threading
from typing import Mapping


class Counters:
    """A mergeable map of named monotonic event counters."""

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        """Increment ``name`` by ``value`` (negative increments are
        rejected: counters only ever grow)."""
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {value!r} for {name!r}")
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        """Snapshot, sorted by name for stable output."""
        with self._lock:
            return {name: self._values[name]
                    for name in sorted(self._values)}

    def merge(self, values: Mapping[str, float]) -> None:
        """Fold another snapshot in (e.g. one shipped from a worker)."""
        with self._lock:
            for name, value in values.items():
                self._values[name] = self._values.get(name, 0) + value

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"
