"""Trace correlation context: the ``trace_id`` that follows a job.

A **trace context** is the tuple of correlation fields --
``trace_id``, ``job_id``, ``tenant`` -- that identifies *whose* work a
span or log record belongs to.  It is deliberately separate from the
active :class:`~repro.obs.trace.Trace`: the trace is a *collection
point* (one per sweep, shared by every job the service daemon runs),
while the context is *per job* and travels with it across every
boundary a job crosses:

* **threads** -- context is ``threading.local``: each service
  dispatcher thread carries its own job's context, so two concurrent
  jobs recording into the shared service trace stamp their spans with
  different ``trace_id`` values;
* **processes** -- thread-local state does not survive ``fork`` from a
  non-main thread reliably, so the context is never implicitly
  inherited: the engine snapshots :func:`context_fields` at launch
  time and passes the plain dict to the worker entry point, which
  re-installs it with :func:`set_trace_context` after
  ``reset_tracing()``;
* **the wire** -- clients send ``X-Repro-Trace-Id`` and the field
  rides in :class:`~repro.service.jobs.JobSpec`, so the id minted at
  ``ServiceClient.submit`` is the same one a worker process stamps on
  its solver spans.

Stamping happens in :meth:`Trace._append
<repro.obs.trace.Trace._append>` (``setdefault`` -- explicit span
attributes win) and in :mod:`repro.obs.log` records, which is what
makes ``repro trace --job <id>`` filtering and log/event correlation
possible without threading an argument through every call site.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

#: The correlation fields a context may carry, in stamp order.
CONTEXT_FIELDS = ("trace_id", "job_id", "tenant")

_local = threading.local()


def new_trace_id() -> str:
    """Mint a fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """One immutable snapshot of the correlation fields."""

    trace_id: str | None = None
    job_id: str | None = None
    tenant: str | None = None

    def as_fields(self) -> dict[str, str]:
        """The non-``None`` fields as a plain dict (stamp payload)."""
        fields = {}
        for name in CONTEXT_FIELDS:
            value = getattr(self, name)
            if value is not None:
                fields[name] = value
        return fields

    @property
    def empty(self) -> bool:
        return (self.trace_id is None and self.job_id is None
                and self.tenant is None)


_EMPTY = TraceContext()


def current_trace_context() -> TraceContext:
    """This thread's active context (the empty context by default)."""
    return getattr(_local, "context", _EMPTY)


def context_fields() -> dict[str, str]:
    """The active context's non-``None`` fields; ``{}`` when unset.

    This is the hot-path accessor: span append and log record
    construction call it, so it is one ``getattr`` plus a dict build
    only when a context is actually installed.
    """
    context = getattr(_local, "context", None)
    if context is None or context is _EMPTY:
        return {}
    return context.as_fields()


def set_trace_context(trace_id: str | None = None,
                      job_id: str | None = None,
                      tenant: str | None = None,
                      **extra: Any) -> TraceContext:
    """Install a context on this thread; returns it.

    Unknown keyword fields are ignored rather than rejected so a
    context dict shipped from a newer parent process never crashes an
    older worker entry point.
    """
    context = TraceContext(
        trace_id=None if trace_id is None else str(trace_id),
        job_id=None if job_id is None else str(job_id),
        tenant=None if tenant is None else str(tenant))
    _local.context = context
    return context


def clear_trace_context() -> None:
    """Drop this thread's context."""
    _local.context = _EMPTY


@contextmanager
def trace_context(trace_id: str | None = None,
                  job_id: str | None = None,
                  tenant: str | None = None) -> Iterator[TraceContext]:
    """Install a context for a ``with`` block, restoring the previous
    one (if any) on exit -- nesting-safe, like
    :func:`~repro.obs.trace.tracing`."""
    previous = getattr(_local, "context", _EMPTY)
    context = set_trace_context(trace_id=trace_id, job_id=job_id,
                                tenant=tenant)
    try:
        yield context
    finally:
        _local.context = previous


__all__ = [
    "CONTEXT_FIELDS",
    "TraceContext",
    "clear_trace_context",
    "context_fields",
    "current_trace_context",
    "new_trace_id",
    "set_trace_context",
    "trace_context",
]
