"""Lightweight hierarchical tracing, counters, and profiling export.

``repro.obs`` is the observability layer under every performance claim
this repository makes: the engine scheduler, the result cache, the
guarded numerical solvers, and STA all emit spans and counters through
it, and the ``repro trace`` CLI turns a sweep into a Chrome/Perfetto
trace plus a per-phase breakdown table.

Design points:

* **near-zero overhead when disabled** -- no trace is active by
  default; :func:`span` then returns a shared no-op context manager
  after a single global check, and :func:`add_counter` /
  :func:`record_span` return immediately;
* **monotonic durations only** -- spans measure ``time.monotonic()``
  differences; wall-clock placement comes from the
  :func:`~repro.obs.clock.wall_now` anchor, so traces and run records
  survive system clock adjustments (:mod:`repro.obs.clock`);
* **thread and process safe** -- threads share the active trace with
  per-thread span stacks; worker processes build their own trace and
  ship it back as a picklable payload the parent merges
  (:meth:`Trace.to_payload` / :meth:`Trace.merge_payload`);
* **two export formats** -- Chrome trace-event JSON (loads in
  ``chrome://tracing`` and Perfetto) and a plain-JSON summary with the
  per-phase breakdown (:mod:`repro.obs.export`).

Typical use::

    from repro.obs import Trace, tracing, span, add_counter

    with tracing(Trace("my-sweep")) as trace:
        with span("phase.work", item=3):
            ...
        add_counter("work.items")
    write_trace(trace, "trace.json")  # open in Perfetto
"""

from repro.obs.clock import wall_now
from repro.obs.context import (
    CONTEXT_FIELDS,
    TraceContext,
    clear_trace_context,
    context_fields,
    current_trace_context,
    new_trace_id,
    set_trace_context,
    trace_context,
)
from repro.obs.counters import Counters
from repro.obs.log import (
    StructuredLogger,
    configure_logging,
    current_log_path,
    get_logger,
    logging_configured,
    reset_logging,
    validate_log_records,
)
from repro.obs.profiler import (
    SamplingProfiler,
    profile,
    validate_collapsed,
)
from repro.obs.timeseries import (
    HistorySampler,
    TimeSeriesBuffer,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    Histogram,
    MetricsRegistry,
    RESIDUAL_BUCKETS,
    SIZE_BUCKETS,
    TEMPERATURE_BUCKETS,
    exponential_buckets,
    linear_buckets,
    registry_summary,
    round_metric,
    to_prometheus,
    validate_metrics_payload,
)
from repro.obs.resources import (
    ResourceSample,
    ResourceSampler,
    record_resource_delta,
    record_resource_metrics,
    sample_resources,
)
from repro.obs.export import (
    EXPORT_FORMATS,
    FORMAT_CHROME,
    FORMAT_JSON,
    load_chrome_trace,
    phase_breakdown,
    to_chrome_events,
    trace_summary,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.trace import (
    SpanRecord,
    Trace,
    activate,
    add_counter,
    current_metrics,
    current_trace,
    deactivate,
    observe,
    record_span,
    reset_tracing,
    set_gauge,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "CONTEXT_FIELDS",
    "COUNT_BUCKETS",
    "Counters",
    "DURATION_BUCKETS",
    "EXPORT_FORMATS",
    "FORMAT_CHROME",
    "FORMAT_JSON",
    "Histogram",
    "HistorySampler",
    "MetricsRegistry",
    "RESIDUAL_BUCKETS",
    "ResourceSample",
    "ResourceSampler",
    "SIZE_BUCKETS",
    "SamplingProfiler",
    "SpanRecord",
    "StructuredLogger",
    "TEMPERATURE_BUCKETS",
    "TimeSeriesBuffer",
    "Trace",
    "TraceContext",
    "activate",
    "add_counter",
    "clear_trace_context",
    "configure_logging",
    "context_fields",
    "current_log_path",
    "current_metrics",
    "current_trace",
    "current_trace_context",
    "deactivate",
    "exponential_buckets",
    "get_logger",
    "linear_buckets",
    "load_chrome_trace",
    "logging_configured",
    "new_trace_id",
    "observe",
    "phase_breakdown",
    "profile",
    "record_resource_delta",
    "record_resource_metrics",
    "record_span",
    "registry_summary",
    "reset_logging",
    "reset_tracing",
    "round_metric",
    "sample_resources",
    "set_gauge",
    "set_trace_context",
    "span",
    "to_chrome_events",
    "to_prometheus",
    "trace_context",
    "trace_summary",
    "tracing",
    "tracing_enabled",
    "validate_chrome_trace",
    "validate_collapsed",
    "validate_log_records",
    "validate_metrics_payload",
    "wall_now",
    "write_trace",
]
