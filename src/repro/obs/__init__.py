"""Lightweight hierarchical tracing, counters, and profiling export.

``repro.obs`` is the observability layer under every performance claim
this repository makes: the engine scheduler, the result cache, the
guarded numerical solvers, and STA all emit spans and counters through
it, and the ``repro trace`` CLI turns a sweep into a Chrome/Perfetto
trace plus a per-phase breakdown table.

Design points:

* **near-zero overhead when disabled** -- no trace is active by
  default; :func:`span` then returns a shared no-op context manager
  after a single global check, and :func:`add_counter` /
  :func:`record_span` return immediately;
* **monotonic durations only** -- spans measure ``time.monotonic()``
  differences; wall-clock placement comes from the
  :func:`~repro.obs.clock.wall_now` anchor, so traces and run records
  survive system clock adjustments (:mod:`repro.obs.clock`);
* **thread and process safe** -- threads share the active trace with
  per-thread span stacks; worker processes build their own trace and
  ship it back as a picklable payload the parent merges
  (:meth:`Trace.to_payload` / :meth:`Trace.merge_payload`);
* **two export formats** -- Chrome trace-event JSON (loads in
  ``chrome://tracing`` and Perfetto) and a plain-JSON summary with the
  per-phase breakdown (:mod:`repro.obs.export`).

Typical use::

    from repro.obs import Trace, tracing, span, add_counter

    with tracing(Trace("my-sweep")) as trace:
        with span("phase.work", item=3):
            ...
        add_counter("work.items")
    write_trace(trace, "trace.json")  # open in Perfetto
"""

from repro.obs.clock import wall_now
from repro.obs.counters import Counters
from repro.obs.export import (
    EXPORT_FORMATS,
    FORMAT_CHROME,
    FORMAT_JSON,
    load_chrome_trace,
    phase_breakdown,
    to_chrome_events,
    trace_summary,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.trace import (
    SpanRecord,
    Trace,
    activate,
    add_counter,
    current_trace,
    deactivate,
    record_span,
    reset_tracing,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counters",
    "EXPORT_FORMATS",
    "FORMAT_CHROME",
    "FORMAT_JSON",
    "SpanRecord",
    "Trace",
    "activate",
    "add_counter",
    "current_trace",
    "deactivate",
    "load_chrome_trace",
    "phase_breakdown",
    "record_span",
    "reset_tracing",
    "span",
    "to_chrome_events",
    "trace_summary",
    "tracing",
    "tracing_enabled",
    "validate_chrome_trace",
    "wall_now",
    "write_trace",
]
