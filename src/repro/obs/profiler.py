"""Wall-clock sampling profiler with collapsed-stack export.

Spans answer "how long did the phases I thought to instrument take";
a sampling profiler answers "where was the time I *didn't* think to
instrument".  This one is stdlib-only and deliberately simple:

* a daemon **sampler thread** wakes every ``interval_s`` and snapshots
  every Python thread's stack via ``sys._current_frames()`` --
  thread-based rather than ``signal``-based because the interesting
  work in this repository runs on service dispatcher threads and in
  the inline engine, and CPython only delivers signals to the main
  thread;
* each snapshot folds into a **collapsed-stack** tally: the key is
  ``frame;frame;frame`` root-first, each frame rendered as
  ``<module-stem>:<function>``, the value is how many samples landed
  there.  ``to_collapsed_text()`` emits the classic one-line-per-stack
  ``<stack> <count>`` format consumed by ``flamegraph.pl``, speedscope,
  and friends;
* **overhead is bounded by the interval**: at the default 10 ms the
  sampler costs well under 5% of one core for typical thread counts,
  and nothing at all between ``start()``/``stop()`` pairs.  The
  sampler excludes its own thread (and any explicitly ignored ids)
  so the profile shows the profiled workload, not the profiler.

Used per job via ``repro jobs submit --profile`` (the daemon profiles
its dispatcher threads for the job's duration and serves the artifact
on ``/v1/jobs/<id>/profile``) and inline via ``repro profile <ids>``.
:func:`validate_collapsed` is the CI gate for the artifact.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

DEFAULT_INTERVAL_S = 0.01


def _frame_label(frame) -> str:
    """``<module-stem>:<function>`` -- no spaces or semicolons, so the
    collapsed format stays parseable."""
    code = frame.f_code
    stem = Path(code.co_filename).stem or "?"
    name = code.co_name or "?"
    label = f"{stem}:{name}"
    return label.replace(";", "_").replace(" ", "_")


def _stack_key(frame) -> str:
    """Root-first collapsed key for one thread's current stack."""
    labels: list[str] = []
    while frame is not None:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Collect collapsed-stack samples from live Python threads."""

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S, *,
                 thread_ids: set[int] | None = None,
                 max_stacks: int = 10_000) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be > 0, got {interval_s}")
        if max_stacks < 1:
            raise ValueError(
                f"max_stacks must be >= 1, got {max_stacks}")
        self.interval_s = interval_s
        #: Only sample these thread ids when given (None = all threads
        #: except the sampler itself).
        self.thread_ids = thread_ids
        #: Distinct stacks kept; the long tail past the bound folds
        #: into an ``(other)`` bucket so a pathological workload
        #: cannot balloon the tally.
        self.max_stacks = max_stacks
        self.samples = 0
        self.truncated = 0
        self.started_monotonic: float | None = None
        self.duration_s = 0.0
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- collection ---------------------------------------------------

    def sample_once(self) -> int:
        """Snapshot every eligible thread once; returns stacks added."""
        ignore = {threading.get_ident()}
        if self._thread is not None and self._thread.ident is not None:
            ignore.add(self._thread.ident)
        added = 0
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id in ignore:
                    continue
                if (self.thread_ids is not None
                        and thread_id not in self.thread_ids):
                    continue
                key = _stack_key(frame)
                if not key:
                    continue
                if (key not in self._counts
                        and len(self._counts) >= self.max_stacks):
                    key = "(other)"
                    self.truncated += 1
                self._counts[key] = self._counts.get(key, 0) + 1
                added += 1
            self.samples += 1
        return added

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            self.sample_once()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self.started_monotonic = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> dict[str, int]:
        """Stop sampling; returns the collapsed tally."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=timeout_s)
            self._thread = None
        if self.started_monotonic is not None:
            self.duration_s += time.monotonic() - self.started_monotonic
            self.started_monotonic = None
        return self.collapsed()

    # -- export -------------------------------------------------------

    def collapsed(self) -> dict[str, int]:
        """Copy of the ``stack -> sample count`` tally."""
        with self._lock:
            return dict(self._counts)

    def to_collapsed_text(self) -> str:
        """The flamegraph.pl input format: ``<stack> <count>`` lines,
        heaviest stacks first for human skimming."""
        with self._lock:
            items = sorted(self._counts.items(),
                           key=lambda item: (-item[1], item[0]))
        return "".join(f"{stack} {count}\n" for stack, count in items)

    def write_collapsed(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_collapsed_text(), encoding="utf-8")
        return path

    def top_functions(self, top: int = 10) -> list[dict]:
        """Leaf-frame ranking: where samples actually landed."""
        leaves: dict[str, int] = {}
        with self._lock:
            total = sum(self._counts.values())
            for stack, count in self._counts.items():
                leaf = stack.rsplit(";", 1)[-1]
                leaves[leaf] = leaves.get(leaf, 0) + count
        rows = [{"function": name, "samples": count,
                 "share": count / total if total else 0.0}
                for name, count in leaves.items()]
        rows.sort(key=lambda row: (-row["samples"], row["function"]))
        return rows[:top]


@contextmanager
def profile(interval_s: float = DEFAULT_INTERVAL_S, *,
            thread_ids: set[int] | None = None
            ) -> Iterator[SamplingProfiler]:
    """Run a profiler for the block; stopped (tally final) on exit."""
    profiler = SamplingProfiler(interval_s, thread_ids=thread_ids)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()


def validate_collapsed(text: str) -> tuple[int, list[str]]:
    """Check collapsed-stack text; returns ``(stacks, problems)``.

    Every non-blank line must be ``<stack> <count>`` with a
    semicolon-separated non-empty stack and a positive integer count.
    An empty artifact (no stacks at all) is a problem: a profiled job
    that produced zero samples means the profiler never ran.
    """
    problems: list[str] = []
    stacks = 0
    for index, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack, _, raw_count = line.rpartition(" ")
        if not stack:
            problems.append(f"line {index}: no stack before the count")
            continue
        if any(not frame for frame in stack.split(";")):
            problems.append(f"line {index}: empty frame in {stack!r}")
        try:
            count = int(raw_count)
        except ValueError:
            problems.append(
                f"line {index}: count {raw_count!r} is not an integer")
            continue
        if count < 1:
            problems.append(f"line {index}: count {count} < 1")
            continue
        stacks += 1
    if stacks == 0 and not problems:
        problems.append("no stacks: profile is empty")
    return stacks, problems


__all__ = [
    "DEFAULT_INTERVAL_S",
    "SamplingProfiler",
    "profile",
    "validate_collapsed",
]
